//! Reverse-mode automatic differentiation over [`Matrix`] values.
//!
//! A [`Graph`] is a single-use tape: every op records its inputs and cached
//! forward value; [`Graph::backward`] walks the tape in reverse and pushes
//! gradients to inputs and, for parameter leaves, into the owning
//! [`ParamStore`]. One training step = one graph.
//!
//! The op set is deliberately small — exactly what the GenDT architecture
//! (LSTM + FC + stochastic layers + Gaussian head + GAN losses) needs.

use crate::matrix::Matrix;
use crate::params::{ParamId, ParamStore};

/// Handle to a node in a [`Graph`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeId(usize);

#[derive(Clone, Debug)]
enum Op {
    /// Constant input (no gradient).
    Input,
    /// Parameter leaf; backward accumulates into the store.
    Param(ParamId),
    /// `a * b` (matrix product).
    MatMul(NodeId, NodeId),
    /// `a + b`, elementwise, same shape.
    Add(NodeId, NodeId),
    /// `a - b`, elementwise, same shape.
    Sub(NodeId, NodeId),
    /// `a * b`, elementwise (Hadamard), same shape.
    Mul(NodeId, NodeId),
    /// `a + row_broadcast(b)` where `b` is `1 x cols` (bias add).
    AddRow(NodeId, NodeId),
    /// `a * col_broadcast(b)` where `b` is `rows x 1`.
    MulCol(NodeId, NodeId),
    /// `a * s` for scalar `s`.
    Scale(NodeId, f32),
    /// `a + s` for scalar `s` (the offset is kept for Debug output).
    Offset(NodeId, #[allow(dead_code)] f32),
    /// Elementwise sigmoid.
    Sigmoid(NodeId),
    /// Elementwise tanh.
    Tanh(NodeId),
    /// Leaky ReLU with the given negative slope.
    LeakyRelu(NodeId, f32),
    /// Elementwise exp.
    Exp(NodeId),
    /// Elementwise softplus `ln(1 + e^x)`.
    Softplus(NodeId),
    /// Horizontal concat `[a | b]`.
    ConcatCols(NodeId, NodeId),
    /// Columns `c0..c1` of `a`.
    SliceCols(NodeId, usize, usize),
    /// Row-wise sum -> `rows x 1`.
    RowSum(NodeId),
    /// Mean of all elements -> `1 x 1`.
    Mean(NodeId),
    /// Mean of squared difference `mean((a-b)^2)` -> `1 x 1`.
    MseLoss(NodeId, NodeId),
    /// Binary cross-entropy with logits against constant targets -> `1 x 1`.
    BceWithLogits(NodeId, Matrix),
    /// Sum of several `1 x 1` scalars with weights.
    WeightedSum(Vec<(NodeId, f32)>),
    /// Gaussian negative log-likelihood of constant targets given
    /// `(mu, sigma)` nodes -> `1 x 1`. Sigma must be positive.
    GaussianNll { mu: NodeId, sigma: NodeId, target: Matrix },
}

struct Node {
    op: Op,
    value: Matrix,
    grad: Option<Matrix>,
    needs_grad: bool,
}

/// A single-use reverse-mode autodiff tape.
pub struct Graph {
    nodes: Vec<Node>,
}

impl Default for Graph {
    fn default() -> Self {
        Self::new()
    }
}

fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

impl Graph {
    /// Empty tape.
    pub fn new() -> Self {
        Graph { nodes: Vec::with_capacity(256) }
    }

    fn push(&mut self, op: Op, value: Matrix, needs_grad: bool) -> NodeId {
        self.nodes.push(Node { op, value, grad: None, needs_grad });
        NodeId(self.nodes.len() - 1)
    }

    fn needs(&self, id: NodeId) -> bool {
        self.nodes[id.0].needs_grad
    }

    /// Forward value of a node.
    pub fn value(&self, id: NodeId) -> &Matrix {
        &self.nodes[id.0].value
    }

    /// Gradient of a node after [`Graph::backward`]; `None` if it did not
    /// participate in the loss or does not require gradients.
    pub fn grad(&self, id: NodeId) -> Option<&Matrix> {
        self.nodes[id.0].grad.as_ref()
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if no nodes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Insert a constant (non-differentiable) input.
    pub fn input(&mut self, value: Matrix) -> NodeId {
        self.push(Op::Input, value, false)
    }

    /// Insert a constant input that still receives a gradient (used by
    /// tests and by generator-through-discriminator plumbing).
    pub fn input_with_grad(&mut self, value: Matrix) -> NodeId {
        self.push(Op::Input, value, true)
    }

    /// Leaf a parameter into the graph. The backward pass accumulates its
    /// gradient into the store passed to [`Graph::backward`] — so a graph
    /// must only contain trainable params from ONE store; params of other
    /// models must enter via [`Graph::param_frozen`].
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> NodeId {
        self.push(Op::Param(id), store.value(id).clone(), true)
    }

    /// Leaf a parameter as a frozen constant: gradients flow *through* ops
    /// using it (e.g. to the data side of a matmul) but the parameter
    /// itself receives no gradient. Used for the discriminator inside the
    /// generator's update graph.
    pub fn param_frozen(&mut self, store: &ParamStore, id: ParamId) -> NodeId {
        self.push(Op::Input, store.value(id).clone(), false)
    }

    /// Matrix product.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.nodes[a.0].value.matmul(&self.nodes[b.0].value);
        let ng = self.needs(a) || self.needs(b);
        self.push(Op::MatMul(a, b), v, ng)
    }

    /// Elementwise sum.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let mut v = self.nodes[a.0].value.clone();
        v.add_assign(&self.nodes[b.0].value);
        let ng = self.needs(a) || self.needs(b);
        self.push(Op::Add(a, b), v, ng)
    }

    /// Elementwise difference.
    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (va, vb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        assert_eq!(va.shape(), vb.shape(), "sub shape mismatch");
        let data = va.data.iter().zip(vb.data.iter()).map(|(&x, &y)| x - y).collect();
        let v = Matrix::from_vec(va.rows, va.cols, data);
        let ng = self.needs(a) || self.needs(b);
        self.push(Op::Sub(a, b), v, ng)
    }

    /// Hadamard product.
    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (va, vb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        assert_eq!(va.shape(), vb.shape(), "mul shape mismatch");
        let data = va.data.iter().zip(vb.data.iter()).map(|(&x, &y)| x * y).collect();
        let v = Matrix::from_vec(va.rows, va.cols, data);
        let ng = self.needs(a) || self.needs(b);
        self.push(Op::Mul(a, b), v, ng)
    }

    /// Bias add: `a + b` where `b` is a `1 x cols` row broadcast over rows.
    pub fn add_row(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (va, vb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        assert_eq!(vb.rows, 1, "add_row: rhs must be a row vector");
        assert_eq!(va.cols, vb.cols, "add_row column mismatch");
        let mut v = va.clone();
        for r in 0..v.rows {
            for c in 0..v.cols {
                v.data[r * v.cols + c] += vb.data[c];
            }
        }
        let ng = self.needs(a) || self.needs(b);
        self.push(Op::AddRow(a, b), v, ng)
    }

    /// Column broadcast multiply: `a * b` where `b` is `rows x 1`.
    pub fn mul_col(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (va, vb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        assert_eq!(vb.cols, 1, "mul_col: rhs must be a column vector");
        assert_eq!(va.rows, vb.rows, "mul_col row mismatch");
        let mut v = va.clone();
        for r in 0..v.rows {
            let s = vb.data[r];
            for c in 0..v.cols {
                v.data[r * v.cols + c] *= s;
            }
        }
        let ng = self.needs(a) || self.needs(b);
        self.push(Op::MulCol(a, b), v, ng)
    }

    /// Scalar multiply.
    pub fn scale(&mut self, a: NodeId, s: f32) -> NodeId {
        let v = self.nodes[a.0].value.map(|x| x * s);
        let ng = self.needs(a);
        self.push(Op::Scale(a, s), v, ng)
    }

    /// Scalar add.
    pub fn offset(&mut self, a: NodeId, s: f32) -> NodeId {
        let v = self.nodes[a.0].value.map(|x| x + s);
        let ng = self.needs(a);
        self.push(Op::Offset(a, s), v, ng)
    }

    /// Elementwise sigmoid.
    pub fn sigmoid(&mut self, a: NodeId) -> NodeId {
        let v = self.nodes[a.0].value.map(sigmoid);
        let ng = self.needs(a);
        self.push(Op::Sigmoid(a), v, ng)
    }

    /// Elementwise tanh.
    pub fn tanh(&mut self, a: NodeId) -> NodeId {
        let v = self.nodes[a.0].value.map(f32::tanh);
        let ng = self.needs(a);
        self.push(Op::Tanh(a), v, ng)
    }

    /// Leaky ReLU.
    pub fn leaky_relu(&mut self, a: NodeId, slope: f32) -> NodeId {
        let v = self.nodes[a.0].value.map(|x| if x >= 0.0 { x } else { slope * x });
        let ng = self.needs(a);
        self.push(Op::LeakyRelu(a, slope), v, ng)
    }

    /// Elementwise exp.
    pub fn exp(&mut self, a: NodeId) -> NodeId {
        let v = self.nodes[a.0].value.map(f32::exp);
        let ng = self.needs(a);
        self.push(Op::Exp(a), v, ng)
    }

    /// Elementwise softplus, numerically stabilized.
    pub fn softplus(&mut self, a: NodeId) -> NodeId {
        let v = self.nodes[a.0].value.map(|x| {
            if x > 20.0 {
                x
            } else if x < -20.0 {
                x.exp()
            } else {
                (1.0 + x.exp()).ln()
            }
        });
        let ng = self.needs(a);
        self.push(Op::Softplus(a), v, ng)
    }

    /// Horizontal concatenation.
    pub fn concat_cols(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.nodes[a.0].value.concat_cols(&self.nodes[b.0].value);
        let ng = self.needs(a) || self.needs(b);
        self.push(Op::ConcatCols(a, b), v, ng)
    }

    /// Column slice `c0..c1`.
    pub fn slice_cols(&mut self, a: NodeId, c0: usize, c1: usize) -> NodeId {
        let v = self.nodes[a.0].value.slice_cols(c0, c1);
        let ng = self.needs(a);
        self.push(Op::SliceCols(a, c0, c1), v, ng)
    }

    /// Row-wise sum, yielding a `rows x 1` column vector.
    pub fn row_sum(&mut self, a: NodeId) -> NodeId {
        let va = &self.nodes[a.0].value;
        let data = (0..va.rows).map(|r| va.row_slice(r).iter().sum()).collect();
        let v = Matrix::from_vec(va.rows, 1, data);
        let ng = self.needs(a);
        self.push(Op::RowSum(a), v, ng)
    }

    /// Mean of all elements as a `1 x 1` scalar node.
    pub fn mean(&mut self, a: NodeId) -> NodeId {
        let v = Matrix::from_vec(1, 1, vec![self.nodes[a.0].value.mean()]);
        let ng = self.needs(a);
        self.push(Op::Mean(a), v, ng)
    }

    /// Mean-squared-error loss `mean((a - b)^2)`.
    pub fn mse_loss(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (va, vb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        assert_eq!(va.shape(), vb.shape(), "mse_loss shape mismatch");
        let n = va.data.len().max(1) as f32;
        let s: f32 = va.data.iter().zip(vb.data.iter()).map(|(&x, &y)| (x - y) * (x - y)).sum();
        let v = Matrix::from_vec(1, 1, vec![s / n]);
        let ng = self.needs(a) || self.needs(b);
        self.push(Op::MseLoss(a, b), v, ng)
    }

    /// Binary cross-entropy with logits against constant targets in `[0,1]`.
    ///
    /// Numerically stable formulation
    /// `max(x,0) - x*t + ln(1 + e^{-|x|})`.
    pub fn bce_with_logits(&mut self, logits: NodeId, targets: Matrix) -> NodeId {
        let vl = &self.nodes[logits.0].value;
        assert_eq!(vl.shape(), targets.shape(), "bce shape mismatch");
        let n = vl.data.len().max(1) as f32;
        let s: f32 = vl
            .data
            .iter()
            .zip(targets.data.iter())
            .map(|(&x, &t)| x.max(0.0) - x * t + (1.0 + (-x.abs()).exp()).ln())
            .sum();
        let v = Matrix::from_vec(1, 1, vec![s / n]);
        let ng = self.needs(logits);
        self.push(Op::BceWithLogits(logits, targets), v, ng)
    }

    /// Weighted sum of `1 x 1` scalar nodes (loss combination).
    pub fn weighted_sum(&mut self, terms: Vec<(NodeId, f32)>) -> NodeId {
        let mut s = 0.0;
        let mut ng = false;
        for &(id, w) in &terms {
            let v = &self.nodes[id.0].value;
            assert_eq!(v.shape(), (1, 1), "weighted_sum expects scalar nodes");
            s += w * v.data[0];
            ng |= self.needs(id);
        }
        let v = Matrix::from_vec(1, 1, vec![s]);
        self.push(Op::WeightedSum(terms), v, ng)
    }

    /// Mean Gaussian negative log-likelihood of `target` under `N(mu, sigma)`.
    ///
    /// `sigma` must be elementwise positive (pass it through
    /// [`Graph::softplus`] plus a floor first).
    pub fn gaussian_nll(&mut self, mu: NodeId, sigma: NodeId, target: Matrix) -> NodeId {
        let (vm, vs) = (&self.nodes[mu.0].value, &self.nodes[sigma.0].value);
        assert_eq!(vm.shape(), vs.shape(), "gaussian_nll mu/sigma mismatch");
        assert_eq!(vm.shape(), target.shape(), "gaussian_nll target mismatch");
        let n = vm.data.len().max(1) as f32;
        let mut s = 0.0;
        for i in 0..vm.data.len() {
            let m = vm.data[i];
            let sd = vs.data[i].max(1e-6);
            let t = target.data[i];
            s += sd.ln() + 0.5 * ((t - m) / sd).powi(2);
        }
        let v = Matrix::from_vec(1, 1, vec![s / n]);
        let ng = self.needs(mu) || self.needs(sigma);
        self.push(Op::GaussianNll { mu, sigma, target }, v, ng)
    }

    fn accum(&mut self, id: NodeId, g: Matrix) {
        if !self.nodes[id.0].needs_grad {
            return;
        }
        match &mut self.nodes[id.0].grad {
            Some(existing) => existing.add_assign(&g),
            slot @ None => *slot = Some(g),
        }
    }

    /// Run the backward pass from a scalar `1 x 1` loss node, pushing
    /// parameter gradients into `store`.
    ///
    /// # Panics
    /// Panics if `loss` is not `1 x 1`.
    pub fn backward(&mut self, loss: NodeId, store: &mut ParamStore) {
        assert_eq!(self.nodes[loss.0].value.shape(), (1, 1), "backward needs a scalar loss");
        self.nodes[loss.0].grad = Some(Matrix::from_vec(1, 1, vec![1.0]));
        for i in (0..=loss.0).rev() {
            if !self.nodes[i].needs_grad {
                continue;
            }
            let Some(g) = self.nodes[i].grad.take() else { continue };
            // Re-insert so callers can inspect grads after backward.
            self.nodes[i].grad = Some(g.clone());
            let op = self.nodes[i].op.clone();
            match op {
                Op::Input => {}
                Op::Param(pid) => store.accumulate_grad(pid, &g),
                Op::MatMul(a, b) => {
                    if self.needs(a) {
                        let ga = g.matmul_nt(&self.nodes[b.0].value);
                        self.accum(a, ga);
                    }
                    if self.needs(b) {
                        let gb = self.nodes[a.0].value.matmul_tn(&g);
                        self.accum(b, gb);
                    }
                }
                Op::Add(a, b) => {
                    self.accum(a, g.clone());
                    self.accum(b, g);
                }
                Op::Sub(a, b) => {
                    self.accum(a, g.clone());
                    self.accum(b, g.map(|x| -x));
                }
                Op::Mul(a, b) => {
                    if self.needs(a) {
                        let vb = &self.nodes[b.0].value;
                        let data = g.data.iter().zip(vb.data.iter()).map(|(&x, &y)| x * y).collect();
                        self.accum(a, Matrix::from_vec(g.rows, g.cols, data));
                    }
                    if self.needs(b) {
                        let va = &self.nodes[a.0].value;
                        let data = g.data.iter().zip(va.data.iter()).map(|(&x, &y)| x * y).collect();
                        self.accum(b, Matrix::from_vec(g.rows, g.cols, data));
                    }
                }
                Op::AddRow(a, b) => {
                    if self.needs(a) {
                        self.accum(a, g.clone());
                    }
                    if self.needs(b) {
                        let mut gb = Matrix::zeros(1, g.cols);
                        for r in 0..g.rows {
                            for c in 0..g.cols {
                                gb.data[c] += g.data[r * g.cols + c];
                            }
                        }
                        self.accum(b, gb);
                    }
                }
                Op::MulCol(a, b) => {
                    if self.needs(a) {
                        let vb = &self.nodes[b.0].value;
                        let mut ga = g.clone();
                        for r in 0..ga.rows {
                            let s = vb.data[r];
                            for c in 0..ga.cols {
                                ga.data[r * ga.cols + c] *= s;
                            }
                        }
                        self.accum(a, ga);
                    }
                    if self.needs(b) {
                        let va = &self.nodes[a.0].value;
                        let mut gb = Matrix::zeros(g.rows, 1);
                        for r in 0..g.rows {
                            let mut acc = 0.0;
                            for c in 0..g.cols {
                                acc += g.data[r * g.cols + c] * va.data[r * va.cols + c];
                            }
                            gb.data[r] = acc;
                        }
                        self.accum(b, gb);
                    }
                }
                Op::Scale(a, s) => self.accum(a, g.map(|x| x * s)),
                Op::Offset(a, _) => self.accum(a, g),
                Op::Sigmoid(a) => {
                    let y = &self.nodes[i].value;
                    let data = g.data.iter().zip(y.data.iter()).map(|(&gi, &yi)| gi * yi * (1.0 - yi)).collect();
                    self.accum(a, Matrix::from_vec(g.rows, g.cols, data));
                }
                Op::Tanh(a) => {
                    let y = &self.nodes[i].value;
                    let data = g.data.iter().zip(y.data.iter()).map(|(&gi, &yi)| gi * (1.0 - yi * yi)).collect();
                    self.accum(a, Matrix::from_vec(g.rows, g.cols, data));
                }
                Op::LeakyRelu(a, slope) => {
                    let x = &self.nodes[a.0].value;
                    let data = g
                        .data
                        .iter()
                        .zip(x.data.iter())
                        .map(|(&gi, &xi)| if xi >= 0.0 { gi } else { gi * slope })
                        .collect();
                    self.accum(a, Matrix::from_vec(g.rows, g.cols, data));
                }
                Op::Exp(a) => {
                    let y = &self.nodes[i].value;
                    let data = g.data.iter().zip(y.data.iter()).map(|(&gi, &yi)| gi * yi).collect();
                    self.accum(a, Matrix::from_vec(g.rows, g.cols, data));
                }
                Op::Softplus(a) => {
                    let x = &self.nodes[a.0].value;
                    let data = g.data.iter().zip(x.data.iter()).map(|(&gi, &xi)| gi * sigmoid(xi)).collect();
                    self.accum(a, Matrix::from_vec(g.rows, g.cols, data));
                }
                Op::ConcatCols(a, b) => {
                    let ca = self.nodes[a.0].value.cols;
                    if self.needs(a) {
                        self.accum(a, g.slice_cols(0, ca));
                    }
                    if self.needs(b) {
                        self.accum(b, g.slice_cols(ca, g.cols));
                    }
                }
                Op::SliceCols(a, c0, c1) => {
                    let va_shape = self.nodes[a.0].value.shape();
                    let mut ga = Matrix::zeros(va_shape.0, va_shape.1);
                    for r in 0..g.rows {
                        for (k, c) in (c0..c1).enumerate() {
                            ga.data[r * va_shape.1 + c] = g.data[r * g.cols + k];
                        }
                    }
                    self.accum(a, ga);
                }
                Op::RowSum(a) => {
                    let va_shape = self.nodes[a.0].value.shape();
                    let mut ga = Matrix::zeros(va_shape.0, va_shape.1);
                    for r in 0..va_shape.0 {
                        let s = g.data[r];
                        for c in 0..va_shape.1 {
                            ga.data[r * va_shape.1 + c] = s;
                        }
                    }
                    self.accum(a, ga);
                }
                Op::Mean(a) => {
                    let va_shape = self.nodes[a.0].value.shape();
                    let n = (va_shape.0 * va_shape.1).max(1) as f32;
                    let ga = Matrix::full(va_shape.0, va_shape.1, g.data[0] / n);
                    self.accum(a, ga);
                }
                Op::MseLoss(a, b) => {
                    let (ga_mat, gb_mat) = {
                        let (va, vb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
                        let n = va.data.len().max(1) as f32;
                        let s = 2.0 * g.data[0] / n;
                        let diff: Vec<f32> =
                            va.data.iter().zip(vb.data.iter()).map(|(&x, &y)| s * (x - y)).collect();
                        let ga = Matrix::from_vec(va.rows, va.cols, diff.clone());
                        let gb = Matrix::from_vec(va.rows, va.cols, diff.iter().map(|&d| -d).collect());
                        (ga, gb)
                    };
                    if self.needs(a) {
                        self.accum(a, ga_mat);
                    }
                    if self.needs(b) {
                        self.accum(b, gb_mat);
                    }
                }
                Op::BceWithLogits(l, targets) => {
                    let vl = &self.nodes[l.0].value;
                    let n = vl.data.len().max(1) as f32;
                    let s = g.data[0] / n;
                    let data = vl
                        .data
                        .iter()
                        .zip(targets.data.iter())
                        .map(|(&x, &t)| s * (sigmoid(x) - t))
                        .collect();
                    self.accum(l, Matrix::from_vec(vl.rows, vl.cols, data));
                }
                Op::WeightedSum(terms) => {
                    for (id, w) in terms {
                        self.accum(id, Matrix::from_vec(1, 1, vec![g.data[0] * w]));
                    }
                }
                Op::GaussianNll { mu, sigma, target } => {
                    let (gmu, gsigma) = {
                        let (vm, vs) = (&self.nodes[mu.0].value, &self.nodes[sigma.0].value);
                        let n = vm.data.len().max(1) as f32;
                        let s = g.data[0] / n;
                        let gmu_data: Vec<f32> = (0..vm.data.len())
                            .map(|k| {
                                let sd = vs.data[k].max(1e-6);
                                s * (vm.data[k] - target.data[k]) / (sd * sd)
                            })
                            .collect();
                        let gsigma_data: Vec<f32> = (0..vm.data.len())
                            .map(|k| {
                                let sd = vs.data[k].max(1e-6);
                                let d = target.data[k] - vm.data[k];
                                s * (1.0 / sd - d * d / (sd * sd * sd))
                            })
                            .collect();
                        (
                            Matrix::from_vec(vm.rows, vm.cols, gmu_data),
                            Matrix::from_vec(vs.rows, vs.cols, gsigma_data),
                        )
                    };
                    if self.needs(mu) {
                        self.accum(mu, gmu);
                    }
                    if self.needs(sigma) {
                        self.accum(sigma, gsigma);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    /// Finite-difference check of d loss / d w for a scalar function builder.
    fn check_grad(build: impl Fn(&mut Graph, &ParamStore, ParamId) -> NodeId) {
        let mut rng = Rng::seed_from(123);
        let mut store = ParamStore::new();
        let data: Vec<f32> = (0..6).map(|_| rng.uniform(-1.0, 1.0) as f32).collect();
        let w = store.add("w", Matrix::from_vec(2, 3, data));

        // Analytic gradient.
        store.zero_grad();
        let mut g = Graph::new();
        let loss = build(&mut g, &store, w);
        g.backward(loss, &mut store);
        let analytic = store.grad(w).clone();

        // Finite differences.
        let eps = 1e-3f32;
        for k in 0..6 {
            let orig = store.value(w).data[k];
            store.value_mut(w).data[k] = orig + eps;
            let mut gp = Graph::new();
            let lp = build(&mut gp, &store, w);
            let fp = gp.value(lp).data[0];
            store.value_mut(w).data[k] = orig - eps;
            let mut gm = Graph::new();
            let lm = build(&mut gm, &store, w);
            let fm = gm.value(lm).data[0];
            store.value_mut(w).data[k] = orig;
            let numeric = (fp - fm) / (2.0 * eps);
            let a = analytic.data[k];
            assert!(
                (a - numeric).abs() < 2e-2 * (1.0 + a.abs().max(numeric.abs())),
                "grad mismatch at {k}: analytic {a}, numeric {numeric}"
            );
        }
    }

    #[test]
    fn grad_matmul_mean() {
        check_grad(|g, s, w| {
            let wn = g.param(s, w);
            let x = g.input(Matrix::from_vec(3, 2, vec![0.3, -0.2, 0.5, 0.7, -0.1, 0.4]));
            let y = g.matmul(wn, x);
            g.mean(y)
        });
    }

    #[test]
    fn grad_sigmoid_tanh_chain() {
        check_grad(|g, s, w| {
            let wn = g.param(s, w);
            let a = g.sigmoid(wn);
            let b = g.tanh(a);
            g.mean(b)
        });
    }

    #[test]
    fn grad_leaky_relu_exp_softplus() {
        check_grad(|g, s, w| {
            let wn = g.param(s, w);
            let a = g.leaky_relu(wn, 0.1);
            let b = g.softplus(a);
            let c = g.exp(b);
            g.mean(c)
        });
    }

    #[test]
    fn grad_mse_loss() {
        check_grad(|g, s, w| {
            let wn = g.param(s, w);
            let target = g.input(Matrix::from_vec(2, 3, vec![0.1; 6]));
            g.mse_loss(wn, target)
        });
    }

    #[test]
    fn grad_bce_with_logits() {
        check_grad(|g, s, w| {
            let wn = g.param(s, w);
            g.bce_with_logits(wn, Matrix::from_vec(2, 3, vec![1.0, 0.0, 1.0, 0.0, 1.0, 0.0]))
        });
    }

    #[test]
    fn grad_gaussian_nll() {
        check_grad(|g, s, w| {
            let wn = g.param(s, w);
            let mu = g.slice_cols(wn, 0, 3); // rows 2 cols 3 -> use whole as mu
            let raw = g.scale(wn, 0.5);
            let sp = g.softplus(raw);
            let sigma = g.offset(sp, 0.1);
            g.gaussian_nll(mu, sigma, Matrix::from_vec(2, 3, vec![0.2; 6]))
        });
    }

    #[test]
    fn grad_concat_slice_rowsum() {
        check_grad(|g, s, w| {
            let wn = g.param(s, w);
            let x = g.input(Matrix::from_vec(2, 2, vec![0.4, -0.3, 0.2, 0.8]));
            let cat = g.concat_cols(wn, x); // 2 x 5
            let sl = g.slice_cols(cat, 1, 4);
            let rs = g.row_sum(sl);
            g.mean(rs)
        });
    }

    #[test]
    fn grad_mul_col_broadcast() {
        check_grad(|g, s, w| {
            let wn = g.param(s, w);
            let b = g.input(Matrix::from_vec(2, 1, vec![0.7, -1.2]));
            let y = g.mul_col(wn, b);
            g.mean(y)
        });
    }

    #[test]
    fn grad_add_row_bias() {
        check_grad(|g, s, w| {
            let wn = g.param(s, w);
            let x = g.input(Matrix::from_vec(2, 3, vec![0.1; 6]));
            let mul = g.mul(wn, x);
            let bias = g.input(Matrix::from_vec(1, 3, vec![0.5, -0.5, 0.2]));
            let y = g.add_row(mul, bias);
            let t = g.tanh(y);
            g.mean(t)
        });
    }

    #[test]
    fn grad_weighted_sum_combines() {
        check_grad(|g, s, w| {
            let wn = g.param(s, w);
            let m1 = g.mean(wn);
            let sq = g.mul(wn, wn);
            let m2 = g.mean(sq);
            g.weighted_sum(vec![(m1, 0.3), (m2, 0.7)])
        });
    }

    #[test]
    fn bias_gradient_through_add_row() {
        // Directly check the AddRow rhs gradient (row-sum of upstream).
        let mut store = ParamStore::new();
        let b = store.add("b", Matrix::from_vec(1, 2, vec![0.0, 0.0]));
        let mut g = Graph::new();
        let x = g.input(Matrix::from_vec(3, 2, vec![1.0; 6]));
        let bn = g.param(&store, b);
        let y = g.add_row(x, bn);
        let loss = g.mean(y);
        g.backward(loss, &mut store);
        // d mean / d b_c = rows / (rows*cols) = 3/6 = 0.5
        assert!(store.grad(b).data.iter().all(|&v| (v - 0.5).abs() < 1e-6));
    }

    #[test]
    fn linear_regression_converges() {
        // Learn y = 2x + 1 with a 1x1 weight and bias via the graph.
        let mut rng = Rng::seed_from(9);
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::from_vec(1, 1, vec![0.0]));
        let b = store.add("b", Matrix::from_vec(1, 1, vec![0.0]));
        let mut opt = crate::params::Adam::new(0.05);
        for _ in 0..300 {
            let xs: Vec<f32> = (0..16).map(|_| rng.uniform(-1.0, 1.0) as f32).collect();
            let ys: Vec<f32> = xs.iter().map(|&x| 2.0 * x + 1.0).collect();
            store.zero_grad();
            let mut g = Graph::new();
            let x = g.input(Matrix::from_vec(16, 1, xs));
            let wn = g.param(&store, w);
            let bn = g.param(&store, b);
            let xw = g.matmul(x, wn);
            let pred = g.add_row(xw, bn);
            let target = g.input(Matrix::from_vec(16, 1, ys));
            let loss = g.mse_loss(pred, target);
            g.backward(loss, &mut store);
            opt.step(&mut store);
        }
        assert!((store.value(w).data[0] - 2.0).abs() < 0.05);
        assert!((store.value(b).data[0] - 1.0).abs() < 0.05);
    }
}
