//! Global thread-count configuration for the parallel compute kernels.
//!
//! The worker count is resolved once, lazily, from the `GENDT_THREADS`
//! environment variable (falling back to the machine's available
//! parallelism, capped at 16), and installed into the rayon global pool.
//! Tests and embedders can override it in-process with
//! [`set_num_threads`].
//!
//! # Determinism contract
//!
//! Nothing in this crate's numeric output may depend on the thread
//! count. Parallel kernels partition work by *shape only* (fixed row
//! chunks), every task writes a disjoint output region, and per-element
//! accumulation order is identical whether a chunk runs inline or on a
//! worker — so `GENDT_THREADS=1` and `GENDT_THREADS=16` produce
//! bitwise-identical results on the same build.

use gendt_sync::atomic::{AtomicUsize, Ordering};

/// Resolved worker count; 0 means "not yet resolved".
static NUM_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Upper bound on the worker count resolved from the environment.
const MAX_THREADS: usize = 16;

/// The number of worker threads the compute kernels may use.
///
/// First call resolves `GENDT_THREADS` (a positive integer; unset,
/// empty, or unparsable values fall back to available parallelism) and
/// installs the rayon global pool; later calls are a single atomic load.
pub fn num_threads() -> usize {
    // sync: isolated config cell; the CAS below settles resolution.
    let n = NUM_THREADS.load(Ordering::Relaxed);
    if n != 0 {
        return n;
    }
    let resolved = match std::env::var("GENDT_THREADS") {
        Ok(s) => match s.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n.min(MAX_THREADS),
            _ => default_threads(),
        },
        Err(_) => default_threads(),
    };
    // sync: CAS, not a store — two racing first calls (or a concurrent
    // set_num_threads override) must settle on exactly one value; the
    // loser adopts the winner's count instead of clobbering it.
    match NUM_THREADS.compare_exchange(0, resolved, Ordering::Relaxed, Ordering::Relaxed) {
        Ok(_) => {
            install_pool(resolved);
            resolved
        }
        Err(settled) => settled,
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(MAX_THREADS)
}

/// Override the worker count in-process (wins over `GENDT_THREADS`).
///
/// `n` is clamped to `1..=16`. Intended for tests asserting the
/// determinism contract and for embedders that manage their own
/// parallelism budget.
pub fn set_num_threads(n: usize) {
    let n = n.clamp(1, MAX_THREADS);
    // sync: explicit override; last writer wins by design.
    NUM_THREADS.store(n, Ordering::Relaxed);
    install_pool(n);
}

/// Keep the rayon global pool in step; the vendored shim lets the
/// latest value win.
fn install_pool(n: usize) {
    let _ = rayon::ThreadPoolBuilder::new()
        .num_threads(n)
        .build_global();
}

/// Run `task(chunk_index, chunk)` over disjoint `chunk_len`-element
/// chunks of `out`, in parallel when more than one worker is configured.
///
/// The chunking is part of the caller's deterministic partitioning: it
/// must be derived from problem shape only, never from the thread count.
/// Chunks are independent, so execution order cannot affect the result.
pub fn par_chunks_mut<F>(out: &mut [f32], chunk_len: usize, task: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    debug_assert!(chunk_len > 0, "par_chunks_mut: chunk_len must be positive");
    if out.is_empty() {
        return;
    }
    if num_threads() <= 1 || out.len() <= chunk_len {
        for (ci, chunk) in out.chunks_mut(chunk_len).enumerate() {
            task(ci, chunk);
        }
    } else {
        let task = &task;
        rayon::scope(|s| {
            for (ci, chunk) in out.chunks_mut(chunk_len).enumerate() {
                s.spawn(move |_| task(ci, chunk));
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Single test: these assertions share the process-global thread
    // count, so they must not run concurrently with each other.
    #[test]
    fn thread_count_clamps_and_par_chunks_cover_every_chunk() {
        set_num_threads(0);
        assert_eq!(num_threads(), 1);
        set_num_threads(usize::MAX);
        assert_eq!(num_threads(), MAX_THREADS);

        for threads in [1, 4] {
            set_num_threads(threads);
            assert_eq!(num_threads(), threads);
            let mut data = vec![0.0f32; 103];
            par_chunks_mut(&mut data, 10, |ci, chunk| {
                for v in chunk.iter_mut() {
                    *v += 1.0 + ci as f32;
                }
            });
            for (i, v) in data.iter().enumerate() {
                assert_eq!(
                    *v,
                    1.0 + (i / 10) as f32,
                    "element {i} wrong for {threads} threads"
                );
            }
        }
        set_num_threads(1);
    }
}
