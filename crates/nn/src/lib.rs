//! # gendt-nn — minimal neural-network substrate for GenDT
//!
//! A from-scratch, pure-Rust deep-learning substrate: dense matrices,
//! reverse-mode automatic differentiation, LSTM / fully-connected layers,
//! the SRNN stochastic layer from the GenDT paper, dropout, Adam, and the
//! GAN / Gaussian losses the GenDT training scheme needs.
//!
//! Design goals follow the networking guides this repo was built against:
//! simplicity and robustness over cleverness — no `unsafe`, no macro or
//! type tricks, a deliberately small op set, and deterministic seeding
//! everywhere so experiments are reproducible.
//!
//! ## Architecture
//!
//! * [`matrix::Matrix`] — dense row-major `f32` matrices; rows carry the
//!   mini-batch, columns carry features, time is unrolled by layers.
//! * [`graph::Graph`] — a single-use autodiff tape. One training step =
//!   one graph; parameters persist in a [`params::ParamStore`].
//! * [`layers`] — `Linear`, `Lstm` (with SRNN stochastic layers), `Mlp`,
//!   and inverted dropout.
//! * [`params`] — parameter store, gradient clipping/scrubbing, Adam, SGD.
//! * [`threads`] — `GENDT_THREADS` worker-count plumbing and the
//!   deterministic parallel-partitioning helper used by the blocked
//!   matrix kernels (the kernels themselves are internal to the crate;
//!   `Matrix::matmul*` is the public surface).
//! * [`checkpoint`] — JSON save/restore by parameter name.
//! * [`sanitize`] — opt-in `GENDT_SANITIZE=1` mode: every forward value
//!   and backward gradient is checked for NaN/Inf and shape corruption
//!   at op granularity.
//! * [`rng::Rng`] — a fixed-algorithm deterministic RNG.
//!
//! ## Example
//!
//! ```
//! use gendt_nn::{graph::Graph, layers::Mlp, matrix::Matrix,
//!                params::{Adam, ParamStore}, rng::Rng};
//!
//! let mut rng = Rng::seed_from(42);
//! let mut store = ParamStore::new();
//! let mlp = Mlp::new(&mut store, "demo", &[1, 8, 1], &mut rng);
//! let mut opt = Adam::new(0.02);
//! // Fit y = 3x on a few steps.
//! for _ in 0..200 {
//!     store.zero_grad();
//!     let mut g = Graph::new();
//!     let x = g.input(Matrix::from_vec(4, 1, vec![-1.0, -0.5, 0.5, 1.0]));
//!     let pred = mlp.forward(&mut g, &store, x);
//!     let target = g.input(Matrix::from_vec(4, 1, vec![-3.0, -1.5, 1.5, 3.0]));
//!     let loss = g.mse_loss(pred, target);
//!     g.backward(loss, &mut store);
//!     opt.step(&mut store);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod graph;
mod kernels;
pub mod layers;
pub mod matrix;
pub mod params;
pub mod plan;
pub mod sanitize;
pub mod threads;
/// Deterministic RNG (re-exported from `gendt-rng`).
pub mod rng {
    pub use gendt_rng::*;
}

pub use graph::{Graph, NodeId, Op};
pub use kernels::set_reference_kernels;
pub use layers::{dropout, Linear, Lstm, LstmNodeState, LstmState, Mlp, StochasticCfg};
pub use matrix::Matrix;
pub use params::{Adam, ParamId, ParamStore, Sgd};
pub use plan::{fold_dims, LiveRange, Plan, PlanCache, PlanKey};
pub use rng::Rng;
pub use sanitize::{sanitize_enabled, set_sanitize};
pub use threads::{num_threads, set_num_threads};
