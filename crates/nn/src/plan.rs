//! Ahead-of-time compiled execution plans with arena memory.
//!
//! The interpreted [`Graph`](crate::graph::Graph) re-records its tape and
//! re-allocates every intermediate on every step, which is pure overhead
//! for GenDT's train-once/generate-many workload: the op sequence is a
//! pure function of the (model, batch-shape) pair. This module compiles
//! one recorded tape into a [`Plan`] — a topo-ordered op list with
//! resolved shapes for forward and backward — and re-executes it with
//! **zero per-step heap allocation**:
//!
//! * **Liveness + arena.** A first-use/last-use interval pass assigns
//!   every value and gradient to a slot in a reusable arena. Slots are
//!   `Matrix` buffers allocated once at compile time and rebound
//!   (shape + length within the preallocated capacity) as steps
//!   execute; two live buffers never share a slot (see
//!   [`Plan::live_ranges`]).
//! * **Plan-time fusion.** Two chain patterns from the recorded tape are
//!   collapsed at compile time: the LSTM gate assembly
//!   `MatMul + MatMul + AddAddRow` becomes two in-place GEMMs plus a
//!   bias pass into one buffer ([`Kind::FusedGates`]), and an
//!   `LstmCell` whose `[h | c]` output is consumed only by its two
//!   column slices writes `h` and `c` directly into the slices' slots
//!   without materializing the concatenation ([`Kind::CellSplit`]).
//! * **Replay via the same builder.** A plan is executed by running the
//!   *same* model-building code against [`Graph::replay`]: each op
//!   constructor validates that it matches the recorded step (panicking
//!   loudly on divergence), refreshes per-step constants (inputs, noise,
//!   targets) in place, and evaluates into the arena. This keeps
//!   control-flow that depends on intermediate values (the generator's
//!   free-running feedback loop) working unchanged.
//!
//! # Determinism contract
//!
//! Plan execution is **bitwise identical** to the interpreted tape: every
//! forward kernel and every backward contribution replicates the
//! interpreted arithmetic exactly, including accumulation order and the
//! `±0.0` behavior of sparse gradient scatters. `GENDT_PLAN=1` therefore
//! changes wall-clock, never numbers; the interpreted tape remains the
//! reference and the parity gate in `scripts/ci.sh` enforces agreement.

use crate::graph::{cell_act, NodeId, Op};
use crate::kernels;
use crate::matrix::Matrix;
use crate::params::{ParamId, ParamStore};
use gendt_sync::Mutex;
use std::collections::BinaryHeap;

/// Slot sentinel: this step has no value (or gradient) buffer.
const NONE: u32 = u32::MAX;

/// Release time for arena bindings that live for the whole plan.
const PINNED: usize = usize::MAX;

/// How a step executes, decided once at compile time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Kind {
    /// Execute the recorded op as-is.
    Plain,
    /// A `MatMul` absorbed into a [`Kind::FusedGates`] parent: forward is
    /// a no-op (the parent computes both products), backward reads the
    /// parent's gradient directly instead of a materialized copy.
    GateMatmul {
        /// Step index of the absorbing `AddAddRow`.
        parent: u32,
    },
    /// An `AddAddRow(xi, hh, bias)` whose two addends are single-consumer
    /// `MatMul`s: evaluated as GEMM-store + GEMM-accumulate + bias pass
    /// into one buffer. Backward contributes only the bias column sum;
    /// the matmul operands take their gradients at the [`Kind::GateMatmul`]
    /// steps, reading this step's gradient in place.
    FusedGates {
        /// Step index of the first absorbed `MatMul` (`x · W_ih`).
        xi: u32,
        /// Step index of the second absorbed `MatMul` (`h · W_hh`).
        hh: u32,
    },
    /// An `LstmCell` whose `[h | c]` output is consumed exactly by its
    /// two covering `SliceCols`: forward writes `h` and `c` straight into
    /// the slices' slots (the concatenated value is never materialized),
    /// backward assembles the split gradients with the interpreted
    /// scatter's exact `±0.0` semantics.
    CellSplit {
        /// Step index of the `SliceCols(.., 0, hidden)` consumer.
        h_step: u32,
        /// Step index of the `SliceCols(.., hidden, 2*hidden)` consumer.
        c_step: u32,
    },
    /// A `SliceCols` owned by a [`Kind::CellSplit`] parent: forward and
    /// backward are no-ops (the cell writes the value and consumes the
    /// gradient).
    CellSlice,
}

/// One compiled step: the recorded op plus resolved shape, execution
/// kind, and arena slot assignments.
#[derive(Debug)]
pub(crate) struct Step {
    pub(crate) op: Op,
    pub(crate) kind: Kind,
    /// Arena slot holding this step's forward value ([`NONE`] for
    /// [`Kind::GateMatmul`] steps, whose value is never materialized).
    pub(crate) val_slot: u32,
    /// Arena slot holding this step's gradient during backward
    /// ([`NONE`] when no gradient ever materializes here).
    pub(crate) grad_slot: u32,
    pub(crate) needs_grad: bool,
    /// Whether the recording pass read this value externally
    /// (via [`crate::graph::Graph::value`]); such slots are pinned.
    pub(crate) ext: bool,
    pub(crate) rows: u32,
    pub(crate) cols: u32,
}

/// One arena-slot binding interval, for introspection and the
/// no-aliasing property tests.
#[derive(Clone, Copy, Debug)]
pub struct LiveRange {
    /// Arena slot index.
    pub slot: usize,
    /// Step index whose value/gradient this binding holds.
    pub step: usize,
    /// True for a gradient binding, false for a value binding.
    pub is_grad: bool,
    /// First timeline point the buffer is live (forward step index, or
    /// `2n-1-i` for gradients born during backward).
    pub start: usize,
    /// Last timeline point the buffer is read (`usize::MAX` = pinned).
    pub end: usize,
    /// Element count of the bound shape.
    pub elems: usize,
}

/// Whether a [`crate::graph::Graph`] is recording a fresh tape or
/// replaying a compiled [`Plan`].
// Boxing `Replay::plan` would cost a heap allocation on every replayed
// step, defeating the executor's zero-allocation property; `Mode` lives
// inside `Graph`, never in bulk collections, so the size skew is inert.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub(crate) enum Mode {
    /// Normal operation: every builder call appends a tape node.
    Record,
    /// Replay: builder calls advance `cursor` through the plan's steps,
    /// executing each compiled step in the arena instead of recording.
    Replay {
        /// The compiled plan being replayed.
        plan: Plan,
        /// Number of steps replayed so far.
        cursor: usize,
    },
}

/// A compiled execution plan: topo-ordered steps, the arena they execute
/// in, and everything needed to replay forward/backward with zero heap
/// allocation. Build one with [`crate::graph::Graph::into_plan`] and
/// execute it with [`crate::graph::Graph::replay`].
#[derive(Debug)]
pub struct Plan {
    pub(crate) steps: Vec<Step>,
    /// The arena: one reusable `Matrix` per slot, allocated to its
    /// maximum bound capacity at compile time.
    slots: Vec<Matrix>,
    /// Per-slot element capacity (rebinding must stay within it).
    caps: Vec<usize>,
    /// Whether each step's gradient currently holds a contribution
    /// (replicates the interpreted tape's `Option<Matrix>` set/add
    /// semantics without allocating).
    grad_present: Vec<bool>,
    /// Shared scratch for GEMM packing, LSTM activations, and backward
    /// row reductions. Sized at compile time to the largest need.
    ws: Vec<f32>,
    /// Loss step index when the plan was compiled from a tape that runs
    /// backward; `None` for generation-only plans.
    loss: Option<usize>,
    /// All `Param` steps in recording order, for store synchronization.
    param_steps: Vec<(ParamId, u32)>,
    /// Per-replay param memoization (mirrors the recording tape's
    /// `param_nodes` map); cleared by [`crate::graph::Graph::replay`].
    pub(crate) param_memo: Vec<(ParamId, u32)>,
    /// Store version the param slots were last synchronized against.
    param_version: u64,
    /// Param steps consumed as the B operand of a forward GEMM, whose
    /// column-block pack is hoisted out of the per-step kernel: packed
    /// once per store version by [`Plan::sync_params`], then reused by
    /// every GEMM reading them (an LSTM weight is hit `L` times per
    /// forward). `pack_of[step]` indexes `pack_steps`/`pack_bufs`.
    pack_steps: Vec<u32>,
    /// Pre-packed buffers, parallel to `pack_steps` (see
    /// [`crate::kernels::pack_b_full`]); allocated at compile time.
    pack_bufs: Vec<Vec<f32>>,
    /// Per-step index into `pack_bufs` ([`NONE`] when not packed).
    pack_of: Vec<u32>,
    /// Binding intervals, kept for property tests and diagnostics.
    ranges: Vec<LiveRange>,
}

impl Plan {
    /// Number of compiled steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True when the plan has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Number of arena slots.
    pub fn arena_slots(&self) -> usize {
        self.caps.len()
    }

    /// Total bytes held by the arena (slot capacities plus workspace).
    pub fn arena_bytes(&self) -> usize {
        4 * (self.caps.iter().sum::<usize>() + self.ws.len())
    }

    /// All binding intervals assigned by the liveness pass.
    pub fn live_ranges(&self) -> &[LiveRange] {
        &self.ranges
    }

    /// Per-slot element capacities.
    pub fn slot_caps(&self) -> &[usize] {
        &self.caps
    }

    fn val_ref(&self, i: usize) -> &Matrix {
        &self.slots[self.steps[i].val_slot as usize]
    }

    fn grad_ref(&self, i: usize) -> &Matrix {
        &self.slots[self.steps[i].grad_slot as usize]
    }

    pub(crate) fn diverged(&self, i: usize, got: &str) -> ! {
        panic!(
            "plan replay diverged at step {i}: recorded {}, got {got}; \
             the plan cache key does not fully determine the op sequence",
            self.steps[i].op.describe()
        )
    }

    pub(crate) fn expect_step(&self, i: usize, what: &str) {
        assert!(
            i < self.steps.len(),
            "plan replay overran the recorded tape at step {i} (got {what}); \
             the plan cache key does not fully determine the op sequence"
        );
    }

    /// Value of an externally-read step during replay.
    pub(crate) fn ext_value(&self, i: usize, cursor: usize) -> &Matrix {
        assert!(i < cursor, "plan replay: value read before step {i} ran");
        let st = &self.steps[i];
        assert!(
            st.ext,
            "plan replay: step {i} ({}) was not read externally during \
             recording; external reads must be identical for every \
             execution of the same plan key",
            st.op.describe()
        );
        &self.slots[st.val_slot as usize]
    }

    // -----------------------------------------------------------------
    // Forward execution (the zero-allocation step path)
    // -----------------------------------------------------------------
    // plan-lint: begin step path

    /// Take a step's value buffer out of the arena, bound to the step's
    /// recorded shape. Rebinding resizes within the preallocated slot
    /// capacity and never reallocates.
    fn take_val(&mut self, i: usize) -> Matrix {
        let st = &self.steps[i];
        let os = st.val_slot as usize;
        let (r, c) = (st.rows as usize, st.cols as usize);
        debug_assert!(r * c <= self.caps[os], "arena slot capacity underflow");
        let mut m = std::mem::take(&mut self.slots[os]);
        m.rows = r;
        m.cols = c;
        m.data.resize(r * c, 0.0);
        m
    }

    fn put_val(&mut self, i: usize, m: Matrix) {
        self.slots[self.steps[i].val_slot as usize] = m;
    }

    /// Bind a step's value slot and copy `src` into it (inputs, frozen
    /// params, and the store synchronization path).
    pub(crate) fn write_value(&mut self, i: usize, src: &Matrix) {
        let st = &self.steps[i];
        assert_eq!(
            (src.rows, src.cols),
            (st.rows as usize, st.cols as usize),
            "plan replay: shape of step {i} ({}) changed; the plan cache \
             key does not fully determine shapes",
            st.op.describe()
        );
        let mut m = self.take_val(i);
        m.data.copy_from_slice(&src.data);
        self.put_val(i, m);
    }

    /// Synchronize all parameter slots from `store`, gated on the store's
    /// mutation version so unchanged replays skip the copies entirely.
    pub(crate) fn sync_params(&mut self, store: &ParamStore) {
        if self.param_version == store.version() {
            return;
        }
        for k in 0..self.param_steps.len() {
            let (pid, si) = self.param_steps[k];
            self.write_value(si as usize, store.value(pid));
        }
        // Refresh the hoisted GEMM packs from the freshly synced values.
        for k in 0..self.pack_steps.len() {
            let si = self.pack_steps[k] as usize;
            let mut buf = std::mem::take(&mut self.pack_bufs[k]);
            kernels::pack_b_full(self.val_ref(si), &mut buf);
            self.pack_bufs[k] = buf;
        }
        self.param_version = store.version();
    }

    /// Evaluate step `i` into the arena. `extra` carries the per-step
    /// noise matrix for `NoisyRenorm` (the one recorded constant whose
    /// refresh needs an input value); all other per-step constants are
    /// refreshed in place by the replaying constructor before this call.
    pub(crate) fn eval(&mut self, i: usize, extra: Option<&Matrix>) {
        match self.steps[i].kind {
            // Value produced (or never materialized) elsewhere.
            Kind::GateMatmul { .. } | Kind::CellSlice => return,
            Kind::CellSplit { h_step, c_step } => {
                self.eval_cell_split(i, h_step as usize, c_step as usize);
                return;
            }
            Kind::FusedGates { xi, hh } => {
                self.eval_fused_gates(i, xi as usize, hh as usize);
                return;
            }
            Kind::Plain => {}
        }
        if let Op::NoisyRenorm { .. } = self.steps[i].op {
            let u = extra.expect("plan replay: NoisyRenorm needs its noise input");
            self.eval_noisy_renorm(i, u);
            return;
        }
        let mut out = self.take_val(i);
        let mut ws = std::mem::take(&mut self.ws);
        let rows = out.rows;
        let cols = out.cols;
        match &self.steps[i].op {
            // Values written by the constructor / param sync, not here.
            Op::Input | Op::Param(_) => {}
            Op::MatMul(a, b) => {
                if kernels::reference_kernels() {
                    let va = self.val_ref(a.index());
                    let vb = self.val_ref(b.index());
                    let res = va.matmul_naive(vb); // plan-lint: allow-alloc (reference kernels)
                    out.data.copy_from_slice(&res.data);
                } else {
                    self.gemm_step(a.index(), b.index(), &mut out, &mut ws, false);
                }
            }
            Op::Add(a, b) => {
                let (va, vb) = (self.val_ref(a.index()), self.val_ref(b.index()));
                for ((o, &x), &y) in out.data.iter_mut().zip(&va.data).zip(&vb.data) {
                    *o = x + y;
                }
            }
            Op::Sub(a, b) => {
                let (va, vb) = (self.val_ref(a.index()), self.val_ref(b.index()));
                for ((o, &x), &y) in out.data.iter_mut().zip(&va.data).zip(&vb.data) {
                    *o = x - y;
                }
            }
            Op::Mul(a, b) => {
                let (va, vb) = (self.val_ref(a.index()), self.val_ref(b.index()));
                for ((o, &x), &y) in out.data.iter_mut().zip(&va.data).zip(&vb.data) {
                    *o = x * y;
                }
            }
            Op::AddRow(a, b) => {
                let (va, vb) = (self.val_ref(a.index()), self.val_ref(b.index()));
                for r in 0..rows {
                    let ar = &va.data[r * cols..(r + 1) * cols];
                    let o = &mut out.data[r * cols..(r + 1) * cols];
                    for c in 0..cols {
                        o[c] = ar[c] + vb.data[c];
                    }
                }
            }
            Op::MulCol(a, b) => {
                let (va, vb) = (self.val_ref(a.index()), self.val_ref(b.index()));
                for r in 0..rows {
                    let s = vb.data[r];
                    let ar = &va.data[r * cols..(r + 1) * cols];
                    let o = &mut out.data[r * cols..(r + 1) * cols];
                    for c in 0..cols {
                        o[c] = ar[c] * s;
                    }
                }
            }
            Op::Scale(a, s) => {
                let s = *s;
                let va = self.val_ref(a.index());
                for (o, &x) in out.data.iter_mut().zip(&va.data) {
                    *o = x * s;
                }
            }
            Op::Offset(a, s) => {
                let s = *s;
                let va = self.val_ref(a.index());
                for (o, &x) in out.data.iter_mut().zip(&va.data) {
                    *o = x + s;
                }
            }
            Op::Sigmoid(a) => {
                let va = self.val_ref(a.index());
                if kernels::reference_kernels() {
                    for (o, &x) in out.data.iter_mut().zip(&va.data) {
                        *o = crate::graph::stable_sigmoid(x);
                    }
                } else {
                    for (o, &x) in out.data.iter_mut().zip(&va.data) {
                        *o = kernels::fast_sigmoid(x);
                    }
                }
            }
            Op::Tanh(a) => {
                let va = self.val_ref(a.index());
                if kernels::reference_kernels() {
                    for (o, &x) in out.data.iter_mut().zip(&va.data) {
                        *o = x.tanh();
                    }
                } else {
                    for (o, &x) in out.data.iter_mut().zip(&va.data) {
                        *o = kernels::fast_tanh(x);
                    }
                }
            }
            Op::LeakyRelu(a, slope) => {
                let slope = *slope;
                let va = self.val_ref(a.index());
                for (o, &x) in out.data.iter_mut().zip(&va.data) {
                    *o = if x >= 0.0 { x } else { slope * x };
                }
            }
            Op::Exp(a) => {
                let va = self.val_ref(a.index());
                if kernels::reference_kernels() {
                    for (o, &x) in out.data.iter_mut().zip(&va.data) {
                        *o = x.exp();
                    }
                } else {
                    for (o, &x) in out.data.iter_mut().zip(&va.data) {
                        *o = kernels::fast_exp(x);
                    }
                }
            }
            Op::Softplus(a) => {
                let va = self.val_ref(a.index());
                for (o, &x) in out.data.iter_mut().zip(&va.data) {
                    *o = if x > 20.0 {
                        x
                    } else if x < -20.0 {
                        x.exp()
                    } else {
                        (1.0 + x.exp()).ln()
                    };
                }
            }
            Op::ConcatCols(a, b) => {
                let (va, vb) = (self.val_ref(a.index()), self.val_ref(b.index()));
                let (ca, cb) = (va.cols, vb.cols);
                for r in 0..rows {
                    out.data[r * cols..r * cols + ca]
                        .copy_from_slice(&va.data[r * ca..(r + 1) * ca]);
                    out.data[r * cols + ca..(r + 1) * cols]
                        .copy_from_slice(&vb.data[r * cb..(r + 1) * cb]);
                }
            }
            Op::SliceCols(a, c0, _c1) => {
                let c0 = *c0;
                let va = self.val_ref(a.index());
                let ca = va.cols;
                for r in 0..rows {
                    out.data[r * cols..(r + 1) * cols]
                        .copy_from_slice(&va.data[r * ca + c0..r * ca + c0 + cols]);
                }
            }
            Op::SliceRows(a, r0, r1) => {
                let (r0, r1) = (*r0, *r1);
                let va = self.val_ref(a.index());
                out.data.copy_from_slice(&va.data[r0 * cols..r1 * cols]);
            }
            Op::RowSum(a) => {
                let va = self.val_ref(a.index());
                for r in 0..rows {
                    out.data[r] = va.row_slice(r).iter().sum();
                }
            }
            Op::SumRowGroups(a, group) => {
                let group = *group;
                let va = self.val_ref(a.index());
                out.data.fill(0.0);
                for r in 0..rows {
                    for j in 0..group {
                        let src = (r * group + j) * cols;
                        let dst = r * cols;
                        for c in 0..cols {
                            out.data[dst + c] += va.data[src + c];
                        }
                    }
                }
            }
            Op::LstmCell {
                gates,
                c_prev,
                hidden,
            } => {
                let hidden = *hidden;
                let (vg, vc) = (self.val_ref(gates.index()), self.val_ref(c_prev.index()));
                let act = &mut ws[..4 * hidden];
                for r in 0..rows {
                    let gr = &vg.data[r * 4 * hidden..(r + 1) * 4 * hidden];
                    let cp = &vc.data[r * hidden..(r + 1) * hidden];
                    cell_act(gr, act, hidden);
                    let (i_v, rest) = act.split_at(hidden);
                    let (f_v, rest) = rest.split_at(hidden);
                    let (cand, o_v) = rest.split_at(hidden);
                    let (h_out, c_out) =
                        out.data[r * 2 * hidden..(r + 1) * 2 * hidden].split_at_mut(hidden);
                    for k in 0..hidden {
                        c_out[k] = f_v[k] * cp[k] + i_v[k] * cand[k];
                    }
                    if kernels::reference_kernels() {
                        for k in 0..hidden {
                            h_out[k] = o_v[k] * c_out[k].tanh();
                        }
                    } else {
                        for k in 0..hidden {
                            h_out[k] = o_v[k] * kernels::fast_tanh(c_out[k]);
                        }
                    }
                }
            }
            Op::NoisyRenorm { .. } => unreachable!("handled above"),
            Op::AddAddRow(a, b, bias) => {
                let (va, vb, vbias) = (
                    self.val_ref(a.index()),
                    self.val_ref(b.index()),
                    self.val_ref(bias.index()),
                );
                for r in 0..rows {
                    let ar = &va.data[r * cols..(r + 1) * cols];
                    let br = &vb.data[r * cols..(r + 1) * cols];
                    let o = &mut out.data[r * cols..(r + 1) * cols];
                    for c in 0..cols {
                        o[c] = (ar[c] + br[c]) + vbias.data[c];
                    }
                }
            }
            Op::MaskedGroupMean {
                x,
                mask,
                scale,
                group,
                ..
            } => {
                let group = *group;
                let vx = self.val_ref(x.index());
                out.data.fill(0.0);
                for r in 0..rows {
                    let o = &mut out.data[r * cols..(r + 1) * cols];
                    for j in 0..group {
                        let src = (r * group + j) * cols;
                        let m = mask.data[r * group + j];
                        for (oo, xv) in o.iter_mut().zip(&vx.data[src..src + cols]) {
                            *oo += xv * m;
                        }
                    }
                    let s = scale.data[r];
                    for oo in o.iter_mut() {
                        *oo *= s;
                    }
                }
            }
            Op::Mean(a) => {
                out.data[0] = self.val_ref(a.index()).mean();
            }
            Op::MseLoss(a, b) => {
                let (va, vb) = (self.val_ref(a.index()), self.val_ref(b.index()));
                let n = va.data.len().max(1) as f32;
                let s: f32 = va
                    .data
                    .iter()
                    .zip(vb.data.iter())
                    .map(|(&x, &y)| (x - y) * (x - y))
                    .sum();
                out.data[0] = s / n;
            }
            Op::BceWithLogits(l, targets) => {
                let vl = self.val_ref(l.index());
                let n = vl.data.len().max(1) as f32;
                let s: f32 = vl
                    .data
                    .iter()
                    .zip(targets.data.iter())
                    .map(|(&x, &t)| x.max(0.0) - x * t + (1.0 + (-x.abs()).exp()).ln())
                    .sum();
                out.data[0] = s / n;
            }
            Op::WeightedSum(terms) => {
                let mut s = 0.0;
                for &(id, w) in terms {
                    s += w * self.slots[self.steps[id.index()].val_slot as usize].data[0];
                }
                out.data[0] = s;
            }
            Op::GaussianNll { mu, sigma, target } => {
                let (vm, vs) = (self.val_ref(mu.index()), self.val_ref(sigma.index()));
                let n = vm.data.len().max(1) as f32;
                let mut s = 0.0;
                for k in 0..vm.data.len() {
                    let m = vm.data[k];
                    let sd = vs.data[k].max(1e-6);
                    let t = target.data[k];
                    s += sd.ln() + 0.5 * ((t - m) / sd).powi(2);
                }
                out.data[0] = s / n;
            }
        }
        self.ws = ws;
        self.put_val(i, out);
    }

    /// `NoisyRenorm` forward: refresh the recorded noise buffer from the
    /// step's fresh `u` draw and the input's current row means, then
    /// renormalize — the exact interpreted constructor arithmetic.
    fn eval_noisy_renorm(&mut self, i: usize, u: &Matrix) {
        let (x, a) = match &self.steps[i].op {
            Op::NoisyRenorm { x, a, .. } => (x.index(), *a),
            _ => unreachable!(),
        };
        let mut noise = match &mut self.steps[i].op {
            Op::NoisyRenorm { noise, .. } => std::mem::take(noise),
            _ => unreachable!(),
        };
        assert_eq!(
            u.shape(),
            noise.shape(),
            "plan replay: noisy_renorm noise shape changed"
        );
        let mut out = self.take_val(i);
        let (rows, cols) = (out.rows, out.cols);
        {
            let vx = self.val_ref(x);
            for r in 0..rows {
                let xr = &vx.data[r * cols..(r + 1) * cols];
                let ur = &u.data[r * cols..(r + 1) * cols];
                let nr = &mut noise.data[r * cols..(r + 1) * cols];
                let o = &mut out.data[r * cols..(r + 1) * cols];
                let mean = xr.iter().sum::<f32>() / cols.max(1) as f32;
                for c in 0..cols {
                    nr[c] = ur[c] * mean;
                }
                for c in 0..cols {
                    o[c] = xr[c] + nr[c] * a;
                }
                let sx: f32 = xr.iter().sum();
                let sp: f32 = o.iter().sum();
                let ratio = (sx + 1e-3) * (1.0 / (sp + 1e-3));
                for ov in o.iter_mut() {
                    *ov *= ratio;
                }
            }
        }
        match &mut self.steps[i].op {
            Op::NoisyRenorm { noise: slot, .. } => *slot = noise,
            _ => unreachable!(),
        }
        self.put_val(i, out);
    }

    /// GEMM `val[a] · val[b]` into `out`, routed through the hoisted
    /// column pack when `b` is a packed parameter step. Both routes are
    /// bitwise identical (the packed kernel shares the unpacked one's
    /// tile loop and consumes the same packed bytes).
    fn gemm_step(&self, a: usize, b: usize, out: &mut Matrix, ws: &mut [f32], acc: bool) {
        match self.pack_of[b] {
            NONE => kernels::gemm_nn_into(self.val_ref(a), self.val_ref(b), out, ws, acc),
            pk => kernels::gemm_nn_packed_into(
                self.val_ref(a),
                &self.pack_bufs[pk as usize],
                out.cols,
                out,
                acc,
            ),
        }
    }

    /// Fused gate assembly: `out = x·W_ih` (GEMM store), `+= h·W_hh`
    /// (GEMM accumulate), `+= bias` row broadcast. Each element sees
    /// `(xi + hh) + bias` with both products fully accumulated first —
    /// bitwise identical to the unfused `MatMul`/`MatMul`/`AddAddRow`.
    fn eval_fused_gates(&mut self, i: usize, xi: usize, hh: usize) {
        let (x, w1) = match &self.steps[xi].op {
            Op::MatMul(a, b) => (a.index(), b.index()),
            _ => unreachable!(),
        };
        let (h, w2) = match &self.steps[hh].op {
            Op::MatMul(a, b) => (a.index(), b.index()),
            _ => unreachable!(),
        };
        let bias = match &self.steps[i].op {
            Op::AddAddRow(_, _, bias) => bias.index(),
            _ => unreachable!(),
        };
        let mut out = self.take_val(i);
        let mut ws = std::mem::take(&mut self.ws);
        self.gemm_step(x, w1, &mut out, &mut ws, false);
        self.gemm_step(h, w2, &mut out, &mut ws, true);
        let cols = out.cols;
        let vb = self.val_ref(bias);
        for o in out.data.chunks_exact_mut(cols) {
            for (d, &b) in o.iter_mut().zip(&vb.data[..cols]) {
                *d += b;
            }
        }
        self.ws = ws;
        self.put_val(i, out);
    }

    /// Split LSTM cell: write `h` rows into the h-slice's slot and `c`
    /// rows into the c-slice's slot; the `[h | c]` concatenation is never
    /// materialized. The arithmetic is the interpreted cell forward.
    fn eval_cell_split(&mut self, i: usize, hs: usize, cs: usize) {
        let (gates, c_prev, hidden) = match &self.steps[i].op {
            Op::LstmCell {
                gates,
                c_prev,
                hidden,
            } => (gates.index(), c_prev.index(), *hidden),
            _ => unreachable!(),
        };
        let mut hout = self.take_val(hs);
        let mut cout = self.take_val(cs);
        let mut ws = std::mem::take(&mut self.ws);
        let rows = hout.rows;
        {
            let (vg, vc) = (self.val_ref(gates), self.val_ref(c_prev));
            let act = &mut ws[..4 * hidden];
            for r in 0..rows {
                let gr = &vg.data[r * 4 * hidden..(r + 1) * 4 * hidden];
                let cp = &vc.data[r * hidden..(r + 1) * hidden];
                cell_act(gr, act, hidden);
                let (i_v, rest) = act.split_at(hidden);
                let (f_v, rest) = rest.split_at(hidden);
                let (cand, o_v) = rest.split_at(hidden);
                let c_out = &mut cout.data[r * hidden..(r + 1) * hidden];
                for k in 0..hidden {
                    c_out[k] = f_v[k] * cp[k] + i_v[k] * cand[k];
                }
                let h_out = &mut hout.data[r * hidden..(r + 1) * hidden];
                if kernels::reference_kernels() {
                    for k in 0..hidden {
                        h_out[k] = o_v[k] * c_out[k].tanh();
                    }
                } else {
                    for k in 0..hidden {
                        h_out[k] = o_v[k] * kernels::fast_tanh(c_out[k]);
                    }
                }
            }
        }
        self.ws = ws;
        self.put_val(hs, hout);
        self.put_val(cs, cout);
    }

    // -----------------------------------------------------------------
    // Backward execution
    // -----------------------------------------------------------------

    /// Take step `j`'s gradient buffer out of the arena, bound to the
    /// step's shape, reporting whether it already holds a contribution.
    /// When it does not, the caller must overwrite every element (or
    /// zero-fill first): the bound buffer contains stale arena data.
    fn take_grad(&mut self, j: usize) -> (Matrix, bool) {
        let st = &self.steps[j];
        let gs = st.grad_slot as usize;
        let (r, c) = (st.rows as usize, st.cols as usize);
        debug_assert!(r * c <= self.caps[gs], "arena slot capacity underflow");
        let mut m = std::mem::take(&mut self.slots[gs]);
        m.rows = r;
        m.cols = c;
        m.data.resize(r * c, 0.0);
        (m, self.grad_present[j])
    }

    fn put_grad(&mut self, j: usize, m: Matrix) {
        self.slots[self.steps[j].grad_slot as usize] = m;
        self.grad_present[j] = true;
    }

    fn needs(&self, j: usize) -> bool {
        self.steps[j].needs_grad
    }

    /// Dense whole-gradient contribution: `dst op= f(g)` elementwise,
    /// where the contribution element is fully computed before the one
    /// add (set mode writes the raw value) — the interpreted tape's
    /// fresh-matrix-then-`add_assign` semantics exactly.
    fn bwd_map(&mut self, src: usize, dst: usize, f: impl Fn(f32) -> f32) {
        if !self.needs(dst) {
            return;
        }
        let (mut m, present) = self.take_grad(dst);
        let g = self.grad_ref(src);
        if present {
            for (d, &x) in m.data.iter_mut().zip(&g.data) {
                *d += f(x);
            }
        } else {
            for (d, &x) in m.data.iter_mut().zip(&g.data) {
                *d = f(x);
            }
        }
        self.put_grad(dst, m);
    }

    /// Dense contribution from `g` zipped with another step's *value*
    /// (`src`'s own output for sigmoid-family ops, an input value for
    /// mul-family and activation-input ops).
    fn bwd_zip_val(&mut self, src: usize, dst: usize, vstep: usize, f: impl Fn(f32, f32) -> f32) {
        if !self.needs(dst) {
            return;
        }
        let (mut m, present) = self.take_grad(dst);
        let g = self.grad_ref(src);
        let v = self.val_ref(vstep);
        if present {
            for ((d, &x), &y) in m.data.iter_mut().zip(&g.data).zip(&v.data) {
                *d += f(x, y);
            }
        } else {
            for ((d, &x), &y) in m.data.iter_mut().zip(&g.data).zip(&v.data) {
                *d = f(x, y);
            }
        }
        self.put_grad(dst, m);
    }

    /// Column-sum contribution (`AddRow`/`AddAddRow` bias backward): the
    /// column sums are accumulated in workspace starting from `0.0` in
    /// row-ascending order — the interpreted zeros-matrix accumulation —
    /// then applied to the destination in one pass.
    fn bwd_colsum(&mut self, src: usize, dst: usize) {
        if !self.needs(dst) {
            return;
        }
        let (mut m, present) = self.take_grad(dst);
        let mut ws = std::mem::take(&mut self.ws);
        {
            let g = self.grad_ref(src);
            let cols = g.cols;
            let sums = &mut ws[..cols];
            sums.fill(0.0);
            for row in g.data.chunks_exact(cols) {
                for (s, &v) in sums.iter_mut().zip(row) {
                    *s += v;
                }
            }
            if present {
                for (d, &s) in m.data.iter_mut().zip(sums.iter()) {
                    *d += s;
                }
            } else {
                m.data.copy_from_slice(sums);
            }
        }
        self.ws = ws;
        self.put_grad(dst, m);
    }

    /// MatMul backward for step `i`, reading the gradient of `gsrc`
    /// (the step itself, or its fused parent for [`Kind::GateMatmul`]).
    fn bwd_matmul(&mut self, i: usize, gsrc: usize) {
        let (a, b) = match &self.steps[i].op {
            Op::MatMul(a, b) => (a.index(), b.index()),
            _ => unreachable!(),
        };
        if self.needs(a) {
            let (mut m, present) = self.take_grad(a);
            if kernels::reference_kernels() {
                let g = self.grad_ref(gsrc);
                let res = g.matmul_nt_naive(self.val_ref(b)); // plan-lint: allow-alloc (reference kernels)
                fold_into(&mut m, &res, present);
            } else {
                let g = self.grad_ref(gsrc);
                kernels::gemm_nt_into(g, self.val_ref(b), &mut m, present);
            }
            self.put_grad(a, m);
        }
        if self.needs(b) {
            let (mut m, present) = self.take_grad(b);
            let mut ws = std::mem::take(&mut self.ws);
            if kernels::reference_kernels() {
                let g = self.grad_ref(gsrc);
                let res = self.val_ref(a).matmul_tn_naive(g); // plan-lint: allow-alloc (reference kernels)
                fold_into(&mut m, &res, present);
            } else {
                let g = self.grad_ref(gsrc);
                kernels::gemm_tn_into(self.val_ref(a), g, &mut m, &mut ws, present);
            }
            self.ws = ws;
            self.put_grad(b, m);
        }
    }

    /// Plain `LstmCell` backward: the interpreted cell backward written
    /// against arena buffers with set/add gradient semantics.
    fn bwd_lstm(&mut self, i: usize, gsrc_h: usize, gsrc_c: usize, split: bool) {
        let (gates, c_prev, hidden) = match &self.steps[i].op {
            Op::LstmCell {
                gates,
                c_prev,
                hidden,
            } => (gates.index(), c_prev.index(), *hidden),
            _ => unreachable!(),
        };
        let (ng_g, ng_c) = (self.needs(gates), self.needs(c_prev));
        if !ng_g && !ng_c {
            return;
        }
        let gtar = if ng_g {
            Some(self.take_grad(gates))
        } else {
            None
        };
        let ctar = if ng_c {
            Some(self.take_grad(c_prev))
        } else {
            None
        };
        let (mut gtar, gpresent) = gtar.unzip_or_default();
        let (mut ctar, cpresent) = ctar.unzip_or_default();
        let mut ws = std::mem::take(&mut self.ws);
        {
            let (vg, vc) = (self.val_ref(gates), self.val_ref(c_prev));
            let rows = vg.rows;
            // Gradient sources: the step's own [h|c] gradient, or — for
            // CellSplit — the two slice gradients with presence flags
            // replicating the interpreted scatter assembly (`0.0 + g` /
            // `g + 0.0` when both contributed, raw bits when only one).
            let (hp, cp) = if split {
                (self.grad_present[gsrc_h], self.grad_present[gsrc_c])
            } else {
                (true, true)
            };
            // A split slice whose gradient is absent (no slot assigned, or
            // simply not produced this pass) has nothing to read — its rows
            // are never consumed (`grad_pair` checks the presence flag
            // first), so an empty slice stands in for the whole buffer.
            let slot_data = |s: usize, present: bool| -> &[f32] {
                match self.steps[s].grad_slot {
                    _ if !present => &[],
                    NONE => &[],
                    slot => &self.slots[slot as usize].data,
                }
            };
            let gh_all = slot_data(gsrc_h, hp);
            let gc_all = slot_data(gsrc_c, cp);
            let reference = kernels::reference_kernels();
            let (act, dct) = ws[..6 * hidden].split_at_mut(4 * hidden);
            for r in 0..rows {
                let gr = &vg.data[r * 4 * hidden..(r + 1) * 4 * hidden];
                let cpv = &vc.data[r * hidden..(r + 1) * hidden];
                cell_act(gr, act, hidden);
                let (i_v, rest) = act.split_at(hidden);
                let (f_v, rest) = rest.split_at(hidden);
                let (cand, o_v) = rest.split_at(hidden);
                fn slice_row(all: &[f32], r: usize, hidden: usize) -> &[f32] {
                    if all.is_empty() {
                        all
                    } else {
                        &all[r * hidden..(r + 1) * hidden]
                    }
                }
                let (gh_row, gc_row) = if split {
                    (slice_row(gh_all, r, hidden), slice_row(gc_all, r, hidden))
                } else {
                    let go = &gh_all[r * 2 * hidden..(r + 1) * 2 * hidden];
                    go.split_at(hidden)
                };
                let (ct, dc_total) = dct.split_at_mut(hidden);
                if reference {
                    for k in 0..hidden {
                        ct[k] = (f_v[k] * cpv[k] + i_v[k] * cand[k]).tanh();
                    }
                } else {
                    for k in 0..hidden {
                        ct[k] = kernels::fast_tanh(f_v[k] * cpv[k] + i_v[k] * cand[k]);
                    }
                }
                for k in 0..hidden {
                    let (gh_k, gc_k) = grad_pair(gh_row, gc_row, k, hp, cp, split);
                    dc_total[k] = gc_k + gh_k * o_v[k] * (1.0 - ct[k] * ct[k]);
                }
                if ng_g {
                    let dgr = &mut gtar.data[r * 4 * hidden..(r + 1) * 4 * hidden];
                    for k in 0..hidden {
                        let (gh_k, _) = grad_pair(gh_row, gc_row, k, hp, cp, split);
                        let d0 = dc_total[k] * cand[k] * i_v[k] * (1.0 - i_v[k]);
                        let d1 = dc_total[k] * cpv[k] * f_v[k] * (1.0 - f_v[k]);
                        let d2 = dc_total[k] * i_v[k] * (1.0 - cand[k] * cand[k]);
                        let d3 = gh_k * ct[k] * o_v[k] * (1.0 - o_v[k]);
                        if gpresent {
                            dgr[k] += d0;
                            dgr[hidden + k] += d1;
                            dgr[2 * hidden + k] += d2;
                            dgr[3 * hidden + k] += d3;
                        } else {
                            dgr[k] = d0;
                            dgr[hidden + k] = d1;
                            dgr[2 * hidden + k] = d2;
                            dgr[3 * hidden + k] = d3;
                        }
                    }
                }
                if ng_c {
                    let dcr = &mut ctar.data[r * hidden..(r + 1) * hidden];
                    for k in 0..hidden {
                        let d = dc_total[k] * f_v[k];
                        if cpresent {
                            dcr[k] += d;
                        } else {
                            dcr[k] = d;
                        }
                    }
                }
            }
        }
        self.ws = ws;
        if ng_g {
            self.put_grad(gates, gtar);
        }
        if ng_c {
            self.put_grad(c_prev, ctar);
        }
    }

    /// Run the backward pass over the compiled steps, accumulating
    /// parameter gradients into `store` in the interpreted tape's exact
    /// visitation and contribution order.
    pub(crate) fn backward(&mut self, loss_idx: usize, store: &mut ParamStore) {
        assert_eq!(
            self.loss,
            Some(loss_idx),
            "plan replay: backward from a different loss node than the plan \
             was compiled for"
        );
        self.grad_present.fill(false);
        // Seed d loss / d loss = 1.
        let (mut seed, _) = self.take_grad(loss_idx);
        seed.data[0] = 1.0;
        self.put_grad(loss_idx, seed);
        for i in (0..=loss_idx).rev() {
            if !self.steps[i].needs_grad {
                continue;
            }
            match self.steps[i].kind {
                Kind::CellSlice => continue,
                Kind::GateMatmul { parent } => {
                    if self.grad_present[parent as usize] {
                        self.bwd_matmul(i, parent as usize);
                    }
                    continue;
                }
                Kind::CellSplit { h_step, c_step } => {
                    let (hs, cs) = (h_step as usize, c_step as usize);
                    if self.grad_present[hs] || self.grad_present[cs] {
                        self.bwd_lstm(i, hs, cs, true);
                    }
                    continue;
                }
                Kind::FusedGates { .. } => {
                    if self.grad_present[i] {
                        let bias = match &self.steps[i].op {
                            Op::AddAddRow(_, _, bias) => bias.index(),
                            _ => unreachable!(),
                        };
                        self.bwd_colsum(i, bias);
                    }
                    continue;
                }
                Kind::Plain => {}
            }
            if !self.grad_present[i] {
                continue;
            }
            match &self.steps[i].op {
                Op::Input => {}
                Op::Param(pid) => {
                    let pid = *pid;
                    store.accumulate_grad(pid, self.grad_ref(i));
                }
                Op::MatMul(..) => self.bwd_matmul(i, i),
                Op::Add(a, b) => {
                    let (a, b) = (a.index(), b.index());
                    self.bwd_map(i, a, |x| x);
                    self.bwd_map(i, b, |x| x);
                }
                Op::Sub(a, b) => {
                    let (a, b) = (a.index(), b.index());
                    self.bwd_map(i, a, |x| x);
                    self.bwd_map(i, b, |x| -x);
                }
                Op::Mul(a, b) => {
                    let (a, b) = (a.index(), b.index());
                    self.bwd_zip_val(i, a, b, |g, y| g * y);
                    self.bwd_zip_val(i, b, a, |g, y| g * y);
                }
                Op::AddRow(a, b) => {
                    let (a, b) = (a.index(), b.index());
                    self.bwd_map(i, a, |x| x);
                    self.bwd_colsum(i, b);
                }
                Op::MulCol(a, b) => {
                    let (a, b) = (a.index(), b.index());
                    self.bwd_mul_col(i, a, b);
                }
                Op::Scale(a, s) => {
                    let (a, s) = (a.index(), *s);
                    self.bwd_map(i, a, move |x| x * s);
                }
                Op::Offset(a, _) => {
                    let a = a.index();
                    self.bwd_map(i, a, |x| x);
                }
                Op::Sigmoid(a) => {
                    let a = a.index();
                    self.bwd_zip_val(i, a, i, |g, y| g * y * (1.0 - y));
                }
                Op::Tanh(a) => {
                    let a = a.index();
                    self.bwd_zip_val(i, a, i, |g, y| g * (1.0 - y * y));
                }
                Op::LeakyRelu(a, slope) => {
                    let (a, slope) = (a.index(), *slope);
                    self.bwd_zip_val(i, a, a, move |g, x| if x >= 0.0 { g } else { g * slope });
                }
                Op::Exp(a) => {
                    let a = a.index();
                    self.bwd_zip_val(i, a, i, |g, y| g * y);
                }
                Op::Softplus(a) => {
                    let a = a.index();
                    self.bwd_zip_val(i, a, a, |g, x| g * crate::graph::stable_sigmoid(x));
                }
                Op::ConcatCols(a, b) => {
                    let (a, b) = (a.index(), b.index());
                    self.bwd_concat(i, a, b);
                }
                Op::SliceCols(a, c0, c1) => {
                    let (a, c0, c1) = (a.index(), *c0, *c1);
                    self.bwd_slice_cols(i, a, c0, c1);
                }
                Op::SliceRows(a, r0, r1) => {
                    let (a, r0, r1) = (a.index(), *r0, *r1);
                    self.bwd_slice_rows(i, a, r0, r1);
                }
                Op::RowSum(a) => {
                    let a = a.index();
                    self.bwd_row_sum(i, a);
                }
                Op::SumRowGroups(a, group) => {
                    let (a, group) = (a.index(), *group);
                    self.bwd_sum_row_groups(i, a, group);
                }
                Op::LstmCell { .. } => self.bwd_lstm(i, i, i, false),
                Op::NoisyRenorm { x, .. } => {
                    let x = x.index();
                    self.bwd_noisy_renorm(i, x);
                }
                Op::AddAddRow(a, b, bias) => {
                    let (a, b, bias) = (a.index(), b.index(), bias.index());
                    self.bwd_map(i, a, |x| x);
                    self.bwd_map(i, b, |x| x);
                    self.bwd_colsum(i, bias);
                }
                Op::MaskedGroupMean { x, group, .. } => {
                    let (x, group) = (x.index(), *group);
                    self.bwd_masked_group_mean(i, x, group);
                }
                Op::Mean(a) => {
                    let a = a.index();
                    let st = &self.steps[a];
                    let n = (st.rows as usize * st.cols as usize).max(1) as f32;
                    let v = self.grad_ref(i).data[0] / n;
                    if self.needs(a) {
                        let (mut m, present) = self.take_grad(a);
                        if present {
                            for d in m.data.iter_mut() {
                                *d += v;
                            }
                        } else {
                            m.data.fill(v);
                        }
                        self.put_grad(a, m);
                    }
                }
                Op::MseLoss(a, b) => {
                    let (a, b) = (a.index(), b.index());
                    self.bwd_mse(i, a, b);
                }
                Op::BceWithLogits(l, _) => {
                    let l = l.index();
                    self.bwd_bce(i, l);
                }
                Op::WeightedSum(_) => self.bwd_weighted_sum(i),
                Op::GaussianNll { mu, sigma, .. } => {
                    let (mu, sigma) = (mu.index(), sigma.index());
                    self.bwd_gaussian_nll(i, mu, sigma);
                }
            }
        }
    }

    fn bwd_mul_col(&mut self, i: usize, a: usize, b: usize) {
        if self.needs(a) {
            let (mut m, present) = self.take_grad(a);
            let g = self.grad_ref(i);
            let vb = self.val_ref(b);
            let cols = g.cols;
            for r in 0..g.rows {
                let s = vb.data[r];
                let gr = &g.data[r * cols..(r + 1) * cols];
                let dr = &mut m.data[r * cols..(r + 1) * cols];
                if present {
                    for c in 0..cols {
                        dr[c] += gr[c] * s;
                    }
                } else {
                    for c in 0..cols {
                        dr[c] = gr[c] * s;
                    }
                }
            }
            self.put_grad(a, m);
        }
        if self.needs(b) {
            let (mut m, present) = self.take_grad(b);
            let g = self.grad_ref(i);
            let va = self.val_ref(a);
            let cols = g.cols;
            for r in 0..g.rows {
                let mut acc = 0.0;
                for c in 0..cols {
                    acc += g.data[r * cols + c] * va.data[r * va.cols + c];
                }
                if present {
                    m.data[r] += acc;
                } else {
                    m.data[r] = acc;
                }
            }
            self.put_grad(b, m);
        }
    }

    fn bwd_concat(&mut self, i: usize, a: usize, b: usize) {
        let ca = self.steps[a].cols as usize;
        if self.needs(a) {
            let (mut m, present) = self.take_grad(a);
            let g = self.grad_ref(i);
            for r in 0..g.rows {
                let gr = &g.data[r * g.cols..r * g.cols + ca];
                let dr = &mut m.data[r * ca..(r + 1) * ca];
                if present {
                    for (d, &x) in dr.iter_mut().zip(gr) {
                        *d += x;
                    }
                } else {
                    dr.copy_from_slice(gr);
                }
            }
            self.put_grad(a, m);
        }
        if self.needs(b) {
            let (mut m, present) = self.take_grad(b);
            let g = self.grad_ref(i);
            let cb = g.cols - ca;
            for r in 0..g.rows {
                let gr = &g.data[r * g.cols + ca..(r + 1) * g.cols];
                let dr = &mut m.data[r * cb..(r + 1) * cb];
                if present {
                    for (d, &x) in dr.iter_mut().zip(gr) {
                        *d += x;
                    }
                } else {
                    dr.copy_from_slice(gr);
                }
            }
            self.put_grad(b, m);
        }
    }

    /// `SliceCols` backward. The interpreted tape scatters into a fresh
    /// zeros matrix and then either moves it in (set) or adds the whole
    /// matrix (add). In add mode the untouched elements therefore
    /// receive `+= 0.0` — which is *not* a no-op for `-0.0` — so the
    /// add-mode loop spells out all three column segments.
    fn bwd_slice_cols(&mut self, i: usize, a: usize, c0: usize, c1: usize) {
        if !self.needs(a) {
            return;
        }
        let (mut m, present) = self.take_grad(a);
        let g = self.grad_ref(i);
        let cols = self.steps[a].cols as usize;
        if present {
            for r in 0..g.rows {
                let gr = &g.data[r * g.cols..(r + 1) * g.cols];
                let dr = &mut m.data[r * cols..(r + 1) * cols];
                for d in dr[..c0].iter_mut() {
                    *d += 0.0;
                }
                for (k, d) in dr[c0..c1].iter_mut().enumerate() {
                    *d += gr[k];
                }
                for d in dr[c1..].iter_mut() {
                    *d += 0.0;
                }
            }
        } else {
            m.data.fill(0.0);
            for r in 0..g.rows {
                let gr = &g.data[r * g.cols..(r + 1) * g.cols];
                m.data[r * cols + c0..r * cols + c1].copy_from_slice(gr);
            }
        }
        self.put_grad(a, m);
    }

    /// `SliceRows` backward; same `±0.0` add-mode contract as
    /// [`Plan::bwd_slice_cols`], segmented by rows.
    fn bwd_slice_rows(&mut self, i: usize, a: usize, r0: usize, r1: usize) {
        if !self.needs(a) {
            return;
        }
        let (mut m, present) = self.take_grad(a);
        let g = self.grad_ref(i);
        let cols = self.steps[a].cols as usize;
        if present {
            for d in m.data[..r0 * cols].iter_mut() {
                *d += 0.0;
            }
            for (d, &x) in m.data[r0 * cols..r1 * cols].iter_mut().zip(&g.data) {
                *d += x;
            }
            for d in m.data[r1 * cols..].iter_mut() {
                *d += 0.0;
            }
        } else {
            m.data.fill(0.0);
            m.data[r0 * cols..r1 * cols].copy_from_slice(&g.data);
        }
        self.put_grad(a, m);
    }

    fn bwd_row_sum(&mut self, i: usize, a: usize) {
        if !self.needs(a) {
            return;
        }
        let (mut m, present) = self.take_grad(a);
        let g = self.grad_ref(i);
        let cols = self.steps[a].cols as usize;
        for r in 0..m.rows {
            let s = g.data[r];
            let dr = &mut m.data[r * cols..(r + 1) * cols];
            if present {
                for d in dr.iter_mut() {
                    *d += s;
                }
            } else {
                for d in dr.iter_mut() {
                    *d = s;
                }
            }
        }
        self.put_grad(a, m);
    }

    fn bwd_sum_row_groups(&mut self, i: usize, a: usize, group: usize) {
        if !self.needs(a) {
            return;
        }
        let (mut m, present) = self.take_grad(a);
        let g = self.grad_ref(i);
        let cols = g.cols;
        for r in 0..g.rows {
            let src = &g.data[r * cols..(r + 1) * cols];
            for j in 0..group {
                let dr = &mut m.data[(r * group + j) * cols..(r * group + j + 1) * cols];
                if present {
                    for (d, &x) in dr.iter_mut().zip(src) {
                        *d += x;
                    }
                } else {
                    dr.copy_from_slice(src);
                }
            }
        }
        self.put_grad(a, m);
    }

    fn bwd_noisy_renorm(&mut self, i: usize, x: usize) {
        if !self.needs(x) {
            return;
        }
        let (noise, a) = match &mut self.steps[i].op {
            Op::NoisyRenorm { noise, a, .. } => (std::mem::take(noise), *a),
            _ => unreachable!(),
        };
        let (mut m, present) = self.take_grad(x);
        let mut ws = std::mem::take(&mut self.ws);
        {
            let g = self.grad_ref(i);
            let vx = self.val_ref(x);
            let (rows, cols) = (vx.rows, vx.cols);
            let pert = &mut ws[..cols];
            for r in 0..rows {
                let xr = &vx.data[r * cols..(r + 1) * cols];
                let nr = &noise.data[r * cols..(r + 1) * cols];
                let gr = &g.data[r * cols..(r + 1) * cols];
                for c in 0..cols {
                    pert[c] = xr[c] + nr[c] * a;
                }
                let sx: f32 = xr.iter().sum();
                let sp: f32 = pert.iter().sum();
                let rden = 1.0 / (sp + 1e-3);
                let ratio = (sx + 1e-3) * rden;
                let dot: f32 = gr.iter().zip(pert.iter()).map(|(&gi, &pi)| gi * pi).sum();
                let ds = dot * rden;
                let dr = &mut m.data[r * cols..(r + 1) * cols];
                if present {
                    for c in 0..cols {
                        dr[c] += gr[c] * ratio + ds;
                    }
                } else {
                    for c in 0..cols {
                        dr[c] = gr[c] * ratio + ds;
                    }
                }
            }
        }
        self.ws = ws;
        match &mut self.steps[i].op {
            Op::NoisyRenorm { noise: slot, .. } => *slot = noise,
            _ => unreachable!(),
        }
        self.put_grad(x, m);
    }

    fn bwd_masked_group_mean(&mut self, i: usize, x: usize, group: usize) {
        if !self.needs(x) {
            return;
        }
        let (mask, scale) = match &mut self.steps[i].op {
            Op::MaskedGroupMean { mask, scale, .. } => {
                (std::mem::take(mask), std::mem::take(scale))
            }
            _ => unreachable!(),
        };
        let (mut m, present) = self.take_grad(x);
        {
            let g = self.grad_ref(i);
            let cols = g.cols;
            for r in 0..g.rows {
                let gr = &g.data[r * cols..(r + 1) * cols];
                let s = scale.data[r];
                for j in 0..group {
                    let row = r * group + j;
                    let mk = mask.data[row];
                    let dr = &mut m.data[row * cols..(row + 1) * cols];
                    if present {
                        for c in 0..cols {
                            dr[c] += (gr[c] * s) * mk;
                        }
                    } else {
                        for c in 0..cols {
                            dr[c] = (gr[c] * s) * mk;
                        }
                    }
                }
            }
        }
        match &mut self.steps[i].op {
            Op::MaskedGroupMean {
                mask: mslot,
                scale: sslot,
                ..
            } => {
                *mslot = mask;
                *sslot = scale;
            }
            _ => unreachable!(),
        }
        self.put_grad(x, m);
    }

    fn bwd_mse(&mut self, i: usize, a: usize, b: usize) {
        let n = {
            let st = &self.steps[a];
            (st.rows as usize * st.cols as usize).max(1) as f32
        };
        let s = 2.0 * self.grad_ref(i).data[0] / n;
        if self.needs(a) {
            let (mut m, present) = self.take_grad(a);
            let (va, vb) = (self.val_ref(a), self.val_ref(b));
            if present {
                for ((d, &x), &y) in m.data.iter_mut().zip(&va.data).zip(&vb.data) {
                    *d += s * (x - y);
                }
            } else {
                for ((d, &x), &y) in m.data.iter_mut().zip(&va.data).zip(&vb.data) {
                    *d = s * (x - y);
                }
            }
            self.put_grad(a, m);
        }
        if self.needs(b) {
            let (mut m, present) = self.take_grad(b);
            let (va, vb) = (self.val_ref(a), self.val_ref(b));
            if present {
                for ((d, &x), &y) in m.data.iter_mut().zip(&va.data).zip(&vb.data) {
                    *d += -(s * (x - y));
                }
            } else {
                for ((d, &x), &y) in m.data.iter_mut().zip(&va.data).zip(&vb.data) {
                    *d = -(s * (x - y));
                }
            }
            self.put_grad(b, m);
        }
    }

    fn bwd_bce(&mut self, i: usize, l: usize) {
        if !self.needs(l) {
            return;
        }
        let targets = match &mut self.steps[i].op {
            Op::BceWithLogits(_, t) => std::mem::take(t),
            _ => unreachable!(),
        };
        let (mut m, present) = self.take_grad(l);
        {
            let vl = self.val_ref(l);
            let n = vl.data.len().max(1) as f32;
            let s = self.grad_ref(i).data[0] / n;
            if present {
                for ((d, &x), &t) in m.data.iter_mut().zip(&vl.data).zip(&targets.data) {
                    *d += s * (crate::graph::stable_sigmoid(x) - t);
                }
            } else {
                for ((d, &x), &t) in m.data.iter_mut().zip(&vl.data).zip(&targets.data) {
                    *d = s * (crate::graph::stable_sigmoid(x) - t);
                }
            }
        }
        match &mut self.steps[i].op {
            Op::BceWithLogits(_, t) => *t = targets,
            _ => unreachable!(),
        }
        self.put_grad(l, m);
    }

    fn bwd_weighted_sum(&mut self, i: usize) {
        let terms = match &mut self.steps[i].op {
            Op::WeightedSum(t) => std::mem::take(t),
            _ => unreachable!(),
        };
        let g0 = self.grad_ref(i).data[0];
        for &(id, w) in &terms {
            let j = id.index();
            if !self.needs(j) {
                continue;
            }
            let (mut m, present) = self.take_grad(j);
            if present {
                m.data[0] += g0 * w;
            } else {
                m.data[0] = g0 * w;
            }
            self.put_grad(j, m);
        }
        match &mut self.steps[i].op {
            Op::WeightedSum(t) => *t = terms,
            _ => unreachable!(),
        }
    }

    fn bwd_gaussian_nll(&mut self, i: usize, mu: usize, sigma: usize) {
        let target = match &mut self.steps[i].op {
            Op::GaussianNll { target, .. } => std::mem::take(target),
            _ => unreachable!(),
        };
        let n = {
            let st = &self.steps[mu];
            (st.rows as usize * st.cols as usize).max(1) as f32
        };
        let s = self.grad_ref(i).data[0] / n;
        if self.needs(mu) {
            let (mut m, present) = self.take_grad(mu);
            let (vm, vs) = (self.val_ref(mu), self.val_ref(sigma));
            for k in 0..vm.data.len() {
                let sd = vs.data[k].max(1e-6);
                let v = s * (vm.data[k] - target.data[k]) / (sd * sd);
                if present {
                    m.data[k] += v;
                } else {
                    m.data[k] = v;
                }
            }
            self.put_grad(mu, m);
        }
        if self.needs(sigma) {
            let (mut m, present) = self.take_grad(sigma);
            let (vm, vs) = (self.val_ref(mu), self.val_ref(sigma));
            for k in 0..vm.data.len() {
                let sd = vs.data[k].max(1e-6);
                let d = target.data[k] - vm.data[k];
                let v = s * (1.0 / sd - d * d / (sd * sd * sd));
                if present {
                    m.data[k] += v;
                } else {
                    m.data[k] = v;
                }
            }
            self.put_grad(sigma, m);
        }
        match &mut self.steps[i].op {
            Op::GaussianNll { target: t, .. } => *t = target,
            _ => unreachable!(),
        }
    }

    // plan-lint: end step path
}

/// Effective `(gh, gc)` pair for the LSTM cell backward at element `k`.
///
/// For a [`Kind::CellSplit`] cell the interpreted tape would have
/// assembled the `[h | c]` gradient by scattering the c-slice's gradient
/// first (set) and then adding the h-slice's (add). Replicated exactly:
/// when both slices contributed, `gh = 0.0 + gh_raw` and
/// `gc = gc_raw + 0.0` (the adds matter for `-0.0`); a lone contribution
/// keeps its raw bits and the other side is exactly `0.0`.
#[inline]
fn grad_pair(gh: &[f32], gc: &[f32], k: usize, hp: bool, cp: bool, split: bool) -> (f32, f32) {
    if !split {
        return (gh[k], gc[k]);
    }
    match (hp, cp) {
        (true, true) => (0.0 + gh[k], gc[k] + 0.0),
        (true, false) => (gh[k], 0.0),
        (false, true) => (0.0, gc[k]),
        (false, false) => (0.0, 0.0),
    }
}

/// Fold a reference-kernel product into a gradient target (set or add).
fn fold_into(m: &mut Matrix, res: &Matrix, present: bool) {
    if present {
        for (d, &x) in m.data.iter_mut().zip(&res.data) {
            *d += x;
        }
    } else {
        m.data.copy_from_slice(&res.data);
    }
}

/// `Option<(Matrix, bool)>` helper: unwrap or provide placeholder
/// values for the untaken branch (never read when the need flag is off).
trait UnzipOrDefault {
    fn unzip_or_default(self) -> (Matrix, bool);
}

impl UnzipOrDefault for Option<(Matrix, bool)> {
    fn unzip_or_default(self) -> (Matrix, bool) {
        self.unwrap_or((Matrix::default(), false))
    }
}

// ---------------------------------------------------------------------
// Compilation: consumers, fusion, liveness, arena assignment
// ---------------------------------------------------------------------

/// Recorded-node view the compiler consumes (built by
/// [`crate::graph::Graph::into_plan`] from the private tape nodes).
pub(crate) struct Recorded {
    pub(crate) op: Op,
    pub(crate) rows: usize,
    pub(crate) cols: usize,
    pub(crate) needs_grad: bool,
    pub(crate) ext: bool,
}

struct Binding {
    step: usize,
    is_grad: bool,
    start: usize,
    end: usize,
    elems: usize,
}

/// Compile a recorded tape into a [`Plan`].
pub(crate) fn compile(nodes: Vec<Recorded>, loss: Option<usize>) -> Plan {
    let n = nodes.len();
    let bwd = loss.is_some();
    let li = loss.unwrap_or(0);
    let bt = |i: usize| 2 * n - 1 - i; // backward visitation time of step i

    // Consumer lists.
    let mut consumers: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (i, node) in nodes.iter().enumerate() {
        for inp in node.op.inputs() {
            consumers[inp.index()].push(i as u32);
        }
    }

    // Plan-time fusion. Skipped under reference kernels, whose forward
    // products must keep routing through the naive reference.
    let mut kind: Vec<Kind> = vec![Kind::Plain; n];
    let mut slice_parent: Vec<u32> = vec![NONE; n];
    if !kernels::reference_kernels() {
        for i in 0..n {
            if let Op::AddAddRow(a, b, _) = &nodes[i].op {
                let (a, b) = (a.index(), b.index());
                if a != b
                    && matches!(nodes[a].op, Op::MatMul(..))
                    && matches!(nodes[b].op, Op::MatMul(..))
                    && consumers[a].len() == 1
                    && consumers[b].len() == 1
                    && !nodes[a].ext
                    && !nodes[b].ext
                    && kind[a] == Kind::Plain
                    && kind[b] == Kind::Plain
                {
                    kind[i] = Kind::FusedGates {
                        xi: a as u32,
                        hh: b as u32,
                    };
                    kind[a] = Kind::GateMatmul { parent: i as u32 };
                    kind[b] = Kind::GateMatmul { parent: i as u32 };
                }
            }
        }
        for i in 0..n {
            if let Op::LstmCell { hidden, .. } = nodes[i].op {
                if nodes[i].ext || consumers[i].len() != 2 {
                    continue;
                }
                let mut h_step = None;
                let mut c_step = None;
                for &s in &consumers[i] {
                    let s = s as usize;
                    match nodes[s].op {
                        Op::SliceCols(p, 0, c1) if p.index() == i && c1 == hidden => {
                            h_step = Some(s)
                        }
                        Op::SliceCols(p, c0, c1)
                            if p.index() == i && c0 == hidden && c1 == 2 * hidden =>
                        {
                            c_step = Some(s)
                        }
                        _ => {}
                    }
                }
                if let (Some(hs), Some(cs)) = (h_step, c_step) {
                    if hs != cs {
                        kind[i] = Kind::CellSplit {
                            h_step: hs as u32,
                            c_step: cs as u32,
                        };
                        kind[hs] = Kind::CellSlice;
                        kind[cs] = Kind::CellSlice;
                        slice_parent[hs] = i as u32;
                        slice_parent[cs] = i as u32;
                    }
                }
            }
        }
    }

    // Value liveness: born at eval time (the cell's index for CellSlice
    // values, which the cell writes), read by forward consumers and the
    // backward passes that need input or own-output values.
    let mut val_start: Vec<usize> = (0..n).collect();
    let mut val_end: Vec<usize> = (0..n).collect();
    for i in 0..n {
        if slice_parent[i] != NONE {
            val_start[i] = slice_parent[i] as usize;
        }
    }
    for (j, cons) in consumers.iter().enumerate() {
        for &i in cons {
            val_end[j] = val_end[j].max(i as usize);
        }
    }
    // A fused gate pair's GEMMs run at the absorbing AddAddRow's index,
    // so the matmul operands must stay live until the *parent*, not just
    // until the (earlier) matmul steps themselves.
    for j in 0..n {
        if let Kind::GateMatmul { parent } = kind[j] {
            for inp in nodes[j].op.inputs() {
                let k = inp.index();
                val_end[k] = val_end[k].max(parent as usize);
            }
        }
    }
    if bwd {
        for (i, node) in nodes.iter().enumerate().take(li + 1) {
            if !node.needs_grad {
                continue;
            }
            let t = bt(i);
            let mut read = |id: NodeId| {
                val_end[id.index()] = val_end[id.index()].max(t);
            };
            match &node.op {
                // Sigmoid-family backward reads its own output.
                Op::Sigmoid(_) | Op::Tanh(_) | Op::Exp(_) => val_end[i] = val_end[i].max(t),
                Op::MatMul(a, b) => {
                    if nodes[b.index()].needs_grad {
                        read(*a);
                    }
                    if nodes[a.index()].needs_grad {
                        read(*b);
                    }
                }
                Op::Mul(a, b) | Op::MulCol(a, b) => {
                    if nodes[a.index()].needs_grad {
                        read(*b);
                    }
                    if nodes[b.index()].needs_grad {
                        read(*a);
                    }
                }
                Op::LeakyRelu(a, _) | Op::Softplus(a) | Op::BceWithLogits(a, _) => read(*a),
                Op::NoisyRenorm { x, .. } => read(*x),
                Op::LstmCell { gates, c_prev, .. } => {
                    read(*gates);
                    read(*c_prev);
                }
                Op::MseLoss(a, b) => {
                    read(*a);
                    read(*b);
                }
                Op::GaussianNll { mu, sigma, .. } => {
                    read(*mu);
                    read(*sigma);
                }
                _ => {}
            }
        }
    }
    for (i, node) in nodes.iter().enumerate() {
        // Externally-read values and parameter leaves are pinned: ext
        // reads can happen any time during replay, and param slots must
        // survive across replays so the version-gated sync can skip
        // re-copying.
        if node.ext || matches!(node.op, Op::Param(_)) {
            val_end[i] = PINNED;
        }
        // Param values are written by `sync_params` at replay *start*
        // (the step itself is a memoized no-op), so their slots are live
        // from time 0 — never time-shared with any earlier binding.
        if matches!(node.op, Op::Param(_)) {
            val_start[i] = 0;
        }
    }

    // Gradient liveness: born at the latest-visited contributing
    // consumer (the seed for the loss), consumed at the step's own
    // backward visit — extended for fused kinds whose gradients are
    // read by earlier-indexed (= later-visited) steps.
    let mut grad_start: Vec<usize> = vec![PINNED; n];
    let mut grad_end: Vec<usize> = vec![0; n];
    if bwd {
        for (j, node) in nodes.iter().enumerate().take(li + 1) {
            if !node.needs_grad {
                continue;
            }
            if matches!(kind[j], Kind::GateMatmul { .. } | Kind::CellSplit { .. }) {
                continue; // gradient never materialized
            }
            let first = consumers[j]
                .iter()
                .map(|&i| i as usize)
                .filter(|&i| i <= li && nodes[i].needs_grad)
                .map(bt)
                .min();
            let start = if j == li { Some(n) } else { first };
            let Some(start) = start else { continue };
            grad_start[j] = start;
            grad_end[j] = bt(j);
            match kind[j] {
                Kind::FusedGates { xi, hh } => {
                    grad_end[j] = grad_end[j].max(bt((xi as usize).min(hh as usize)));
                }
                Kind::CellSlice => {
                    grad_end[j] = grad_end[j].max(bt(slice_parent[j] as usize));
                }
                _ => {}
            }
        }
    }

    // Collect bindings and run the greedy interval→slot assignment
    // (best-fit by capacity, release strictly before reuse).
    let mut bindings: Vec<Binding> = Vec::new();
    for (i, node) in nodes.iter().enumerate() {
        let elems = node.rows * node.cols;
        if !matches!(kind[i], Kind::GateMatmul { .. }) {
            bindings.push(Binding {
                step: i,
                is_grad: false,
                start: val_start[i],
                end: val_end[i],
                elems,
            });
        }
        if bwd && grad_start[i] != PINNED {
            bindings.push(Binding {
                step: i,
                is_grad: true,
                start: grad_start[i],
                end: grad_end[i],
                elems,
            });
        }
    }
    bindings.sort_by_key(|b| (b.start, b.step, b.is_grad));

    let mut caps: Vec<usize> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    // Min-heap of (release time, slot).
    let mut releases: BinaryHeap<std::cmp::Reverse<(usize, usize)>> = BinaryHeap::new();
    let mut val_slots: Vec<u32> = vec![NONE; n];
    let mut grad_slots: Vec<u32> = vec![NONE; n];
    let mut ranges: Vec<LiveRange> = Vec::with_capacity(bindings.len());
    for b in &bindings {
        while let Some(&std::cmp::Reverse((end, slot))) = releases.peek() {
            if end < b.start {
                releases.pop();
                free.push(slot);
            } else {
                break;
            }
        }
        // Best fit: smallest free capacity that holds the shape, else
        // the largest free slot (grown to fit), else a new slot.
        let mut best: Option<usize> = None;
        for (fi, &slot) in free.iter().enumerate() {
            let better = match best {
                None => true,
                Some(bi) => {
                    let (bc, fc) = (caps[free[bi]], caps[slot]);
                    if bc >= b.elems {
                        fc >= b.elems && fc < bc
                    } else {
                        fc > bc
                    }
                }
            };
            if better {
                best = Some(fi);
            }
        }
        let slot = match best {
            Some(fi) => free.swap_remove(fi),
            None => {
                caps.push(0);
                caps.len() - 1
            }
        };
        caps[slot] = caps[slot].max(b.elems.max(1));
        if b.end != PINNED {
            releases.push(std::cmp::Reverse((b.end, slot)));
        }
        if b.is_grad {
            grad_slots[b.step] = slot as u32;
        } else {
            val_slots[b.step] = slot as u32;
        }
        ranges.push(LiveRange {
            slot,
            step: b.step,
            is_grad: b.is_grad,
            start: b.start,
            end: b.end,
            elems: b.elems,
        });
    }

    // Debug builds validate the interval assignment: two bindings that
    // share a slot must never be live at the same time.
    #[cfg(debug_assertions)]
    {
        let mut by_slot: Vec<Vec<&LiveRange>> = vec![Vec::new(); caps.len()];
        for r in &ranges {
            by_slot[r.slot].push(r);
        }
        for rs in by_slot.iter_mut() {
            rs.sort_by_key(|r| r.start);
            for w in rs.windows(2) {
                assert!(
                    w[0].end < w[1].start,
                    "arena aliasing: slot {} holds step {} ({}, grad={}) \
                     [{}..{}] and step {} ({}, grad={}) [{}..{}]",
                    w[0].slot,
                    w[0].step,
                    nodes[w[0].step].op.describe(),
                    w[0].is_grad,
                    w[0].start,
                    w[0].end,
                    w[1].step,
                    nodes[w[1].step].op.describe(),
                    w[1].is_grad,
                    w[1].start,
                    w[1].end,
                );
            }
        }
    }

    // Workspace sizing: the largest GEMM pack, LSTM activation scratch,
    // or backward row reduction any step needs.
    let mut ws_len = 0usize;
    for (i, node) in nodes.iter().enumerate() {
        match &node.op {
            Op::MatMul(a, b) => {
                let ar = nodes[a.index()].rows;
                let ac = nodes[a.index()].cols;
                ws_len = ws_len.max(kernels::nn_ws_len(ac));
                if bwd && i <= li && node.needs_grad && nodes[b.index()].needs_grad {
                    ws_len = ws_len.max(kernels::tn_ws_len(ac, ar));
                }
            }
            Op::LstmCell { hidden, .. } => ws_len = ws_len.max(6 * hidden),
            Op::NoisyRenorm { .. } => ws_len = ws_len.max(node.cols),
            Op::AddRow(..) | Op::AddAddRow(..) => ws_len = ws_len.max(node.cols),
            _ => {}
        }
    }

    let mut param_steps: Vec<(ParamId, u32)> = Vec::new();
    for (i, node) in nodes.iter().enumerate() {
        if let Op::Param(pid) = node.op {
            param_steps.push((pid, i as u32));
        }
    }

    // Hoisted GEMM packs: any parameter consumed as a forward GEMM's B
    // operand (plain or gate-fused matmul) is packed once per store
    // version in `sync_params` instead of once per kernel call.
    let mut pack_of: Vec<u32> = vec![NONE; nodes.len()];
    let mut pack_steps: Vec<u32> = Vec::new();
    let mut pack_bufs: Vec<Vec<f32>> = Vec::new();
    for node in nodes.iter() {
        if let Op::MatMul(_, b) = node.op {
            let bi = b.index();
            if matches!(nodes[bi].op, Op::Param(_)) && pack_of[bi] == NONE {
                pack_of[bi] = pack_steps.len() as u32;
                pack_steps.push(bi as u32);
                pack_bufs.push(vec![
                    0.0;
                    kernels::packed_b_len(nodes[bi].rows, nodes[bi].cols)
                ]);
            }
        }
    }

    let slots: Vec<Matrix> = caps
        .iter()
        .map(|&cap| Matrix {
            rows: 0,
            cols: 0,
            data: Vec::with_capacity(cap),
        })
        .collect();

    let steps: Vec<Step> = nodes
        .into_iter()
        .enumerate()
        .map(|(i, node)| Step {
            op: node.op,
            kind: kind[i],
            val_slot: val_slots[i],
            grad_slot: grad_slots[i],
            needs_grad: node.needs_grad,
            ext: node.ext,
            rows: node.rows as u32,
            cols: node.cols as u32,
        })
        .collect();

    let memo_cap = param_steps.len();
    Plan {
        grad_present: vec![false; steps.len()],
        steps,
        slots,
        caps,
        ws: vec![0.0; ws_len],
        loss,
        param_steps,
        param_memo: Vec::with_capacity(memo_cap),
        param_version: u64::MAX,
        pack_steps,
        pack_bufs,
        pack_of,
        ranges,
    }
}

// ---------------------------------------------------------------------
// Plan cache
// ---------------------------------------------------------------------

/// Cache key for a compiled plan: a static tag naming the builder plus
/// the dimensions that fully determine its op sequence.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PlanKey {
    /// Builder identity (e.g. `"train_g"`, `"gen_batch"`).
    pub tag: &'static str,
    /// Shape/config dimensions. Every quantity that changes the op
    /// sequence must be folded in — replay panics loudly otherwise.
    pub dims: [u64; 6],
}

impl PlanKey {
    /// Key with a tag and up to six dimensions (missing ones zero).
    pub fn new(tag: &'static str, dims: [u64; 6]) -> Self {
        PlanKey { tag, dims }
    }
}

/// Fold an iterator of `u64`s into one FNV-1a hash, for key dimensions
/// that summarize variable-length shape lists (e.g. per-window lengths).
pub fn fold_dims(iter: impl IntoIterator<Item = u64>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in iter {
        for byte in v.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

/// Maximum number of plans kept per cache; oldest evicted beyond it.
const PLAN_CACHE_CAP: usize = 64;

/// A small keyed store of compiled plans. Plans are *taken* for
/// execution (a plan is single-threaded while replaying) and put back
/// afterwards, so one cache can serve concurrent shard workers.
#[derive(Debug, Default)]
pub struct PlanCache {
    inner: Mutex<Vec<(PlanKey, Plan)>>,
}

impl PlanCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Remove and return the plan for `key`, if present.
    pub fn take(&self, key: &PlanKey) -> Option<Plan> {
        let mut inner = self.inner.lock();
        let pos = inner.iter().position(|(k, _)| k == key)?;
        Some(inner.remove(pos).1)
    }

    /// Store (or return) a plan under `key`.
    pub fn put(&self, key: PlanKey, plan: Plan) {
        let mut inner = self.inner.lock();
        if inner.len() >= PLAN_CACHE_CAP {
            inner.remove(0);
        }
        inner.push((key, plan));
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True when no plans are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use crate::params::Sgd;
    use crate::rng::Rng;

    /// Constant tensors fed to the all-ops model (fresh per step in real
    /// training; here varied explicitly between replays).
    struct Data {
        x: Matrix,
        c0: Matrix,
        u: Matrix,
        mask: Matrix,
        scale: Matrix,
        tgt: Matrix,
        bce_t: Matrix,
        gnll_t: Matrix,
    }

    fn mk_data(seed: u64) -> Data {
        let mut rng = Rng::seed_from(seed);
        let mut m = |r: usize, c: usize, lo: f64, hi: f64| {
            Matrix::from_vec(
                r,
                c,
                (0..r * c).map(|_| rng.uniform(lo, hi) as f32).collect(),
            )
        };
        Data {
            x: m(4, 6, -1.0, 1.0),
            c0: m(4, 2, -0.5, 0.5),
            u: m(2, 4, -0.1, 0.1),
            mask: m(4, 1, 0.0, 1.0),
            scale: m(2, 1, 0.4, 0.6),
            tgt: m(2, 4, -1.0, 1.0),
            bce_t: m(1, 4, 0.0, 1.0),
            gnll_t: m(1, 4, -1.0, 1.0),
        }
    }

    fn mk_store(seed: u64) -> (ParamStore, Vec<ParamId>) {
        let mut rng = Rng::seed_from(seed);
        let mut store = ParamStore::new();
        let ids = vec![
            store.add_xavier("w", 6, 8, &mut rng),
            store.add_xavier("hp", 4, 8, &mut rng),
            store.add_xavier("w2", 8, 8, &mut rng),
            store.add_zeros("bias", 1, 8),
        ];
        (store, ids)
    }

    /// Build a graph touching every op variant: an LSTM gate assembly
    /// eligible for both fusions, then one of each remaining op chained
    /// to a four-term loss. Runs identically in record and replay mode.
    fn build_all_ops(g: &mut Graph, store: &ParamStore, ids: &[ParamId], d: &Data) -> NodeId {
        let xin = g.input_ref(&d.x);
        let wp = g.param(store, ids[0]);
        let a = g.matmul(xin, wp);
        let hp = g.param(store, ids[1]);
        let w2p = g.param(store, ids[2]);
        let b = g.matmul(hp, w2p);
        let biasp = g.param(store, ids[3]);
        let gates = g.add_add_row(a, b, biasp);
        let cprev = g.input_ref(&d.c0);
        let cell = g.lstm_cell(gates, cprev, 2);
        let h = g.slice_cols(cell, 0, 2);
        let c = g.slice_cols(cell, 2, 4);
        let s1 = g.sigmoid(h);
        let t1 = g.tanh(c);
        let m1 = g.mul(s1, t1);
        let sc = g.scale(m1, 0.1);
        let e1 = g.exp(sc);
        let sp = g.softplus(m1);
        let lr = g.leaky_relu(m1, 0.01);
        let ad = g.add(e1, s1);
        let sb = g.sub(ad, sp);
        let cc = g.concat_cols(sb, lr);
        let off = g.offset(cc, 0.5);
        let rs = g.row_sum(off);
        let mc = g.mul_col(cc, rs);
        let srg = g.sum_row_groups(mc, 2);
        let nr = g.noisy_renorm(srg, 0.3, &d.u);
        let sr = g.slice_rows(nr, 0, 1);
        let ar = g.add_row(mc, sr);
        let mgm = g.masked_group_mean(ar, &d.mask, &d.scale, 2);
        let mn = g.mean(mgm);
        let tin = g.input_ref(&d.tgt);
        let mse = g.mse_loss(mgm, tin);
        let bce = g.bce_with_logits(sr, d.bce_t.clone());
        let spo = g.softplus(sr);
        let sig = g.offset(spo, 1e-4);
        let gnll = g.gaussian_nll(sr, sig, d.gnll_t.clone());
        g.weighted_sum(vec![(mn, 0.5), (mse, 1.0), (bce, 0.3), (gnll, 0.2)])
    }

    /// Interpreted reference: loss value, probe value, parameter grads.
    fn run_interpreted(
        store_seed: u64,
        d: &Data,
        pre_steps: u32,
    ) -> (Matrix, Vec<Vec<f32>>, Graph, NodeId) {
        let (mut store, ids) = mk_store(store_seed);
        let mut sgd = Sgd::new(0.05);
        for s in 0..=pre_steps {
            store.zero_grad();
            let mut g = Graph::new();
            let loss = build_all_ops(&mut g, &store, &ids, d);
            let lv = g.value(loss).clone();
            g.backward(loss, &mut store);
            if s == pre_steps {
                let grads = store.iter().map(|p| p.grad.data.clone()).collect();
                return (lv, grads, g, loss);
            }
            sgd.step(&mut store);
        }
        unreachable!()
    }

    #[test]
    fn plan_matches_interpreted_bitwise_all_ops() {
        let d = mk_data(11);
        let (lv_ref, grads_ref, g_ref, loss_ref) = run_interpreted(7, &d, 0);
        let plan = g_ref.into_plan(Some(loss_ref));

        let (mut store, ids) = mk_store(7);
        store.zero_grad();
        let mut g = Graph::replay(plan);
        let loss = build_all_ops(&mut g, &store, &ids, &d);
        assert_eq!(g.value(loss).data, lv_ref.data, "forward loss diverged");
        g.backward(loss, &mut store);
        for (p, gr) in store.iter().zip(grads_ref.iter()) {
            assert_eq!(p.grad.data, *gr, "grad of {} diverged", p.name);
        }
    }

    #[test]
    fn plan_replays_repeatedly_across_optimizer_steps() {
        let d = mk_data(23);
        // Compile once from step 0, then replay through three SGD steps,
        // checking each against a freshly interpreted run of the same step.
        let (mut store, ids) = mk_store(9);
        let mut g0 = Graph::new();
        let loss0 = build_all_ops(&mut g0, &store, &ids, &d);
        let _ = g0.value(loss0);
        let mut plan = g0.into_plan(Some(loss0));

        let mut sgd = Sgd::new(0.05);
        for step in 0..3u32 {
            let (lv_ref, grads_ref, _, _) = run_interpreted(9, &d, step);
            store.zero_grad();
            let mut g = Graph::replay(plan);
            let loss = build_all_ops(&mut g, &store, &ids, &d);
            assert_eq!(g.value(loss).data, lv_ref.data, "step {step} fwd");
            g.backward(loss, &mut store);
            for (p, gr) in store.iter().zip(grads_ref.iter()) {
                assert_eq!(p.grad.data, *gr, "step {step} grad {}", p.name);
            }
            plan = g.into_plan(Some(loss));
            sgd.step(&mut store);
        }
    }

    #[test]
    fn plan_tracks_fresh_inputs_and_constants() {
        // Same plan, different input/noise/target data each replay.
        let d0 = mk_data(31);
        let (_, _, g_ref, loss_ref) = run_interpreted(13, &d0, 0);
        let mut plan = g_ref.into_plan(Some(loss_ref));
        for seed in [32u64, 33, 34] {
            let d = mk_data(seed);
            let (lv_ref, grads_ref, _, _) = run_interpreted(13, &d, 0);
            let (mut store, ids) = mk_store(13);
            store.zero_grad();
            let mut g = Graph::replay(plan);
            let loss = build_all_ops(&mut g, &store, &ids, &d);
            assert_eq!(g.value(loss).data, lv_ref.data, "data {seed} fwd");
            g.backward(loss, &mut store);
            for (p, gr) in store.iter().zip(grads_ref.iter()) {
                assert_eq!(p.grad.data, *gr, "data {seed} grad {}", p.name);
            }
            plan = g.into_plan(Some(loss));
        }
    }

    #[test]
    fn forward_only_plan_serves_autoregressive_reads() {
        // Free-running generation: each iteration feeds back a value read
        // out of the graph mid-build, exercising ext pinning.
        let (store, ids) = mk_store(17);
        let run = |g: &mut Graph| -> Vec<f32> {
            let mut feed = Matrix::from_vec(1, 6, vec![0.1; 6]);
            for _ in 0..3 {
                let xin = g.input_ref(&feed);
                let wp = g.param(&store, ids[0]);
                let h = g.matmul(xin, wp);
                let t = g.tanh(h);
                let v = g.value(t);
                // Next input: first 6 activations, halved (host-side math).
                feed = Matrix::from_vec(1, 6, v.data[..6].iter().map(|x| 0.5 * x).collect());
            }
            feed.data
        };
        let mut g0 = Graph::new();
        let out_ref = run(&mut g0);
        let plan = g0.into_plan(None);
        let mut g1 = Graph::replay(plan);
        let out = run(&mut g1);
        assert_eq!(out, out_ref, "autoregressive replay diverged");
        let _ = g1.into_plan(None); // full-replay check
    }

    #[test]
    fn fusion_kinds_are_applied() {
        let d = mk_data(41);
        let (_, _, g_ref, loss_ref) = run_interpreted(19, &d, 0);
        let plan = g_ref.into_plan(Some(loss_ref));
        let kinds: Vec<&Kind> = plan.steps.iter().map(|s| &s.kind).collect();
        assert!(
            kinds.iter().any(|k| matches!(k, Kind::FusedGates { .. })),
            "gate assembly not fused"
        );
        assert!(
            kinds.iter().any(|k| matches!(k, Kind::CellSplit { .. })),
            "lstm cell split not fused"
        );
    }

    /// Arena soundness: on any slot, binding intervals must be disjoint
    /// with strict ordering (a released buffer may only be rebound at a
    /// strictly later timeline point), pinned bindings must be the final
    /// occupant of their slot, and every binding must fit its capacity.
    fn assert_no_aliasing(plan: &Plan) {
        let mut by_slot: Vec<Vec<&LiveRange>> = vec![Vec::new(); plan.arena_slots()];
        for r in plan.live_ranges() {
            by_slot[r.slot].push(r);
        }
        for (slot, mut rs) in by_slot.into_iter().enumerate() {
            rs.sort_by_key(|r| r.start);
            for w in rs.windows(2) {
                assert!(
                    w[0].end < w[1].start,
                    "slot {slot}: binding for step {} (end {}) overlaps \
                     binding for step {} (start {})",
                    w[0].step,
                    w[0].end,
                    w[1].step,
                    w[1].start
                );
            }
            for r in rs {
                assert!(
                    plan.slot_caps()[slot] >= r.elems,
                    "slot {slot}: capacity {} < bound shape {} elems",
                    plan.slot_caps()[slot],
                    r.elems
                );
            }
        }
    }

    #[test]
    fn arena_bindings_never_alias() {
        let d = mk_data(53);
        let (_, _, g_ref, loss_ref) = run_interpreted(29, &d, 0);
        let plan = g_ref.into_plan(Some(loss_ref));
        assert!(plan.arena_slots() > 0);
        assert!(
            plan.arena_slots() < plan.len(),
            "liveness pass reused no slots"
        );
        assert_no_aliasing(&plan);

        // Forward-only (generation-style) plan.
        let (store, ids) = mk_store(29);
        let mut g = Graph::new();
        let xin = g.input_ref(&d.x);
        let wp = g.param(&store, ids[0]);
        let h = g.matmul(xin, wp);
        let t = g.tanh(h);
        let _ = g.value(t);
        let plan = g.into_plan(None);
        assert_no_aliasing(&plan);
    }

    #[test]
    fn plan_cache_takes_and_puts() {
        let d = mk_data(61);
        let (_, _, g_ref, loss_ref) = run_interpreted(31, &d, 0);
        let plan = g_ref.into_plan(Some(loss_ref));
        let cache = PlanCache::new();
        let key = PlanKey::new("test", [4, 6, 2, 0, 0, 0]);
        assert!(cache.take(&key).is_none());
        cache.put(key, plan);
        assert_eq!(cache.len(), 1);
        let p = cache.take(&key).expect("plan cached");
        assert!(cache.is_empty());
        assert!(!p.is_empty());
    }

    #[test]
    fn fold_dims_separates_shape_lists() {
        let a = fold_dims([50u64, 50, 48]);
        let b = fold_dims([50u64, 48, 50]);
        assert_ne!(a, b);
        assert_eq!(a, fold_dims([50u64, 50, 48]));
    }
}
