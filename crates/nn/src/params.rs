//! Persistent parameter storage, gradient accumulation, and optimizers.
//!
//! Parameters live outside the per-step autograd graph: each training step
//! builds a fresh [`crate::graph::Graph`], leafs the parameters into it via
//! [`crate::graph::Graph::param`], and after the backward pass the gradients
//! accumulated here are consumed by an optimizer step.

use crate::matrix::Matrix;
use crate::rng::Rng;
use serde::{Deserialize, Serialize};

/// Handle to a parameter inside a [`ParamStore`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParamId(pub usize);

/// A named, trainable parameter matrix with its accumulated gradient.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Param {
    /// Human-readable name (used in checkpoints and diagnostics).
    pub name: String,
    /// Current value.
    pub value: Matrix,
    /// Gradient accumulated since the last [`ParamStore::zero_grad`].
    pub grad: Matrix,
}

/// The set of all trainable parameters of one model (or sub-model).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ParamStore {
    params: Vec<Param>,
    /// Monotonic mutation counter: bumped whenever parameter *values*
    /// may have changed (registration, `value_mut`, optimizer steps) —
    /// but not by gradient traffic. Compiled plans compare it to decide
    /// whether their parameter slots need re-synchronizing; plans start
    /// at a sentinel version, so any store state triggers a first sync.
    version: u64,
}

impl ParamStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current value-mutation version (see the field docs).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Register a parameter with an explicit initial value.
    pub fn add(&mut self, name: &str, value: Matrix) -> ParamId {
        let grad = Matrix::zeros(value.rows, value.cols);
        self.version += 1;
        self.params.push(Param {
            name: name.to_string(),
            value,
            grad,
        });
        ParamId(self.params.len() - 1)
    }

    /// Register a parameter initialized with Xavier/Glorot uniform noise.
    pub fn add_xavier(&mut self, name: &str, rows: usize, cols: usize, rng: &mut Rng) -> ParamId {
        let bound = (6.0 / (rows + cols) as f64).sqrt() as f32;
        let data = (0..rows * cols)
            .map(|_| rng.uniform(-bound as f64, bound as f64) as f32)
            .collect();
        self.add(name, Matrix::from_vec(rows, cols, data))
    }

    /// Register an all-zeros parameter (typical for biases).
    pub fn add_zeros(&mut self, name: &str, rows: usize, cols: usize) -> ParamId {
        self.add(name, Matrix::zeros(rows, cols))
    }

    /// Value of a parameter.
    pub fn value(&self, id: ParamId) -> &Matrix {
        &self.params[id.0].value
    }

    /// Mutable value (used by checkpoint loading and tests).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Matrix {
        self.version += 1;
        &mut self.params[id.0].value
    }

    /// Accumulated gradient of a parameter.
    pub fn grad(&self, id: ParamId) -> &Matrix {
        &self.params[id.0].grad
    }

    /// Accumulate `g` into the gradient of `id`.
    pub fn accumulate_grad(&mut self, id: ParamId, g: &Matrix) {
        self.params[id.0].grad.add_assign(g);
    }

    /// Accumulate every gradient from `other` — a clone of this store
    /// that ran its own backward pass — into this store's gradients.
    ///
    /// This is the reduction step of sharded training: worker shards
    /// backward into clones, and the trainer merges them in fixed shard
    /// order so the result is independent of execution order.
    ///
    /// # Panics
    /// Panics if the stores have different parameter layouts.
    pub fn accumulate_grads_from(&mut self, other: &ParamStore) {
        assert_eq!(
            self.params.len(),
            other.params.len(),
            "param store layout mismatch"
        );
        for (p, o) in self.params.iter_mut().zip(other.params.iter()) {
            p.grad.add_assign(&o.grad);
        }
    }

    /// Reset all gradients to zero.
    pub fn zero_grad(&mut self) {
        for p in &mut self.params {
            p.grad.data.iter_mut().for_each(|v| *v = 0.0);
        }
    }

    /// Number of parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True if no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total number of scalar weights.
    pub fn num_scalars(&self) -> usize {
        self.params.iter().map(|p| p.value.data.len()).sum()
    }

    /// Iterate over all parameters.
    pub fn iter(&self) -> impl Iterator<Item = &Param> {
        self.params.iter()
    }

    /// Clip the global gradient norm to `max_norm`; returns the pre-clip norm.
    pub fn clip_grad_norm(&mut self, max_norm: f32) -> f32 {
        let total: f32 = self.params.iter().map(|p| p.grad.norm_sq()).sum();
        let norm = total.sqrt();
        if norm > max_norm && norm > 0.0 {
            let s = max_norm / norm;
            for p in &mut self.params {
                p.grad.scale_assign(s);
            }
        }
        norm
    }

    /// Replace any non-finite gradient entries with zero. Returns how many
    /// entries were scrubbed; a non-zero count signals an unstable step.
    pub fn scrub_non_finite_grads(&mut self) -> usize {
        let mut n = 0;
        for p in &mut self.params {
            for g in p.grad.data.iter_mut() {
                if !g.is_finite() {
                    *g = 0.0;
                    n += 1;
                }
            }
        }
        n
    }
}

/// Adam optimizer (Kingma & Ba) with decoupled state per [`ParamStore`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    t: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Adam with standard betas for the given learning rate.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Apply one update step using the gradients currently in `store`.
    pub fn step(&mut self, store: &mut ParamStore) {
        while self.m.len() < store.params.len() {
            let i = self.m.len();
            let n = store.params[i].value.data.len();
            self.m.push(vec![0.0; n]);
            self.v.push(vec![0.0; n]);
        }
        self.t += 1;
        store.version += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for (i, p) in store.params.iter_mut().enumerate() {
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            for ((w, &g), (mi, vi)) in p
                .value
                .data
                .iter_mut()
                .zip(p.grad.data.iter())
                .zip(m.iter_mut().zip(v.iter_mut()))
            {
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * g;
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * g * g;
                let mhat = *mi / b1t;
                let vhat = *vi / b2t;
                *w -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }
}

/// Plain SGD, used by tests as a reference optimizer.
#[derive(Clone, Debug)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
}

impl Sgd {
    /// SGD with the given learning rate.
    pub fn new(lr: f32) -> Self {
        Sgd { lr }
    }

    /// Apply one `w -= lr * g` step.
    pub fn step(&mut self, store: &mut ParamStore) {
        store.version += 1;
        for p in &mut store.params {
            for (w, &g) in p.value.data.iter_mut().zip(p.grad.data.iter()) {
                *w -= self.lr * g;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gradients_accumulate_and_reset() {
        let mut s = ParamStore::new();
        let id = s.add("w", Matrix::from_vec(1, 2, vec![1.0, 2.0]));
        s.accumulate_grad(id, &Matrix::from_vec(1, 2, vec![0.5, 0.5]));
        s.accumulate_grad(id, &Matrix::from_vec(1, 2, vec![0.5, 0.5]));
        assert_eq!(s.grad(id).data, vec![1.0, 1.0]);
        s.zero_grad();
        assert_eq!(s.grad(id).data, vec![0.0, 0.0]);
    }

    #[test]
    fn sgd_moves_against_gradient() {
        let mut s = ParamStore::new();
        let id = s.add("w", Matrix::from_vec(1, 1, vec![1.0]));
        s.accumulate_grad(id, &Matrix::from_vec(1, 1, vec![2.0]));
        Sgd::new(0.1).step(&mut s);
        assert!((s.value(id).data[0] - 0.8).abs() < 1e-6);
    }

    #[test]
    fn adam_minimizes_quadratic() {
        // Minimize f(w) = (w - 3)^2 by feeding grad = 2(w - 3).
        let mut s = ParamStore::new();
        let id = s.add("w", Matrix::from_vec(1, 1, vec![0.0]));
        let mut opt = Adam::new(0.1);
        for _ in 0..500 {
            s.zero_grad();
            let w = s.value(id).data[0];
            s.accumulate_grad(id, &Matrix::from_vec(1, 1, vec![2.0 * (w - 3.0)]));
            opt.step(&mut s);
        }
        assert!((s.value(id).data[0] - 3.0).abs() < 1e-2);
    }

    #[test]
    fn clip_grad_norm_scales_down() {
        let mut s = ParamStore::new();
        let id = s.add("w", Matrix::zeros(1, 2));
        s.accumulate_grad(id, &Matrix::from_vec(1, 2, vec![3.0, 4.0]));
        let pre = s.clip_grad_norm(1.0);
        assert!((pre - 5.0).abs() < 1e-6);
        let post = s.grad(id).norm_sq().sqrt();
        assert!((post - 1.0).abs() < 1e-5);
    }

    #[test]
    fn scrub_non_finite() {
        let mut s = ParamStore::new();
        let id = s.add("w", Matrix::zeros(1, 2));
        s.accumulate_grad(id, &Matrix::from_vec(1, 2, vec![f32::NAN, 1.0]));
        assert_eq!(s.scrub_non_finite_grads(), 1);
        assert_eq!(s.grad(id).data, vec![0.0, 1.0]);
    }

    #[test]
    fn xavier_init_is_bounded() {
        let mut s = ParamStore::new();
        let mut rng = Rng::seed_from(7);
        let id = s.add_xavier("w", 10, 20, &mut rng);
        let bound = (6.0f32 / 30.0).sqrt();
        assert!(s.value(id).data.iter().all(|v| v.abs() <= bound));
    }
}
