//! Saving and restoring [`ParamStore`] contents.
//!
//! Checkpoints are plain JSON keyed by parameter name, so they survive
//! refactors that reorder parameter registration, and diffs stay readable.

use crate::matrix::Matrix;
use crate::params::ParamStore;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io;
use std::path::Path;

/// On-disk checkpoint format: name -> matrix.
#[derive(Debug, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Format version for forward compatibility.
    pub version: u32,
    /// Parameter values keyed by registration name.
    pub params: BTreeMap<String, Matrix>,
}

/// Errors from checkpoint load/save.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// JSON (de)serialization failure.
    Json(serde_json::Error),
    /// A parameter in the store has no entry in the checkpoint.
    MissingParam(String),
    /// The file is not a recognizable checkpoint (bad magic, unsupported
    /// format version, or a truncated/foreign body).
    Format(String),
    /// Checkpoint entry shape does not match the store's parameter.
    ShapeMismatch {
        /// Parameter name.
        name: String,
        /// Shape currently registered in the store.
        expected: (usize, usize),
        /// Shape found in the checkpoint.
        found: (usize, usize),
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Json(e) => write!(f, "checkpoint JSON error: {e}"),
            CheckpointError::Format(msg) => write!(f, "checkpoint format error: {msg}"),
            CheckpointError::MissingParam(n) => write!(f, "checkpoint missing parameter {n:?}"),
            CheckpointError::ShapeMismatch {
                name,
                expected,
                found,
            } => write!(
                f,
                "checkpoint shape mismatch for {name:?}: expected {expected:?}, found {found:?}"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<serde_json::Error> for CheckpointError {
    fn from(e: serde_json::Error) -> Self {
        CheckpointError::Json(e)
    }
}

/// Snapshot a store into a checkpoint value.
pub fn snapshot(store: &ParamStore) -> Checkpoint {
    let params = store
        .iter()
        .map(|p| (p.name.clone(), p.value.clone()))
        .collect();
    Checkpoint { version: 1, params }
}

/// Restore parameter values (by name) from a checkpoint into `store`.
///
/// Every parameter registered in the store must be present in the
/// checkpoint with a matching shape; extra checkpoint entries are ignored.
pub fn restore(store: &mut ParamStore, ckpt: &Checkpoint) -> Result<(), CheckpointError> {
    // Collect the ids first to avoid aliasing store borrows.
    let names: Vec<String> = store.iter().map(|p| p.name.clone()).collect();
    for (i, name) in names.iter().enumerate() {
        let entry = ckpt
            .params
            .get(name)
            .ok_or_else(|| CheckpointError::MissingParam(name.clone()))?;
        let id = crate::params::ParamId(i);
        let expected = store.value(id).shape();
        if entry.shape() != expected {
            return Err(CheckpointError::ShapeMismatch {
                name: name.clone(),
                expected,
                found: entry.shape(),
            });
        }
        *store.value_mut(id) = entry.clone();
    }
    Ok(())
}

/// Save a store to a JSON file.
pub fn save_to_file(store: &ParamStore, path: &Path) -> Result<(), CheckpointError> {
    let ckpt = snapshot(store);
    let json = serde_json::to_string(&ckpt)?;
    std::fs::write(path, json)?;
    Ok(())
}

/// Load a JSON checkpoint file into a store.
pub fn load_from_file(store: &mut ParamStore, path: &Path) -> Result<(), CheckpointError> {
    let json = std::fs::read_to_string(path)?;
    let ckpt: Checkpoint = serde_json::from_str(&json)?;
    restore(store, &ckpt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn snapshot_restore_roundtrip() -> Result<(), CheckpointError> {
        let mut rng = Rng::seed_from(1);
        let mut store = ParamStore::new();
        store.add_xavier("a", 2, 3, &mut rng);
        store.add_xavier("b", 4, 1, &mut rng);
        let ckpt = snapshot(&store);

        let mut store2 = ParamStore::new();
        store2.add_zeros("a", 2, 3);
        store2.add_zeros("b", 4, 1);
        restore(&mut store2, &ckpt)?;
        for (p, q) in store.iter().zip(store2.iter()) {
            assert_eq!(p.value, q.value);
        }
        Ok(())
    }

    #[test]
    fn restore_rejects_missing_param() {
        let store = ParamStore::new();
        let ckpt = snapshot(&store);
        let mut store2 = ParamStore::new();
        store2.add_zeros("only-here", 1, 1);
        assert!(matches!(
            restore(&mut store2, &ckpt),
            Err(CheckpointError::MissingParam(_))
        ));
    }

    #[test]
    fn restore_rejects_shape_mismatch() {
        let mut store = ParamStore::new();
        store.add_zeros("w", 2, 2);
        let ckpt = snapshot(&store);
        let mut store2 = ParamStore::new();
        store2.add_zeros("w", 3, 2);
        assert!(matches!(
            restore(&mut store2, &ckpt),
            Err(CheckpointError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn file_roundtrip() -> Result<(), CheckpointError> {
        let mut rng = Rng::seed_from(2);
        let mut store = ParamStore::new();
        store.add_xavier("w", 3, 3, &mut rng);
        let dir = std::env::temp_dir().join("gendt-nn-ckpt-test");
        std::fs::create_dir_all(&dir)?;
        let path = dir.join("ckpt.json");
        save_to_file(&store, &path)?;
        let mut store2 = ParamStore::new();
        store2.add_zeros("w", 3, 3);
        load_from_file(&mut store2, &path)?;
        assert_eq!(
            store.value(crate::params::ParamId(0)),
            store2.value(crate::params::ParamId(0))
        );
        std::fs::remove_file(&path).ok();
        Ok(())
    }
}
