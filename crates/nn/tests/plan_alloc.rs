//! Proof of the plan executor's headline property: replaying a compiled
//! plan — forward, backward, and optimizer step — performs **zero heap
//! allocations** after the first (warm-up) replay.
//!
//! The test binary installs the vendored counting allocator globally and
//! diffs its per-thread counters around replayed training steps. The
//! production crates all `forbid(unsafe_code)`, so the allocator lives
//! in `vendor/alloc-counter`; everything here is safe code.

use alloc_counter::{snapshot, CountingAlloc};
use gendt_nn::{Graph, Matrix, NodeId, ParamId, ParamStore, Rng, Sgd};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const BATCH: usize = 4;
const IN: usize = 6;
const HIDDEN: usize = 5;
const OUT: usize = 3;

struct Params {
    w: ParamId,
    wh: ParamId,
    b: ParamId,
    w2: ParamId,
}

fn init(store: &mut ParamStore, rng: &mut Rng) -> Params {
    Params {
        w: store.add_xavier("w", IN, 4 * HIDDEN, rng),
        wh: store.add_xavier("wh", IN, 4 * HIDDEN, rng),
        b: store.add_zeros("b", 1, 4 * HIDDEN),
        w2: store.add_xavier("w2", HIDDEN, OUT, rng),
    }
}

/// One training-step graph: gate matmuls (fusion-eligible), an LSTM
/// cell consumed by its two covering slices (split-eligible, with the
/// `c` half dead so its gradient never materializes), a head matmul,
/// and an MSE loss. All leaves enter by reference so a replayed step
/// never clones an input.
fn build(
    g: &mut Graph,
    store: &ParamStore,
    p: &Params,
    x: &Matrix,
    c0: &Matrix,
    tgt: &Matrix,
) -> NodeId {
    let x = g.input_ref(x);
    let w = g.param(store, p.w);
    let wh = g.param(store, p.wh);
    let b = g.param(store, p.b);
    let w2 = g.param(store, p.w2);
    let c_prev = g.input_ref(c0);
    let xi = g.matmul(x, w);
    let hh = g.matmul(x, wh);
    let gates = g.add_add_row(xi, hh, b);
    let cell = g.lstm_cell(gates, c_prev, HIDDEN);
    let h = g.slice_cols(cell, 0, HIDDEN);
    let _c = g.slice_cols(cell, HIDDEN, 2 * HIDDEN);
    let y = g.matmul(h, w2);
    let target = g.input_ref(tgt);
    g.mse_loss(y, target)
}

#[test]
fn replayed_train_steps_do_not_allocate() {
    // Single-threaded: the counters are thread-local, and the blocked
    // kernels' multi-thread fallback path allocates by design.
    gendt_nn::set_num_threads(1);
    let mut rng = Rng::seed_from(11);
    let mut store = ParamStore::new();
    let p = init(&mut store, &mut rng);
    let mut opt = Sgd::new(0.05);

    let mut x = Matrix::zeros(BATCH, IN);
    let c0 = Matrix::zeros(BATCH, HIDDEN);
    let mut tgt = Matrix::zeros(BATCH, OUT);
    let fill = |m: &mut Matrix, rng: &mut Rng| {
        for v in m.data.iter_mut() {
            *v = rng.uniform(-1.0, 1.0) as f32;
        }
    };

    // Record once. Reading the loss marks its step externally-read, so
    // every replay can read it back too.
    fill(&mut x, &mut rng);
    fill(&mut tgt, &mut rng);
    store.zero_grad();
    let mut g = Graph::new();
    let loss = build(&mut g, &store, &p, &x, &c0, &tgt);
    g.backward(loss, &mut store);
    assert!(g.value(loss).data[0].is_finite());
    opt.step(&mut store);
    let mut plan = g.into_plan(Some(loss));

    // Warm-up replay: first param sync, scratch binding.
    fill(&mut x, &mut rng);
    fill(&mut tgt, &mut rng);
    store.zero_grad();
    let mut g = Graph::replay(plan);
    let loss = build(&mut g, &store, &p, &x, &c0, &tgt);
    g.backward(loss, &mut store);
    opt.step(&mut store);
    plan = g.into_plan(Some(loss));

    // Measured replays: fresh data, forward, backward, optimizer —
    // not one allocation allowed.
    for step in 0..5 {
        fill(&mut x, &mut rng);
        fill(&mut tgt, &mut rng);
        store.zero_grad();
        let before = snapshot();
        let mut g = Graph::replay(plan);
        let loss = build(&mut g, &store, &p, &x, &c0, &tgt);
        g.backward(loss, &mut store);
        let l = g.value(loss).data[0];
        plan = g.into_plan(Some(loss));
        let after = snapshot();
        opt.step(&mut store);
        assert!(l.is_finite(), "loss went non-finite at step {step}");
        let traffic = after.since(before);
        assert_eq!(
            (traffic.allocs, traffic.bytes),
            (0, 0),
            "replayed step {step} allocated {} time(s) / {} byte(s)",
            traffic.allocs,
            traffic.bytes
        );
    }
}
