//! Self-tests for the verification layer.
//!
//! The audit crate only earns trust by catching *seeded* defects, so the
//! tests here plant a wrong gradient, a mid-graph `Inf`, and a directory
//! of lint violations, and assert each detector fires — alongside the
//! clean-path assertions (every real op passes gradcheck, the real repo
//! lints clean, the zoo covers every variant).

use gendt_audit::{gradcheck, lint, tape, zoo};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

use gendt_nn::{Graph, Matrix};

/// Serializes tests that flip the global `GENDT_SANITIZE` state.
static SANITIZE_LOCK: Mutex<()> = Mutex::new(());

// ---------------------------------------------------------------------
// Gradcheck: clean path + seeded wrong gradient
// ---------------------------------------------------------------------

#[test]
fn gradcheck_every_case_passes() {
    for r in gradcheck::run_all() {
        assert!(
            r.passed,
            "case {} failed (max_rel_err {:.3e}): {}",
            r.name, r.max_rel_err, r.detail
        );
    }
}

#[test]
fn gradcheck_detects_seeded_wrong_gradient() {
    // The recorded graph computes mean(2w); the finite-difference
    // reference deliberately evaluates mean(3w). This simulates an op
    // whose backward disagrees with its forward — the harness must fail
    // the case, not paper over it.
    let r = gradcheck::check_case(
        "seeded_wrong_gradient",
        vec![(
            "w",
            Matrix::from_vec(2, 3, vec![0.3, -0.7, 1.1, 0.2, -0.4, 0.9]),
        )],
        &|g, s, ids| {
            let w = g.param(s, ids[0]);
            let y = g.scale(w, 2.0);
            g.mean(y)
        },
        Some(&|mats: &[&Matrix]| {
            let m = mats[0];
            3.0 * m.data.iter().map(|&v| f64::from(v)).sum::<f64>() / m.data.len() as f64
        }),
    );
    assert!(
        !r.passed,
        "harness accepted a gradient off by 1.5x: {}",
        r.detail
    );
    assert!(r.max_rel_err > gradcheck::TOLERANCE);
}

// ---------------------------------------------------------------------
// Zoo coverage: every Op variant recorded, mapped, and verified
// ---------------------------------------------------------------------

/// `Op::name()` of every variant. Adding a variant to `gendt-nn` already
/// breaks the exhaustive matches in `tape`/`gradcheck`; this list makes
/// the *zoo* fail loudly too until the new op is recorded there.
const ALL_OP_NAMES: &[&str] = &[
    "Input",
    "Param",
    "MatMul",
    "Add",
    "Sub",
    "Mul",
    "AddRow",
    "MulCol",
    "Scale",
    "Offset",
    "Sigmoid",
    "Tanh",
    "LeakyRelu",
    "Exp",
    "Softplus",
    "ConcatCols",
    "SliceCols",
    "SliceRows",
    "RowSum",
    "SumRowGroups",
    "LstmCell",
    "NoisyRenorm",
    "AddAddRow",
    "MaskedGroupMean",
    "Mean",
    "MseLoss",
    "BceWithLogits",
    "WeightedSum",
    "GaussianNll",
];

#[test]
fn zoo_records_every_op_variant() {
    let z = zoo::build();
    let recorded: Vec<&str> = z.graph.node_ids().map(|id| z.graph.op(id).name()).collect();
    for &name in ALL_OP_NAMES {
        assert!(
            recorded.contains(&name),
            "zoo graph never records Op::{name}"
        );
    }
}

#[test]
fn zoo_tape_verifies_clean() {
    let z = zoo::build();
    let report = tape::verify(&z.graph, Some(z.loss));
    assert!(
        report.issues.is_empty(),
        "zoo graph should verify with zero findings, got: {:#?}",
        report.issues
    );
}

#[test]
fn every_zoo_op_maps_to_registered_gradcheck_cases() {
    let z = zoo::build();
    let registry: Vec<&str> = gradcheck::all_cases().iter().map(|(n, _)| *n).collect();
    for id in z.graph.node_ids() {
        let op = z.graph.op(id);
        let cases = gradcheck::cases_for(op);
        assert!(
            !cases.is_empty(),
            "Op::{} maps to no gradcheck cases",
            op.name()
        );
        for &case in cases {
            assert!(
                registry.contains(&case),
                "Op::{} names case `{case}` which is not in the registry",
                op.name()
            );
        }
    }
}

// ---------------------------------------------------------------------
// Tape verifier: shape rules and dead-node detection
// ---------------------------------------------------------------------

#[test]
fn expected_shape_accepts_and_rejects_matmul_operands() {
    // NodeIds can only come from a real graph; the shape closure is ours.
    let mut g = Graph::new();
    let a = g.input(Matrix::zeros(2, 3));
    let b = g.input(Matrix::zeros(3, 4));
    let ids = [a, b];

    let good = |id: gendt_nn::NodeId| if id == ids[0] { (2, 3) } else { (3, 4) };
    assert_eq!(
        tape::expected_shape(&gendt_nn::Op::MatMul(a, b), &good),
        Some(Ok((2, 4)))
    );

    let bad = |id: gendt_nn::NodeId| if id == ids[0] { (2, 3) } else { (5, 4) };
    match tape::expected_shape(&gendt_nn::Op::MatMul(a, b), &bad) {
        Some(Err(msg)) => assert!(
            msg.contains("inner dimensions"),
            "unexpected message: {msg}"
        ),
        other => panic!("mismatched matmul operands must be rejected, got {other:?}"),
    }
}

#[test]
fn verifier_flags_dead_node() {
    let mut g = Graph::new();
    let a = g.input(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
    let orphan = g.sigmoid(a); // never consumed, not the loss
    let live = g.tanh(a);
    let loss = g.mean(live);

    let report = tape::verify(&g, Some(loss));
    assert!(report.is_consistent(), "graph has no shape errors");
    let flagged: Vec<usize> = report
        .warnings()
        .filter(|i| i.message.contains("dead node"))
        .map(|i| i.node)
        .collect();
    assert_eq!(
        flagged,
        vec![orphan.index()],
        "exactly the orphan must be flagged"
    );
}

// ---------------------------------------------------------------------
// Sanitizer: seeded NaN/Inf in forward and backward
// ---------------------------------------------------------------------

#[test]
fn sanitizer_catches_seeded_forward_inf() {
    let _guard = SANITIZE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    gendt_nn::set_sanitize(true);
    let result = catch_unwind(AssertUnwindSafe(|| {
        let mut g = Graph::new();
        let a = g.input(Matrix::full(1, 1, 1.0e38));
        let b = g.input(Matrix::full(1, 1, 1.0e38));
        g.mul(a, b) // 1e76 overflows f32 -> Inf at op granularity
    }));
    gendt_nn::set_sanitize(false);
    let msg = panic_message(result.expect_err("sanitizer must panic on a forward Inf"));
    assert!(
        msg.contains("GENDT_SANITIZE"),
        "panic must name the sanitizer: {msg}"
    );
    assert!(
        msg.contains("non-finite value"),
        "panic must describe the defect: {msg}"
    );
    assert!(
        msg.contains("Mul"),
        "panic must name the offending op: {msg}"
    );
}

#[test]
fn sanitizer_catches_seeded_backward_inf() {
    let _guard = SANITIZE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // Record with the sanitizer OFF so the (finite-forward-breaking)
    // setup survives: exp(88) ~ 1.7e38 is finite, and the mul's Inf
    // forward goes unchecked. The backward then pushes
    // d(exp_in) = 3e38 * 1.7e38 = Inf into the parameter.
    gendt_nn::set_sanitize(false);
    let mut store = gendt_nn::ParamStore::new();
    let w = store.add("w", Matrix::full(1, 1, 88.0));
    let mut g = Graph::new();
    let x = g.param(&store, w);
    let y = g.exp(x);
    let c = g.input(Matrix::full(1, 1, 3.0e38));
    let z = g.mul(y, c);
    let loss = g.mean(z);

    gendt_nn::set_sanitize(true);
    let result = catch_unwind(AssertUnwindSafe(|| {
        g.backward(loss, &mut store);
    }));
    gendt_nn::set_sanitize(false);
    let msg = panic_message(result.expect_err("sanitizer must panic on a backward Inf"));
    assert!(
        msg.contains("GENDT_SANITIZE"),
        "panic must name the sanitizer: {msg}"
    );
    assert!(
        msg.contains("non-finite gradient"),
        "panic must describe the defect: {msg}"
    );
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        String::from("<non-string panic payload>")
    }
}

// ---------------------------------------------------------------------
// Lint: seeded violations in a fixture tree + the real repo stays clean
// ---------------------------------------------------------------------

struct FixtureDir(std::path::PathBuf);

impl Drop for FixtureDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn write_fixture(root: &std::path::Path, rel: &str, body: &str) {
    let p = root.join(rel);
    if let Some(dir) = p.parent() {
        std::fs::create_dir_all(dir).expect("fixture mkdir");
    }
    std::fs::write(p, body).expect("fixture write");
}

const CLEAN_FILE: &str = "pub fn noop() {}\n";

/// Lay out a miniature workspace with one seeded violation per rule
/// family, plus decoys (violating tokens inside comments, strings, and
/// `#[cfg(test)]` where the rule exempts them) that must NOT fire.
fn seeded_fixture() -> FixtureDir {
    let root =
        std::env::temp_dir().join(format!("gendt-audit-lint-fixture-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    // Seed 1 (unsafe-forbid): nn's lib.rs lacks the attribute.
    write_fixture(&root, "crates/nn/src/lib.rs", "pub mod graph;\n");
    // Seed 2 (no-unwrap): one unwrap outside tests in graph.rs; the one
    // inside #[cfg(test)] and the ones in comments/strings are exempt.
    // Seed 5 (fused-bitwise): every fused op except `sum_row_groups`
    // has a bitwise test fn.
    write_fixture(
        &root,
        "crates/nn/src/graph.rs",
        r#"
// a comment saying .unwrap() must not fire
pub fn hot() {
    let v: Option<u8> = Some(1);
    let msg = "string saying .unwrap() must not fire";
    let _ = msg;
    let _ = v.unwrap(); // seeded violation
}
#[cfg(test)]
mod tests {
    fn lstm_cell_bitwise() {}
    fn noisy_renorm_bitwise() {}
    fn add_add_row_bitwise() {}
    fn masked_group_mean_bitwise() {}
    fn slice_rows_bitwise() {}
    fn exempt() {
        let v: Option<u8> = Some(1);
        let _ = v.unwrap();
    }
}
"#,
    );
    write_fixture(&root, "crates/nn/src/kernels.rs", CLEAN_FILE);
    write_fixture(&root, "crates/nn/src/matrix.rs", CLEAN_FILE);
    write_fixture(&root, "crates/nn/src/layers.rs", CLEAN_FILE);
    write_fixture(&root, "crates/nn/src/params.rs", CLEAN_FILE);
    write_fixture(&root, "crates/nn/src/threads.rs", CLEAN_FILE);
    write_fixture(&root, "crates/nn/src/sanitize.rs", CLEAN_FILE);
    // Seed 11 (plan-no-alloc): a Matrix::zeros inside the plan step
    // path. Allocations outside the markers, tokens in comments, and
    // the `allow-alloc`-exempted line are decoys that must not fire.
    write_fixture(
        &root,
        "crates/nn/src/plan.rs",
        r#"
pub fn build() {
    let _v: Vec<u8> = Vec::new(); // outside the markers: fine
}
// plan-lint: begin step path
pub fn step() {
    // a comment mentioning vec! must not fire
    let _m = Matrix::zeros(1, 1); // seeded violation
    let _w: Vec<f32> = Vec::with_capacity(4); // plan-lint: allow-alloc (reference kernels)
}
// plan-lint: end step path
"#,
    );
    // Seed 3 (no-unwrap anywhere): checkpoint unwrap INSIDE #[cfg(test)]
    // still fires — the rule has no test exemption there.
    write_fixture(
        &root,
        "crates/nn/src/checkpoint.rs",
        "#[cfg(test)]\nmod tests {\n    fn t() {\n        let v: Option<u8> = Some(1);\n        let _ = v.expect(\"seeded\");\n    }\n}\n",
    );
    write_fixture(
        &root,
        "crates/core/src/lib.rs",
        "#![forbid(unsafe_code)]\npub mod trainer;\n",
    );
    // Seed 4 (determinism): SystemTime in the trainer; the mention in a
    // generator.rs comment is a decoy.
    write_fixture(
        &root,
        "crates/core/src/trainer.rs",
        "pub fn step() {\n    let _t = std::time::SystemTime::now();\n}\n",
    );
    write_fixture(
        &root,
        "crates/core/src/generator.rs",
        "// SystemTime in a comment is fine\npub fn g() {}\n",
    );
    write_fixture(&root, "crates/core/src/generate.rs", CLEAN_FILE);
    // Seed 6 (determinism/HashMap): HashMap in checkpoint code.
    write_fixture(
        &root,
        "crates/core/src/checkpoint.rs",
        "use std::collections::HashMap;\npub fn save(_m: &HashMap<String, f32>) {}\n",
    );
    // Serve request path. Seed 7 (no-unwrap): a handler unwrap in
    // server.rs; the poison-recovery `unwrap_or_else` is a no-unwrap
    // decoy that must not fire there — but server.rs is also a
    // facade-migrated file, so the same `std::sync::Mutex` import and
    // `.lock().unwrap_or_else` ARE seeded `sync-discipline` violations
    // (the real serve code routes both through `gendt_sync` now).
    write_fixture(
        &root,
        "crates/serve/src/lib.rs",
        "#![forbid(unsafe_code)]\npub mod server;\n",
    );
    write_fixture(&root, "crates/serve/src/http.rs", CLEAN_FILE);
    write_fixture(&root, "crates/serve/src/scheduler.rs", CLEAN_FILE);
    // Seed 14 (trace-propagation): this same server.rs never references
    // `TRACE_HEADER` outside tests — the comment mention and the
    // in-test use below are decoys that must not satisfy the rule.
    write_fixture(
        &root,
        "crates/serve/src/server.rs",
        "// a comment naming TRACE_HEADER must not satisfy trace-propagation\nuse std::sync::Mutex;\npub fn handle(m: &Mutex<u8>) -> u8 {\n    let held = *m.lock().unwrap_or_else(|poisoned| poisoned.into_inner());\n    let v: Option<u8> = Some(held);\n    v.unwrap() // seeded violation\n}\n#[cfg(test)]\nmod tests {\n    const TRACE_HEADER: &str = \"Gendt-Trace-Id\";\n    fn exempt() -> &'static str {\n        TRACE_HEADER\n    }\n}\n",
    );
    // The router fixture DOES propagate the trace header (outside
    // tests), so trace-propagation must stay quiet on it.
    write_fixture(
        &root,
        "crates/fleet/src/router.rs",
        "pub const TRACE_HEADER: &str = \"Gendt-Trace-Id\";\npub fn propagate(headers: &mut Vec<(String, String)>, id: u64) {\n    headers.push((TRACE_HEADER.to_string(), format!(\"{id:016x}\")));\n}\n",
    );
    // Seed 8 (determinism): a wall clock in batch assembly would make a
    // served response depend on arrival timing — must fire.
    write_fixture(
        &root,
        "crates/serve/src/batch.rs",
        "pub fn assemble() {\n    let _t = std::time::Instant::now();\n}\n",
    );
    // Seed 10 (error-taxonomy): a stringly-typed Result AND a raw panic!
    // in the registry (request path). The `Vec<(String, String)>` header
    // type and the `IoResult<` prefix are decoys that must not fire.
    write_fixture(
        &root,
        "crates/serve/src/registry.rs",
        r#"
pub type IoResult<T> = std::result::Result<T, std::io::Error>;
pub fn headers() -> Vec<(String, String)> {
    Vec::new()
}
pub fn scan() -> Result<Vec<u8>, String> {
    panic!("seeded violation")
}
"#,
    );
    // Error-taxonomy decoys: the violating tokens inside #[cfg(test)],
    // comments, and strings are all exempt.
    write_fixture(
        &root,
        "crates/serve/src/api.rs",
        r#"
// a comment mentioning Result<T, String> and panic! must not fire
pub fn encode() -> Result<u8, std::io::Error> {
    let msg = "string saying panic! and Result<u8, String> must not fire";
    let _ = msg;
    Ok(0)
}
#[cfg(test)]
mod tests {
    fn exempt() -> Result<(), String> {
        panic!("panics in tests are fine")
    }
}
"#,
    );
    write_fixture(&root, "crates/serve/src/bin/gendt_serve.rs", CLEAN_FILE);
    write_fixture(&root, "crates/core/src/bin/gendt_train.rs", CLEAN_FILE);
    // Seed 12 (sync-discipline): a multi-line `use std::sync::{..}`
    // group smuggling in Mutex, and an mpsc import. The bare-Arc
    // import, the comment/string mentions, and the in-test
    // `.lock().unwrap()` are decoys that must not fire.
    write_fixture(
        &root,
        "crates/trace/src/span.rs",
        r#"
// a comment naming std::sync::Mutex must not fire
use std::sync::Arc;
use std::sync::{
    Mutex,
    OnceLock,
}; // seeded violation (Mutex)
use std::sync::mpsc::Sender; // seeded violation (mpsc)
pub fn label() -> &'static str {
    "a string naming std::sync::Condvar must not fire"
}
#[cfg(test)]
mod tests {
    fn exempt() {
        let m = super::Mutex::new(0u8);
        let _ = m.lock().unwrap();
    }
}
"#,
    );
    // Seed 13 (atomic-ordering): a Relaxed fetch_add with no `// sync:`
    // in its paragraph, and an Acquire whose only justification sits in
    // a DIFFERENT paragraph (blank line between — must not count). The
    // justified Relaxed, the SeqCst, the comment mention, and the
    // in-test load are decoys that must not fire.
    write_fixture(
        &root,
        "crates/serve/src/metrics.rs",
        r#"
use gendt_sync::atomic::{AtomicU64, Ordering};

pub fn tick(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed); // seeded violation
}

pub fn scrape(c: &AtomicU64) -> u64 {
    // sync: monotonic counter scrape; no ordering needed.
    c.load(Ordering::Relaxed)
}

// sync: a justification in a different paragraph must not count.

pub fn far(c: &AtomicU64) -> u64 {
    c.load(Ordering::Acquire) // seeded violation
}

// a comment naming Ordering::Relaxed must not fire
pub fn strict(c: &AtomicU64) -> u64 {
    c.load(Ordering::SeqCst)
}

#[cfg(test)]
mod tests {
    fn exempt(c: &super::AtomicU64) {
        let _ = c.load(super::Ordering::Relaxed);
    }
}
"#,
    );
    // Remaining facade-migrated files, clean.
    write_fixture(&root, "crates/serve/src/cache.rs", CLEAN_FILE);
    write_fixture(&root, "crates/serve/src/bin/gendt_loadgen.rs", CLEAN_FILE);
    write_fixture(&root, "crates/trace/src/lib.rs", CLEAN_FILE);
    write_fixture(&root, "crates/trace/src/telemetry.rs", CLEAN_FILE);
    write_fixture(&root, "crates/trace/src/oplog.rs", CLEAN_FILE);
    write_fixture(&root, "crates/faults/src/inject.rs", CLEAN_FILE);
    // Seed 9 (no-prints): a bare println! in a telemetry-routed file;
    // prints in comments, strings, and #[cfg(test)] are decoys.
    write_fixture(
        &root,
        "crates/eval/src/main.rs",
        r#"
// a comment saying println! must not fire
pub fn report() {
    let msg = "string saying eprintln! must not fire";
    let _ = msg;
    println!("seeded violation");
}
#[cfg(test)]
mod tests {
    fn exempt() {
        eprintln!("prints in tests are fine");
    }
}
"#,
    );
    write_fixture(&root, "crates/eval/src/harness.rs", CLEAN_FILE);
    write_fixture(&root, "crates/bench/src/lib.rs", CLEAN_FILE);
    write_fixture(&root, "crates/bench/src/bin/bench_kernels.rs", CLEAN_FILE);
    FixtureDir(root)
}

#[test]
fn lint_detects_seeded_violations_and_ignores_decoys() {
    let fixture = seeded_fixture();
    let violations = lint::run(&fixture.0);
    let has = |rule: &str, file: &str| violations.iter().any(|v| v.rule == rule && v.file == file);

    assert!(
        has("unsafe-forbid", "crates/nn/src/lib.rs"),
        "missing forbid not caught"
    );
    assert!(
        has("no-unwrap", "crates/nn/src/graph.rs"),
        "seeded unwrap not caught"
    );
    assert!(
        has("no-unwrap", "crates/nn/src/checkpoint.rs"),
        "in-test checkpoint expect not caught"
    );
    assert!(
        has("determinism", "crates/core/src/trainer.rs"),
        "SystemTime not caught"
    );
    assert!(
        has("determinism", "crates/core/src/checkpoint.rs"),
        "HashMap not caught"
    );
    assert!(
        violations
            .iter()
            .any(|v| v.rule == "fused-bitwise" && v.message.contains("sum_row_groups")),
        "missing bitwise test not caught"
    );
    assert!(
        has("no-unwrap", "crates/serve/src/server.rs"),
        "seeded handler unwrap not caught"
    );
    assert!(
        has("determinism", "crates/serve/src/batch.rs"),
        "Instant::now in batch assembly not caught"
    );
    assert!(
        has("no-prints", "crates/eval/src/main.rs"),
        "seeded bare println! not caught"
    );
    assert!(
        violations.iter().any(|v| v.rule == "error-taxonomy"
            && v.file == "crates/serve/src/registry.rs"
            && v.message.contains("Result<_, String>")),
        "seeded stringly Result not caught"
    );
    assert!(
        violations.iter().any(|v| v.rule == "error-taxonomy"
            && v.file == "crates/serve/src/registry.rs"
            && v.message.contains("panic!")),
        "seeded raw panic! not caught"
    );

    // Decoys must stay quiet.
    let graph_unwraps: Vec<_> = violations
        .iter()
        .filter(|v| v.rule == "no-unwrap" && v.file == "crates/nn/src/graph.rs")
        .collect();
    assert_eq!(
        graph_unwraps.len(),
        1,
        "comment/string/test unwraps must not fire: {graph_unwraps:?}"
    );
    assert_eq!(
        graph_unwraps[0].line, 7,
        "violation should point at the seeded line"
    );
    assert!(
        !has("determinism", "crates/core/src/generator.rs"),
        "SystemTime inside a comment must not fire"
    );
    let server_unwraps: Vec<_> = violations
        .iter()
        .filter(|v| v.rule == "no-unwrap" && v.file == "crates/serve/src/server.rs")
        .collect();
    assert_eq!(
        server_unwraps.len(),
        1,
        "poison-recovery unwrap_or_else must not fire: {server_unwraps:?}"
    );
    assert!(
        !violations
            .iter()
            .any(|v| v.rule == "fused-bitwise" && v.message.contains("lstm_cell")),
        "covered fused ops must not fire"
    );
    let print_hits: Vec<_> = violations
        .iter()
        .filter(|v| v.rule == "no-prints")
        .collect();
    assert_eq!(
        print_hits.len(),
        1,
        "comment/string/test prints must not fire: {print_hits:?}"
    );
    assert_eq!(
        print_hits[0].line, 6,
        "violation should point at the seeded print line"
    );
    let taxonomy_hits: Vec<_> = violations
        .iter()
        .filter(|v| v.rule == "error-taxonomy")
        .collect();
    assert_eq!(
        taxonomy_hits.len(),
        2,
        "type-alias/tuple/comment/string/test decoys must not fire: {taxonomy_hits:?}"
    );
    assert!(
        taxonomy_hits
            .iter()
            .all(|v| v.file == "crates/serve/src/registry.rs"),
        "only the seeded registry file may fire: {taxonomy_hits:?}"
    );
    let sync_hits: Vec<_> = violations
        .iter()
        .filter(|v| v.rule == "sync-discipline")
        .collect();
    assert_eq!(
        sync_hits.len(),
        4,
        "expected the two span.rs imports plus the server.rs import and \
         poison-unwrap; Arc import, comment/string mentions, and in-test \
         lock().unwrap() must not fire: {sync_hits:?}"
    );
    assert_eq!(
        sync_hits
            .iter()
            .filter(|v| v.file == "crates/trace/src/span.rs")
            .count(),
        2,
        "span.rs should fire on the Mutex group import and the mpsc \
         import only: {sync_hits:?}"
    );
    assert_eq!(
        sync_hits
            .iter()
            .filter(|v| v.file == "crates/serve/src/server.rs")
            .count(),
        2,
        "server.rs should fire on the Mutex import and the \
         .lock().unwrap_or_else poison-unwrap: {sync_hits:?}"
    );
    let ordering_hits: Vec<_> = violations
        .iter()
        .filter(|v| v.rule == "atomic-ordering")
        .collect();
    assert_eq!(
        ordering_hits.len(),
        2,
        "justified/SeqCst/comment/in-test orderings must not fire: \
         {ordering_hits:?}"
    );
    assert!(
        ordering_hits
            .iter()
            .all(|v| v.file == "crates/serve/src/metrics.rs"),
        "only the seeded metrics file may fire: {ordering_hits:?}"
    );
    assert!(
        ordering_hits
            .iter()
            .any(|v| v.line == 5 && v.message.contains("Ordering::Relaxed")),
        "unjustified Relaxed fetch_add not caught at its line: {ordering_hits:?}"
    );
    assert!(
        ordering_hits
            .iter()
            .any(|v| v.message.contains("Ordering::Acquire")),
        "cross-paragraph justification must not cover the Acquire load: \
         {ordering_hits:?}"
    );
    let trace_prop_hits: Vec<_> = violations
        .iter()
        .filter(|v| v.rule == "trace-propagation")
        .collect();
    assert_eq!(
        trace_prop_hits.len(),
        1,
        "comment/in-test TRACE_HEADER mentions must not satisfy the \
         rule, and the propagating router must not fire: {trace_prop_hits:?}"
    );
    assert_eq!(
        trace_prop_hits[0].file, "crates/serve/src/server.rs",
        "the handler file that drops Gendt-Trace-Id should fire"
    );
    let plan_hits: Vec<_> = violations
        .iter()
        .filter(|v| v.rule == "plan-no-alloc")
        .collect();
    assert_eq!(
        plan_hits.len(),
        1,
        "outside-marker/comment/allow-alloc decoys must not fire: {plan_hits:?}"
    );
    assert_eq!(
        plan_hits[0].line, 8,
        "violation should point at the seeded allocation line"
    );
    assert!(
        plan_hits[0].message.contains("Matrix::zeros("),
        "violation should name the allocating token: {}",
        plan_hits[0].message
    );
}

#[test]
fn lint_is_clean_on_this_repo() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let violations = lint::run(&root);
    assert!(
        violations.is_empty(),
        "the repo must lint clean:\n{}",
        violations
            .iter()
            .map(|v| format!("  {v}\n"))
            .collect::<String>()
    );
}
