//! # gendt-audit — correctness tooling for the GenDT workspace
//!
//! Hand-written fused autograd ops and blocked kernels are only as
//! trustworthy as the checks that watch them: a silently wrong backward
//! or a NaN born in the Gaussian head corrupts every fidelity table and
//! the MC-dropout uncertainty measure with no visible failure. This
//! crate is the verification layer that keeps every future op/kernel PR
//! honest:
//!
//! * [`tape`] — walks a recorded [`gendt_nn::Graph`] and re-derives
//!   every node's shape from [`gendt_nn::Op`] semantics via an
//!   **exhaustive** `match`; reports shape mismatches (errors) plus dead
//!   and unreachable-from-loss nodes (warnings). Adding an `Op` variant
//!   without a shape rule is a compile error.
//! * [`gradcheck`] — checks every `Op` variant's backward against
//!   central finite differences; the variant→case mapping is another
//!   exhaustive `match`, so a new op without a gradcheck case also
//!   fails to compile.
//! * [`zoo`] — a single small graph that records every `Op` variant,
//!   used as the coverage witness for both matches above.
//! * [`lint`] — repo-invariant source lint (plain file walking, no
//!   external deps): `#![forbid(unsafe_code)]` in every crate root, no
//!   `unwrap()`/`expect()` in the hot autograd/training files outside
//!   `#[cfg(test)]`, no nondeterminism sources in training paths, a
//!   bitwise-equivalence test for every fused op, and the `GendtError`
//!   taxonomy (no `Result<_, String>`, no raw `panic!`) in the serve
//!   request path and the trainer checkpoint path.
//! * [`chaos`] — drives a real in-process server and a real trainer
//!   under seeded [`gendt_faults`] schedules; asserts typed shed
//!   envelopes, retry absorption, crash-safe checkpoints, and bitwise
//!   recovery once the faults clear.
//! * [`sync_check`] — explores thousands of thread interleavings of the
//!   real serve scheduler/registry/cache state machines through the
//!   `gendt-sync` facade and the vendored `interleave` model checker,
//!   plus seeded-bug fixtures proving each detector (deadlock,
//!   lock-order cycle, lost update, mixed-version batch) actually fires
//!   and replays from its printed token.
//!
//! The `GENDT_SANITIZE=1` runtime mode itself lives in
//! [`gendt_nn::sanitize`]; this crate's binary drives a sanitized smoke
//! train/generate step (`cargo run -p gendt-audit -- smoke`). All four
//! checks run from `scripts/ci.sh`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod gradcheck;
pub mod lint;
pub mod sync_check;
pub mod tape;
pub mod zoo;
