//! Chaos gate: drive a **real** server and a **real** trainer under
//! seeded fault schedules and assert the resilience contract end to end.
//!
//! The unit tests in `gendt-faults`, `gendt-serve`, and `gendt`'s
//! checkpoint module each pin one mechanism in isolation; this gate is
//! the integration witness CI runs (`gendt-audit -- chaos`):
//!
//! * **Serving under faults** — an in-process server takes a baseline
//!   `/v1/generate` response, then faults are armed one schedule at a
//!   time: `io_err@serve.batch` must surface as typed `unavailable`
//!   envelopes with `Retry-After` (never a panic or a hung connection),
//!   `io_err@registry.scan` must be absorbed by `/v1/reload`'s bounded
//!   backoff retries, and `drop@http.accept` must look like an ordinary
//!   transient to a retrying client. Once the schedules drain, the same
//!   request must reproduce the baseline **bitwise**, and the server
//!   must still drain gracefully.
//! * **Checkpointing under faults** — a trained model saves a baseline
//!   checkpoint; an injected `io_err@checkpoint.write` must fail the
//!   *next* save cleanly while `latest` keeps resolving to the intact
//!   baseline (bitwise-identical on resume), and a truncated newest
//!   checkpoint must fall back to the previous loadable one.
//!
//! Faults are armed via [`gendt_faults::set_spec`] (process-global), so
//! this gate owns the fault plan for its whole run and always clears it
//! on exit, even on failure.

use gendt_faults::{clear_faults, injected_count, retry_with_backoff, set_spec, GendtError};
use gendt_serve::api::ErrorEnvelope;
use gendt_serve::http::{http_request, http_request_full};
use gendt_serve::{serve, ServerCfg};
use std::path::PathBuf;

/// Clears the process-global fault plan when dropped, so a failing
/// assertion can't leak armed faults into later gates.
struct FaultPlanGuard;

impl Drop for FaultPlanGuard {
    fn drop(&mut self) {
        clear_faults();
    }
}

/// Run both chaos legs; returns `true` when the resilience contract
/// held everywhere.
pub fn run() -> bool {
    println!("== chaos: real server + trainer under seeded fault schedules ==");
    let _guard = FaultPlanGuard;
    let mut ok = true;
    match serve_leg() {
        Ok(()) => println!("  serve leg: clean"),
        Err(e) => {
            println!("  [FAIL] serve leg: {e}");
            ok = false;
        }
    }
    match trainer_leg() {
        Ok(()) => println!("  trainer leg: clean"),
        Err(e) => {
            println!("  [FAIL] trainer leg: {e}");
            ok = false;
        }
    }
    println!("chaos: {}", if ok { "clean" } else { "FAILED" });
    ok
}

fn check(cond: bool, what: &str) -> Result<(), GendtError> {
    if cond {
        Ok(())
    } else {
        Err(GendtError::internal(what))
    }
}

fn generate_body() -> String {
    // Hand-rolled JSON keeps this independent of request-type changes;
    // the serde round-trip is pinned by gendt-serve's own tests.
    "{\"model\":\"demo\",\"scenario\":\"walk\",\"duration_s\":30.0,\
     \"start_x\":0.0,\"start_y\":0.0,\"traj_seed\":3,\"sample_seed\":17}"
        .to_string()
}

fn serve_leg() -> Result<(), GendtError> {
    let dir = std::env::temp_dir().join("gendt-chaos-models");
    let ckpt = dir.join("demo.json");
    if !ckpt.exists() {
        gendt_serve::demo::write_demo_model(&ckpt, 1).map_err(|e| e.wrap("demo model"))?;
    }
    let cfg = ServerCfg::builder(dir)
        .workers(1)
        .build()
        .map_err(|e| e.wrap("chaos server config"))?;
    let handle = serve(cfg).map_err(|e| e.wrap("chaos server start"))?;
    let addr = handle.addr.to_string();
    clear_faults();

    // Baseline: the answer every post-fault request must reproduce.
    let body = generate_body();
    let base = http_request_full(&addr, "POST", "/v1/generate", &[], Some(&body))
        .map_err(|e| GendtError::unavailable(format!("baseline generate: {e}")))?;
    check(base.status == 200, "baseline generate did not return 200")?;

    // Schedule 1: the next two generation batches abort with injected
    // io errors. Each must answer a typed retryable `unavailable`
    // envelope with Retry-After — not a panic, not a hang.
    set_spec("io_err@serve.batch:n=2", 11)?;
    for attempt in 0..2 {
        let resp = http_request_full(&addr, "POST", "/v1/generate", &[], Some(&body))
            .map_err(|e| GendtError::unavailable(format!("faulted generate {attempt}: {e}")))?;
        check(resp.status == 503, "faulted batch must answer 503")?;
        check(
            resp.header("retry-after") == Some("1"),
            "shed response must carry Retry-After",
        )?;
        let env: ErrorEnvelope = serde_json::from_str(&resp.body)
            .map_err(|e| GendtError::internal(format!("shed body is not an envelope: {e}")))?;
        check(env.code == "unavailable", "shed envelope code")?;
        check(env.retryable, "injected io errors must be retryable")?;
    }
    let after = http_request_full(&addr, "POST", "/v1/generate", &[], Some(&body))
        .map_err(|e| GendtError::unavailable(format!("post-fault generate: {e}")))?;
    check(
        after.status == 200,
        "request after fault drain must succeed",
    )?;
    check(
        after.body == base.body,
        "post-fault response must be bitwise-identical to the baseline",
    )?;

    // Schedule 2: one injected scan failure; /v1/reload's bounded
    // backoff retries must absorb it without surfacing an error.
    let injected_before = injected_count();
    set_spec("io_err@registry.scan:n=1", 12)?;
    let (status, reload_body) = http_request(&addr, "POST", "/v1/reload", None)
        .map_err(|e| GendtError::unavailable(format!("reload: {e}")))?;
    check(
        status == 200,
        "reload must retry through a single injected scan failure",
    )?;
    check(
        reload_body.contains("demo"),
        "reload answer must list the model",
    )?;
    check(
        injected_count() > injected_before,
        "the scan fault was never actually injected",
    )?;

    // Schedule 3: the acceptor drops the next connection on the floor.
    // To a client with jittered-backoff retries that is an ordinary
    // transient; the retry loop must land on the healthy server.
    set_spec("drop@http.accept:n=1", 13)?;
    let (status, health) = retry_with_backoff(
        5,
        40,
        4,
        21,
        || {
            http_request(&addr, "GET", "/v1/healthz", None)
                .map_err(|e| GendtError::unavailable(format!("healthz: {e}")))
        },
        |e| e.retryable(),
    )
    .map_err(|e| e.wrap("healthz never recovered from a dropped connection"))?;
    check(
        status == 200 && health == "ok\n",
        "healthz after the dropped connection",
    )?;

    // All schedules drained: same request, same bits, graceful drain.
    clear_faults();
    let final_resp = http_request_full(&addr, "POST", "/v1/generate", &[], Some(&body))
        .map_err(|e| GendtError::unavailable(format!("final generate: {e}")))?;
    check(final_resp.status == 200, "final generate")?;
    check(
        final_resp.body == base.body,
        "response after all faults cleared must match the baseline bitwise",
    )?;
    let (status, drain) = http_request(&addr, "POST", "/v1/shutdown", None)
        .map_err(|e| GendtError::unavailable(format!("shutdown: {e}")))?;
    check(
        status == 200 && drain == "draining\n",
        "graceful drain must acknowledge",
    )?;
    handle.join();
    Ok(())
}

/// A CI-sized trained model: tiny config, one synthetic run's window
/// pool, one optimizer step — enough that checkpoints carry real Adam
/// state and RNG positions.
fn tiny_trained_model() -> Result<gendt::GenDt, GendtError> {
    use gendt_data::{dataset_a, extract, windows, BuildCfg, ContextCfg, Kpi};

    let mut cfg = gendt::GenDtCfg::fast(4, 51);
    cfg.hidden = 8;
    cfg.resgen_hidden = 8;
    cfg.disc_hidden = 6;
    cfg.window.len = 8;
    cfg.window.stride = 8;
    cfg.window.max_cells = 2;
    cfg.batch_size = 4;
    let ds = dataset_a(&BuildCfg::quick(52));
    let run = &ds.runs[0];
    let ctx = extract(
        &ds.world,
        &ds.deployment,
        &run.traj,
        &ContextCfg {
            max_cells: 2,
            ..ContextCfg::default()
        },
    );
    let pool = windows(run, &ctx, &Kpi::DATASET_A, &cfg.window);
    check(!pool.is_empty(), "synthetic dataset produced no windows")?;
    let mut model = gendt::GenDt::new(cfg);
    let trace = model.train_step(&pool);
    check(trace.mse.is_finite(), "training step diverged")?;
    Ok(model)
}

fn trainer_leg() -> Result<(), GendtError> {
    use gendt::{resume_latest, save_train, save_train_checkpoint};

    let model = tiny_trained_model()?;
    let dir: PathBuf = std::env::temp_dir().join("gendt-chaos-ckpt");
    let _ = std::fs::remove_dir_all(&dir);
    clear_faults();

    // Baseline save; its serialized form is the bitwise reference.
    save_train_checkpoint(&model, 1, &dir)
        .map_err(|e| GendtError::internal(format!("baseline save: {e}")))?;
    let baseline = serde_json::to_string(&save_train(&model, 1))
        .map_err(|e| GendtError::internal(format!("baseline encode: {e}")))?;

    // An injected write fault must fail the save cleanly — and leave
    // `latest` resolving to the intact baseline, bitwise.
    set_spec("io_err@checkpoint.write:n=1", 31)?;
    check(
        save_train_checkpoint(&model, 2, &dir).is_err(),
        "the injected write fault never surfaced",
    )?;
    clear_faults();
    let (resumed, step, _path) = resume_latest(&dir)
        .map_err(|e| GendtError::internal(format!("resume after faulted save: {e}")))?;
    check(step == 1, "latest must still point at the pre-fault step")?;
    let resumed_json = serde_json::to_string(&save_train(&resumed, 1))
        .map_err(|e| GendtError::internal(format!("resumed encode: {e}")))?;
    check(
        resumed_json == baseline,
        "resumed state must be bitwise-identical to the pre-fault checkpoint",
    )?;

    // A truncated newest checkpoint (torn write, no fsync) must fall
    // back to the previous loadable one instead of failing the resume.
    let newest = save_train_checkpoint(&model, 2, &dir)
        .map_err(|e| GendtError::internal(format!("clean save: {e}")))?;
    let bytes = std::fs::read(&newest).map_err(GendtError::from)?;
    std::fs::write(&newest, &bytes[..bytes.len() / 2]).map_err(GendtError::from)?;
    let (_fallback, step, path) = resume_latest(&dir)
        .map_err(|e| GendtError::internal(format!("resume with torn newest: {e}")))?;
    check(
        step == 1,
        "resume must fall back past the torn checkpoint to step 1",
    )?;
    check(
        path.file_name()
            .is_some_and(|n| n != newest.file_name().unwrap_or_default()),
        "fallback must not claim to have loaded the torn file",
    )?;
    Ok(())
}
