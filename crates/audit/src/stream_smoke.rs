//! `gendt-audit stream-smoke` — end-to-end gate for the `/v1/stream`
//! session surface (DESIGN.md §15).
//!
//! Stands up a real single-node server over a demo checkpoint and pins
//! the streaming API's whole contract:
//!
//! 1. **Parity, interpreted** — a session opened with `max_windows`
//!    budgets and continued to completion must concatenate, chunk by
//!    chunk across responses, to a series bitwise-identical to the
//!    one-shot `/v1/generate` answer for the same spec and seed.
//! 2. **Parity, compiled plans** — the same check with `GENDT_PLAN=1`
//!    set before the server loads its models, and the two modes'
//!    concatenations bitwise-equal to each other: compiled execution
//!    must not perturb streamed bytes any more than one-shot ones.
//! 3. **Deadline mid-stream** — a request carrying `Deadline-Ms: 1`
//!    ends with a `deadline` trailer and an open session; a follow-up
//!    continuation finishes the series, and the union of both
//!    responses' chunks still matches the one-shot bitwise.
//! 4. **Drain with open sessions** — after `POST /v1/shutdown`, a
//!    paused session's continuation is refused with a typed 503 (the
//!    drain shed its state; nothing hangs, nothing panics).
//!
//! Every window of every checked series is compared exactly; a single
//! flipped bit anywhere fails the gate.

use gendt_faults::GendtError;
use gendt_serve::api::{
    stream_reason, GenerateRequest, GenerateResponse, StreamChunk, StreamTrailer, SESSION_HEADER,
};
use gendt_serve::http::{http_request_full, HttpResponse};
use gendt_serve::{serve, ServerCfg, ServerHandle};
use std::path::PathBuf;

/// Sample seed shared by every run; parity only holds within a seed.
const SEED: u64 = 11;

/// Run the gate; prints its findings and returns overall success.
pub fn run() -> bool {
    println!("== stream-smoke: /v1/stream parity, deadline, drain ==");
    let ok = match smoke() {
        Ok(()) => true,
        Err(e) => {
            println!("  [FAIL] {e}");
            false
        }
    };
    // Never leak plan mode into the gates that follow.
    std::env::remove_var("GENDT_PLAN");
    println!("stream-smoke: {}", if ok { "PASS" } else { "FAILED" });
    ok
}

fn fail(msg: impl Into<String>) -> GendtError {
    GendtError::internal(msg.into())
}

fn http(
    addr: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: Option<&str>,
) -> Result<HttpResponse, GendtError> {
    http_request_full(addr, "POST", path, headers, body)
        .map_err(|e| fail(format!("POST {path}: {e}")))
}

fn model_dir() -> Result<PathBuf, GendtError> {
    let dir = std::env::temp_dir().join("gendt-audit-stream-smoke");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir)
        .map_err(|e| fail(format!("create model dir {}: {e}", dir.display())))?;
    gendt_serve::demo::write_demo_model(&dir.join("demo.json"), 1)?;
    Ok(dir)
}

fn start_server(dir: &std::path::Path) -> Result<(ServerHandle, String), GendtError> {
    let cfg = ServerCfg::builder(dir.to_path_buf())
        .workers(1)
        .session_cap(64)
        .build()?;
    let handle = serve(cfg)?;
    let addr = handle.addr.to_string();
    Ok((handle, addr))
}

fn open_body(chunk_windows: usize, max_windows: usize) -> String {
    format!(
        "{{\"model\":\"demo\",\"scenario\":\"walk\",\"duration_s\":30.0,\
         \"start_x\":0.0,\"start_y\":0.0,\"traj_seed\":3,\"sample_seed\":{SEED},\
         \"chunk_windows\":{chunk_windows},\"max_windows\":{max_windows}}}"
    )
}

fn one_shot(addr: &str) -> Result<Vec<Vec<f64>>, GendtError> {
    let body = serde_json::to_string(&GenerateRequest {
        model: "demo".to_string(),
        scenario: "walk".to_string(),
        duration_s: 30.0,
        start_x: 0.0,
        start_y: 0.0,
        traj_seed: 3,
        sample_seed: SEED,
    })
    .map_err(|e| fail(format!("encode one-shot request: {e}")))?;
    let resp = http(addr, "/v1/generate", &[], Some(&body))?;
    if resp.status != 200 {
        return Err(fail(format!(
            "one-shot status {}: {}",
            resp.status, resp.body
        )));
    }
    let decoded: GenerateResponse = serde_json::from_str(&resp.body)
        .map_err(|e| fail(format!("decode one-shot response: {e}")))?;
    Ok(decoded.series.series)
}

/// Split an NDJSON stream body into its chunk lines and final trailer.
fn parse_stream(resp: &HttpResponse) -> Result<(Vec<StreamChunk>, StreamTrailer), GendtError> {
    if resp.status != 200 {
        return Err(fail(format!(
            "stream status {}: {}",
            resp.status, resp.body
        )));
    }
    if resp.header("transfer-encoding") != Some("chunked") {
        return Err(fail("stream response is not chunked transfer encoding"));
    }
    let lines: Vec<&str> = resp.body.lines().filter(|l| !l.is_empty()).collect();
    let Some((last, chunks)) = lines.split_last() else {
        return Err(fail("empty stream body (no trailer line)"));
    };
    let trailer: StreamTrailer = serde_json::from_str(last)
        .map_err(|e| fail(format!("last stream line is not a trailer: {e}")))?;
    let chunks = chunks
        .iter()
        .map(|l| serde_json::from_str::<StreamChunk>(l))
        .collect::<Result<Vec<_>, _>>()
        .map_err(|e| fail(format!("bad chunk line: {e}")))?;
    Ok((chunks, trailer))
}

fn concat_into(acc: &mut Vec<Vec<f64>>, chunks: &[StreamChunk]) {
    for c in chunks {
        if acc.is_empty() {
            acc.resize(c.series.series.len(), Vec::new());
        }
        for (dst, src) in acc.iter_mut().zip(c.series.series.iter()) {
            dst.extend_from_slice(src);
        }
    }
}

/// Continue `sid` until its trailer reports done, appending every
/// chunk to `acc`. Bounded so a server bug cannot hang the gate.
fn drain_session(
    addr: &str,
    sid: &str,
    acc: &mut Vec<Vec<f64>>,
    per_response: usize,
) -> Result<StreamTrailer, GendtError> {
    for _ in 0..256 {
        let body = format!("{{\"session\":{sid:?},\"max_windows\":{per_response}}}");
        let resp = http(addr, "/v1/stream", &[], Some(&body))?;
        let (chunks, trailer) = parse_stream(&resp)?;
        concat_into(acc, &chunks);
        if trailer.done {
            return Ok(trailer);
        }
        if trailer.reason != stream_reason::PAUSED {
            return Err(fail(format!(
                "continuation ended with reason {:?}, not paused/complete",
                trailer.reason
            )));
        }
    }
    Err(fail("session never completed after 256 continuations"))
}

/// One full parity pass against a fresh server: open with a small
/// budget, continue to completion, and require the concatenation to be
/// bitwise-identical to the one-shot series. Returns the concatenation
/// so the caller can compare across execution modes.
fn parity_pass(label: &str, dir: &std::path::Path) -> Result<Vec<Vec<f64>>, GendtError> {
    let (handle, addr) = start_server(dir)?;
    let reference = one_shot(&addr)?;

    let resp = http(&addr, "/v1/stream", &[], Some(&open_body(1, 2)))?;
    let sid = resp
        .header(SESSION_HEADER)
        .ok_or_else(|| fail("stream response is missing the session id header"))?
        .to_string();
    let (chunks, trailer) = parse_stream(&resp)?;
    let mut cat: Vec<Vec<f64>> = Vec::new();
    concat_into(&mut cat, &chunks);
    let trailer = if trailer.done {
        trailer
    } else {
        if trailer.reason != stream_reason::PAUSED {
            return Err(fail(format!("budgeted open ended {:?}", trailer.reason)));
        }
        drain_session(&addr, &sid, &mut cat, 3)?
    };
    if trailer.reason != stream_reason::COMPLETE {
        return Err(fail(format!("final trailer reason {:?}", trailer.reason)));
    }
    if cat != reference {
        return Err(fail(format!(
            "{label}: streamed concatenation diverged from the one-shot series"
        )));
    }
    println!(
        "  {label}: {} windows streamed across continuations, concat bitwise-equal to one-shot",
        trailer.total_windows
    );
    handle.shutdown();
    Ok(cat)
}

/// Deadline expiry mid-stream: `deadline` trailer, surviving session,
/// and parity across the expired response plus its continuation.
fn deadline_pass(dir: &std::path::Path) -> Result<(), GendtError> {
    let (handle, addr) = start_server(dir)?;
    let reference = one_shot(&addr)?;

    let resp = http(
        &addr,
        "/v1/stream",
        &[("Deadline-Ms", "1")],
        Some(&open_body(1, 0)),
    )?;
    let sid = resp
        .header(SESSION_HEADER)
        .ok_or_else(|| fail("deadline stream is missing the session id header"))?
        .to_string();
    let (chunks, trailer) = parse_stream(&resp)?;
    if trailer.reason != stream_reason::DEADLINE || trailer.done {
        return Err(fail(format!(
            "expected a deadline trailer with the session kept open, got reason {:?} done {}",
            trailer.reason, trailer.done
        )));
    }
    let mut cat: Vec<Vec<f64>> = Vec::new();
    concat_into(&mut cat, &chunks);
    // The session must have survived the expiry: continue it (without a
    // deadline) and the union of responses must still match one-shot.
    let done = drain_session(&addr, &sid, &mut cat, 0)?;
    if done.reason != stream_reason::COMPLETE {
        return Err(fail(format!(
            "post-deadline continuation ended {:?}",
            done.reason
        )));
    }
    if cat != reference {
        return Err(fail(
            "deadline: expired-response chunks plus continuation diverged from one-shot",
        ));
    }
    println!(
        "  deadline: expired after {} chunk(s), session survived, continuation completed bitwise-equal",
        chunks.len()
    );
    handle.shutdown();
    Ok(())
}

/// Drain with open sessions: a paused session's state is shed and its
/// continuation refused with a typed 503 instead of hanging.
fn drain_pass(dir: &std::path::Path) -> Result<(), GendtError> {
    let (handle, addr) = start_server(dir)?;
    let resp = http(&addr, "/v1/stream", &[], Some(&open_body(1, 1)))?;
    let sid = resp
        .header(SESSION_HEADER)
        .ok_or_else(|| fail("drain stream is missing the session id header"))?
        .to_string();
    let (_, trailer) = parse_stream(&resp)?;
    if trailer.reason != stream_reason::PAUSED {
        return Err(fail(format!("drain setup trailer {:?}", trailer.reason)));
    }

    let drain = http(&addr, "/v1/shutdown", &[], None)?;
    if drain.status != 200 {
        return Err(fail(format!("shutdown returned {}", drain.status)));
    }
    let cont = format!("{{\"session\":{sid:?},\"max_windows\":0}}");
    let refused = http(&addr, "/v1/stream", &[], Some(&cont))?;
    if refused.status != 503 {
        return Err(fail(format!(
            "draining continuation returned {} ({}), want a typed 503",
            refused.status, refused.body
        )));
    }
    println!("  drain: open session shed, continuation refused with typed 503");
    handle.shutdown();
    Ok(())
}

fn smoke() -> Result<(), GendtError> {
    let dir = model_dir()?;

    std::env::remove_var("GENDT_PLAN");
    let interpreted = parity_pass("interpreted", &dir)?;

    std::env::set_var("GENDT_PLAN", "1");
    let planned = parity_pass("compiled-plan", &dir)?;
    std::env::remove_var("GENDT_PLAN");
    if interpreted != planned {
        return Err(fail(
            "compiled-plan streamed series diverged from the interpreted one",
        ));
    }
    println!("  modes: interpreted and compiled-plan streams bitwise-equal");

    deadline_pass(&dir)?;
    drain_pass(&dir)?;
    Ok(())
}
