//! A small graph that records **every** [`Op`](gendt_nn::Op) variant.
//!
//! The zoo is the coverage witness for the verifier and the gradcheck
//! harness: tests walk its tape and assert that each recorded variant
//! has a shape rule and gradcheck cases. The matrices are tiny (a few
//! rows) so the zoo is cheap enough to rebuild inside finite-difference
//! loops.
//!
//! [`Graph::noisy_renorm`] is fed from a constant input here: its
//! stop-gradient semantics (frozen noise and denominator) make the true
//! forward non-differentiable-by-FD through that path, and the dedicated
//! gradcheck case covers it with a frozen-semantics reference instead.

use gendt_nn::{Graph, Matrix, NodeId, ParamId, ParamStore, Rng};

/// Everything [`build`] returns: the parameter store, the recorded
/// graph, the loss node, and the parameter ids for gradient checks.
pub struct Zoo {
    /// Parameters the zoo graph reads.
    pub store: ParamStore,
    /// The recorded tape.
    pub graph: Graph,
    /// Scalar loss combining every branch.
    pub loss: NodeId,
    /// All registered parameter ids, in registration order.
    pub params: Vec<ParamId>,
}

/// Deterministic parameter set for the zoo (separate from [`build`] so
/// finite-difference loops can perturb values and rebuild the graph).
pub fn params(seed: u64) -> ParamStore {
    let mut rng = Rng::seed_from(seed);
    let mut store = ParamStore::new();
    store.add_xavier("w1", 4, 3, &mut rng);
    store.add_xavier("w2", 3, 4, &mut rng);
    store.add_xavier("bias", 1, 4, &mut rng);
    store.add_xavier("col", 4, 1, &mut rng);
    store.add_xavier("gates", 2, 8, &mut rng);
    store.add_xavier("c_prev", 2, 2, &mut rng);
    store
}

/// Record the zoo graph over `store`'s current parameter values.
pub fn record(store: &ParamStore) -> (Graph, NodeId) {
    let ids: Vec<ParamId> = (0..6).map(ParamId).collect();
    let (w1, w2, bias, col, gates_p, c_prev_p) = (ids[0], ids[1], ids[2], ids[3], ids[4], ids[5]);
    let mut rng = Rng::seed_from(7);
    let mut g = Graph::new();

    let x = g.param(store, w1);
    let y = g.param(store, w2);
    let mm = g.matmul(x, y); // MatMul, 4x4
    let a = g.add(mm, mm); // Add
    let s = g.sub(a, mm); // Sub
    let m = g.mul(s, mm); // Mul
    let bias_n = g.param(store, bias);
    let ar = g.add_row(m, bias_n); // AddRow
    let col_n = g.param(store, col);
    let mc = g.mul_col(ar, col_n); // MulCol
    let sc = g.scale(mc, 0.5); // Scale
    let of = g.offset(sc, 0.1); // Offset
    let sg = g.sigmoid(of); // Sigmoid
    let th = g.tanh(of); // Tanh
    let lr = g.leaky_relu(of, 0.1); // LeakyRelu
    let ex = g.exp(sg); // Exp (bounded input)
    let sp = g.softplus(of); // Softplus
    let cc = g.concat_cols(sg, th); // ConcatCols, 4x8
    let slc = g.slice_cols(cc, 2, 6); // SliceCols, 4x4
    let slr = g.slice_rows(slc, 1, 3); // SliceRows, 2x4
    let rs = g.row_sum(slr); // RowSum, 2x1
    let srg = g.sum_row_groups(slc, 2); // SumRowGroups, 2x4

    let gates_n = g.param(store, gates_p);
    let c_prev_n = g.param(store, c_prev_p);
    let lstm = g.lstm_cell(gates_n, c_prev_n, 2); // LstmCell, 2x4

    // NoisyRenorm on a constant, positive input (see module docs).
    let renorm_base = g.input(Matrix::from_vec(
        2,
        3,
        (0..6).map(|_| rng.uniform(0.5, 1.5) as f32).collect(),
    ));
    let u = Matrix::from_vec(2, 3, (0..6).map(|_| rng.normal() as f32).collect());
    let nr = g.noisy_renorm(renorm_base, 0.1, &u); // NoisyRenorm

    let aar = g.add_add_row(m, s, bias_n); // AddAddRow, 4x4
    let mask = Matrix::from_vec(4, 1, vec![1.0, 0.0, 1.0, 1.0]);
    let gscale = Matrix::from_vec(2, 1, vec![1.0, 0.5]);
    let mgm = g.masked_group_mean(slc, &mask, &gscale, 2); // MaskedGroupMean, 2x4

    let target44 = g.input(Matrix::from_vec(
        4,
        4,
        (0..16).map(|_| rng.uniform(-1.0, 1.0) as f32).collect(),
    ));
    let mse = g.mse_loss(aar, target44); // MseLoss

    let bce = g.bce_with_logits(rs, Matrix::from_vec(2, 1, vec![1.0, 0.0])); // BceWithLogits

    let slr_sp = g.softplus(slr);
    let sig_pos = g.offset(slr_sp, 0.1);
    let nll_target = Matrix::from_vec(
        2,
        4,
        (0..8).map(|_| rng.uniform(-1.0, 1.0) as f32).collect(),
    );
    let gnll = g.gaussian_nll(slr, sig_pos, nll_target); // GaussianNll

    // Scalar reductions pulling every remaining branch into the loss.
    let m_ex = g.mean(ex); // Mean
    let m_lr = g.mean(lr);
    let m_lstm = g.mean(lstm);
    let m_mgm = g.mean(mgm);
    let m_srg = g.mean(srg);
    let m_nr = g.mean(nr);
    let m_sp = g.mean(sp);
    let loss = g.weighted_sum(vec![
        (mse, 1.0),
        (bce, 0.5),
        (gnll, 0.25),
        (m_ex, 0.125),
        (m_lr, 0.125),
        (m_lstm, 0.5),
        (m_mgm, 0.25),
        (m_srg, 0.125),
        (m_nr, 0.125),
        (m_sp, 0.125),
    ]); // WeightedSum
    (g, loss)
}

/// Build the full zoo: deterministic parameters plus the recorded graph.
pub fn build() -> Zoo {
    let store = params(11);
    let (graph, loss) = record(&store);
    Zoo {
        store,
        graph,
        loss,
        params: (0..6).map(ParamId).collect(),
    }
}
