//! `sync-check` gate: schedule exploration over the real concurrent
//! state machines in `gendt-serve`, driven by the vendored `interleave`
//! model checker through the `gendt-sync` facade (DESIGN.md §12).
//!
//! Two halves, both mandatory for a green gate:
//!
//! 1. **Invariant zoo** — the actual production types
//!    ([`Scheduler`], [`Registry`], [`ContextCache`], [`ServeMetrics`])
//!    are exercised under thousands of explored thread interleavings,
//!    asserting the invariants the serving path depends on: every
//!    accepted job is answered exactly once, a batch never mixes model
//!    versions across a `/reload`, Condvar waits survive spurious
//!    wakeups, shutdown drains without stranding a reply channel, the
//!    LRU cache stays linearizable, and `/metrics` rendering races
//!    cleanly with writers. The forward pass is stubbed behind the
//!    [`BatchRunner`] seam so the exploration budget goes to
//!    interleavings, not inference.
//! 2. **Detector fixtures** — deliberately buggy miniatures (lost
//!    notify, name-keyed batching across a reload, ABBA lock inversion,
//!    non-atomic read-modify-write) that each detector must flag, and
//!    whose printed token must reproduce the failure in one replayed
//!    schedule. A gate that only ever says "ok" proves nothing; the
//!    fixtures prove the detectors actually fire.
//!
//! Failures print an `interleave` replay token (`rand:<seed>` /
//! `dfs:<choices>`); feed it back through [`interleave::replay`] with
//! the same config to step the identical schedule again.

use gendt::{GenDt, GenDtCfg, GeneratedSeries};
use gendt_data::context::RunContext;
use gendt_data::Kpi;
use gendt_faults::GendtError;
use gendt_serve::api::InfoResponse;
use gendt_serve::batch::{BatchOut, GenJob};
use gendt_serve::cache::{ContextCache, ContextKey};
use gendt_serve::http::HttpResponse;
use gendt_serve::metrics::ServeMetrics;
use gendt_serve::registry::{ModelEntry, ModelMap, Registry};
use gendt_serve::scheduler::{BatchRunner, SchedCfg, Scheduler, SubmitError};
use gendt_serve::session::{Checkout, SessionTable};
use gendt_sync::atomic::{AtomicBool, AtomicU64, Ordering};
use gendt_sync::{thread, Condvar, Mutex};
use interleave::{Config, FailureKind, Report};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

/// An untrained but fully constructed model entry: real type, minimal
/// weights. The stub runner never executes it, so construction cost is
/// all that matters.
fn test_entry(name: &str, seed: u64) -> Arc<ModelEntry> {
    let mut cfg = GenDtCfg::fast(4, seed);
    cfg.hidden = 4;
    cfg.resgen_hidden = 4;
    cfg.disc_hidden = 4;
    cfg.window.len = 4;
    cfg.window.stride = 4;
    cfg.window.max_cells = 2;
    Arc::new(ModelEntry {
        name: name.to_string(),
        version: 0,
        model: GenDt::new(cfg),
        kpis: Kpi::DATASET_A.to_vec(),
    })
}

fn empty_ctx() -> Arc<RunContext> {
    Arc::new(RunContext { steps: Vec::new() })
}

/// Harness batch executor: asserts the scheduler's version-homogeneity
/// contract and answers each job with a marker series carrying its
/// sample seed, so submitters can verify they got *their* answer.
struct StubRunner;

impl BatchRunner for StubRunner {
    fn run(&self, jobs: &[GenJob]) -> Vec<BatchOut> {
        assert!(
            jobs.iter().all(|j| Arc::ptr_eq(&j.entry, &jobs[0].entry)),
            "mixed-version batch: jobs from different model instances coalesced"
        );
        jobs.iter()
            .map(|j| BatchOut {
                series: GeneratedSeries {
                    kpis: Vec::new(),
                    series: vec![vec![j.sample_seed as f64]],
                },
                cursor: None,
            })
            .collect()
    }
}

/// Settle every lazily-resolved global *before* exploration so harness
/// bodies are schedule-deterministic from the first schedule onward
/// (DFS enumeration and replay both require it).
fn prewarm() {
    gendt_trace::set_trace(false);
    gendt_trace::set_log_level(0);
    gendt_faults::clear_faults();
    gendt_faults::sleep_if_slow("sync-check.prewarm");
    let _ = gendt_faults::fail_io("sync-check.prewarm");
}

fn report_line(name: &str, r: &Report) -> bool {
    match &r.failure {
        None => {
            println!(
                "  [ok  ] {name:<24} {:>6} schedules, {:>8} steps",
                r.schedules, r.steps_total
            );
            true
        }
        Some(f) => {
            println!("  [FAIL] {name:<24} after {} schedules:", r.schedules);
            for line in f.to_string().lines() {
                println!("         {line}");
            }
            false
        }
    }
}

// ---------------------------------------------------------------------
// Invariant zoo: real production types, green on correct code
// ---------------------------------------------------------------------

fn sched_cfg(max_batch: usize, max_wait_ms: u64, queue_cap: usize) -> SchedCfg {
    SchedCfg {
        max_batch,
        max_wait_ms,
        queue_cap,
    }
}

/// Every accepted job is answered exactly once with its own result.
fn model_sched_exactly_once(entry: &Arc<ModelEntry>, ctx: &Arc<RunContext>) -> Report {
    let cfg = Config::random(2_500, 0x5eed_0001);
    let (entry, ctx) = (entry.clone(), ctx.clone());
    interleave::explore(&cfg, move || {
        let metrics = Arc::new(ServeMetrics::new(4));
        let sched = Arc::new(Scheduler::with_runner(
            sched_cfg(2, 0, 8),
            metrics.clone(),
            Box::new(StubRunner),
        ));
        let worker = {
            let s = sched.clone();
            thread::spawn(move || s.run_worker())
        };
        let subs: Vec<_> = (0..2u64)
            .map(|i| {
                let s = sched.clone();
                let (e, c) = (entry.clone(), ctx.clone());
                thread::spawn(move || {
                    let job = GenJob {
                        entry: e,
                        ctx: c,
                        sample_seed: i,
                        stream: None,
                    };
                    let rx = s
                        .submit(job, None)
                        .expect("queue has room, not shutting down");
                    let out = rx
                        .recv()
                        .expect("accepted job must be answered")
                        .expect("stub batch cannot fail");
                    assert_eq!(
                        out.series.series[0][0], i as f64,
                        "answer routed to wrong submitter"
                    );
                })
            })
            .collect();
        for h in subs {
            h.join().expect("submitter must not panic");
        }
        sched.stop();
        worker.join().expect("worker must exit cleanly");
        let answered = metrics.batched_requests.load(Ordering::Relaxed);
        assert_eq!(answered, 2, "each accepted job through exactly one batch");
    })
}

/// A batch never mixes model versions: jobs pinned to the pre-reload
/// entry and jobs pinned to the post-reload entry must not coalesce,
/// even though the entries share a registry name.
fn model_sched_mixed_version(
    v1: &Arc<ModelEntry>,
    v2: &Arc<ModelEntry>,
    ctx: &Arc<RunContext>,
) -> Report {
    let cfg = Config::random(2_500, 0x5eed_0002);
    let (v1, v2, ctx) = (v1.clone(), v2.clone(), ctx.clone());
    interleave::explore(&cfg, move || {
        let metrics = Arc::new(ServeMetrics::new(4));
        let sched = Arc::new(Scheduler::with_runner(
            sched_cfg(4, 1, 8),
            metrics,
            Box::new(StubRunner), // asserts Arc::ptr_eq homogeneity
        ));
        let worker = {
            let s = sched.clone();
            thread::spawn(move || s.run_worker())
        };
        let entries = [v1.clone(), v1.clone(), v2.clone()];
        let subs: Vec<_> = entries
            .into_iter()
            .enumerate()
            .map(|(i, e)| {
                let s = sched.clone();
                let c = ctx.clone();
                thread::spawn(move || {
                    let job = GenJob {
                        entry: e,
                        ctx: c,
                        sample_seed: i as u64,
                        stream: None,
                    };
                    let rx = s.submit(job, None).expect("queue has room");
                    rx.recv()
                        .expect("accepted job must be answered")
                        .expect("homogeneous batches cannot fail");
                })
            })
            .collect();
        for h in subs {
            h.join().expect("submitter must not panic");
        }
        sched.stop();
        worker.join().expect("worker must exit cleanly");
    })
}

/// The worker's Condvar waits (idle block and batch-fill timeout) must
/// tolerate spurious wakeups: extra injected wakeups change timing,
/// never outcomes.
fn model_sched_spurious(entry: &Arc<ModelEntry>, ctx: &Arc<RunContext>) -> Report {
    let mut cfg = Config::random(1_500, 0x5eed_0003);
    cfg.spurious = 4;
    let (entry, ctx) = (entry.clone(), ctx.clone());
    interleave::explore(&cfg, move || {
        let metrics = Arc::new(ServeMetrics::new(4));
        let sched = Arc::new(Scheduler::with_runner(
            sched_cfg(2, 5, 8),
            metrics,
            Box::new(StubRunner),
        ));
        let worker = {
            let s = sched.clone();
            thread::spawn(move || s.run_worker())
        };
        let (e, c) = (entry.clone(), ctx.clone());
        let s = sched.clone();
        let sub = thread::spawn(move || {
            let job = GenJob {
                entry: e,
                ctx: c,
                sample_seed: 9,
                stream: None,
            };
            let rx = s.submit(job, None).expect("queue has room");
            let out = rx
                .recv()
                .expect("accepted job must be answered")
                .expect("stub batch cannot fail");
            assert_eq!(out.series.series[0][0], 9.0);
        });
        sub.join().expect("submitter must not panic");
        sched.stop();
        worker.join().expect("worker must exit cleanly");
    })
}

/// Shutdown racing live submitters: every submit either fails fast
/// (`ShuttingDown` / `QueueFull`) or its reply channel resolves — no
/// accepted job is ever stranded by a worker that already exited. This
/// is the exact race the under-lock shutdown check in
/// `Scheduler::submit` closes.
fn model_drain_flush(entry: &Arc<ModelEntry>, ctx: &Arc<RunContext>) -> Report {
    let cfg = Config::random(2_500, 0x5eed_0004);
    let (entry, ctx) = (entry.clone(), ctx.clone());
    interleave::explore(&cfg, move || {
        let metrics = Arc::new(ServeMetrics::new(4));
        let sched = Arc::new(Scheduler::with_runner(
            sched_cfg(2, 0, 8),
            metrics,
            Box::new(StubRunner),
        ));
        let worker = {
            let s = sched.clone();
            thread::spawn(move || s.run_worker())
        };
        let stopper = {
            let s = sched.clone();
            thread::spawn(move || s.stop())
        };
        let subs: Vec<_> = (0..2u64)
            .map(|i| {
                let s = sched.clone();
                let (e, c) = (entry.clone(), ctx.clone());
                thread::spawn(move || {
                    let job = GenJob {
                        entry: e,
                        ctx: c,
                        sample_seed: i,
                        stream: None,
                    };
                    match s.submit(job, None) {
                        Ok(rx) => {
                            // The drain guarantee: accepted ⇒ answered.
                            rx.recv()
                                .expect("accepted job stranded by shutdown")
                                .expect("stub batch cannot fail");
                        }
                        Err(SubmitError::ShuttingDown) | Err(SubmitError::QueueFull) => {}
                    }
                })
            })
            .collect();
        for h in subs {
            h.join().expect("submitter must not panic");
        }
        stopper.join().expect("stopper must not panic");
        worker.join().expect("worker must exit cleanly");
    })
}

/// `/reload` swap racing readers: a name always resolves, and what it
/// resolves to is a complete version — never a torn map.
fn model_registry_swap(v1: &Arc<ModelEntry>, v2: &Arc<ModelEntry>) -> Report {
    let cfg = Config::random(800, 0x5eed_0005);
    let (v1, v2) = (v1.clone(), v2.clone());
    interleave::explore(&cfg, move || {
        let map_of = |e: &Arc<ModelEntry>| -> ModelMap {
            let mut m = ModelMap::new();
            m.insert(e.name.clone(), e.clone());
            m
        };
        let reg = Arc::new(Registry::preloaded(map_of(&v1)));
        let swapper = {
            let r = reg.clone();
            let next = map_of(&v2);
            thread::spawn(move || r.install(next))
        };
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let r = reg.clone();
                let (a, b) = (v1.clone(), v2.clone());
                thread::spawn(move || {
                    let got = r.get("m").expect("name must resolve across the swap");
                    assert!(
                        Arc::ptr_eq(&got, &a) || Arc::ptr_eq(&got, &b),
                        "resolved a model that is neither version"
                    );
                    assert_eq!(r.names(), vec!["m".to_string()]);
                })
            })
            .collect();
        for h in readers {
            h.join().expect("reader must not panic");
        }
        swapper.join().expect("swapper must not panic");
        assert!(Arc::ptr_eq(&reg.get("m").expect("resolves"), &v2));
    })
}

/// LRU cache under concurrent insert/get: within-capacity entries are
/// never lost, over-capacity keeps exactly `cap` survivors, and the
/// hit/miss counters stay consistent with observed outcomes.
fn model_cache_linearizes() -> Report {
    let cfg = Config::random(1_500, 0x5eed_0006);
    interleave::explore(&cfg, move || {
        let k1 = ContextKey::new("walk", 60.0, 0.0, 0.0, 1, &Default::default());
        let k2 = ContextKey::new("walk", 60.0, 0.0, 0.0, 2, &Default::default());

        // Capacity 2, two keys: nothing can ever be evicted.
        let roomy = Arc::new(ContextCache::new(2));
        let writers: Vec<_> = [(k1, 1usize), (k2, 2usize)]
            .into_iter()
            .map(|(k, n)| {
                let c = roomy.clone();
                thread::spawn(move || {
                    c.insert(
                        k,
                        Arc::new(RunContext {
                            steps: Vec::with_capacity(n),
                        }),
                    );
                    let got = c.get(k).expect("within-capacity entry lost");
                    assert_eq!(got.steps.capacity(), n, "wrong context for key");
                })
            })
            .collect();
        for h in writers {
            h.join().expect("writer must not panic");
        }
        assert!(roomy.get(k1).is_some() && roomy.get(k2).is_some());
        assert_eq!(roomy.stats(), (4, 0), "hit/miss counters drifted");

        // Capacity 1, two racing inserts: exactly one survivor.
        let tight = Arc::new(ContextCache::new(1));
        let writers: Vec<_> = [k1, k2]
            .into_iter()
            .map(|k| {
                let c = tight.clone();
                thread::spawn(move || c.insert(k, Arc::new(RunContext { steps: Vec::new() })))
            })
            .collect();
        for h in writers {
            h.join().expect("writer must not panic");
        }
        let survivors = [k1, k2].iter().filter(|&&k| tight.get(k).is_some()).count();
        assert_eq!(
            survivors, 1,
            "LRU at capacity 1 must keep exactly one entry"
        );
        assert_eq!(tight.stats(), (1, 1));
    })
}

/// The stream session table under churn: a continuation checkout
/// racing a rival continuation on the same session and an open that
/// overflows capacity. Invariants of the `/v1/stream` session
/// lifecycle: a checked-out (Busy) session is never evicted out from
/// under its continuation, the carried state is never held by two
/// continuations at once, the freshly opened session always survives
/// its own eviction pass, and the occupancy gauge matches the table.
fn model_session_churn() -> Report {
    let cfg = Config::random(1_200, 0x5eed_0008);
    interleave::explore(&cfg, move || {
        let metrics = Arc::new(ServeMetrics::new(4));
        let table = Arc::new(SessionTable::new(
            2,
            Duration::from_secs(3600),
            metrics.clone(),
        ));
        table.open("s1".to_string(), 11u64);
        table.open("s2".to_string(), 22u64);

        // Two continuations race for s1; at most one may hold the
        // carried state at any instant (the other sees Busy, or gets
        // its turn only after the first checked back in).
        let holders = Arc::new(AtomicU64::new(0));
        let continuations: Vec<_> = (0..2)
            .map(|_| {
                let (t, holders) = (table.clone(), holders.clone());
                thread::spawn(move || match t.checkout("s1") {
                    Checkout::Session(v) => {
                        assert_eq!(v, 11, "carried state swapped under checkout");
                        // sync: SeqCst so the duplication check is a
                        // total order over holder transitions.
                        assert_eq!(
                            holders.fetch_add(1, Ordering::SeqCst),
                            0,
                            "two continuations hold one session's state"
                        );
                        holders.fetch_sub(1, Ordering::SeqCst);
                        assert!(
                            t.checkin("s1", v),
                            "busy session evicted out from under its continuation"
                        );
                    }
                    Checkout::Busy => {}     // rival holds it: legal
                    Checkout::NotFound => {} // evicted while idle: legal
                })
            })
            .collect();
        // ...racing an open that overflows capacity and must evict an
        // idle victim, never a busy slot.
        let opener = {
            let t = table.clone();
            thread::spawn(move || t.open("s3".to_string(), 33u64))
        };
        for h in continuations {
            h.join().expect("continuation must not panic");
        }
        opener.join().expect("opener must not panic");

        assert!(table.len() <= 2, "capacity violated once all slots idle");
        // sync: gauge read after every mutator joined.
        assert_eq!(
            metrics.stream_sessions.load(Ordering::Relaxed),
            table.len() as u64,
            "occupancy gauge drifted from the table"
        );
        match table.checkout("s3") {
            Checkout::Session(v) => assert_eq!(v, 33, "fresh session lost its state"),
            Checkout::Busy => panic!("nobody holds s3, yet checkout saw Busy"),
            Checkout::NotFound => {
                panic!("freshly opened session must survive its own eviction pass")
            }
        }
    })
}

/// `/metrics` rendering racing counter writers and histogram pushes:
/// poison-tolerant locks mean a scrape can never wedge, and the final
/// render reflects every completed observation.
fn model_metrics_scrape() -> Report {
    let cfg = Config::random(300, 0x5eed_0007);
    interleave::explore(&cfg, move || {
        let m = Arc::new(ServeMetrics::new(4));
        let writers: Vec<_> = (0..2)
            .map(|_| {
                let m = m.clone();
                thread::spawn(move || {
                    m.http_requests.fetch_add(1, Ordering::Relaxed);
                    m.observe_batch(2);
                    m.observe_latency_ms(1.5);
                })
            })
            .collect();
        let scraper = {
            let m = m.clone();
            thread::spawn(move || {
                // Mid-race scrape: must complete whatever the writers are
                // doing; content is schedule-dependent, liveness is not.
                let _ = m.render(1, 0, 0);
            })
        };
        for h in writers {
            h.join().expect("writer must not panic");
        }
        scraper.join().expect("scraper must not panic");
        let text = m.render(1, 0, 0);
        assert!(text.contains("gendt_serve_http_requests_total 2"));
        assert!(text.contains("gendt_serve_batches_total 2"));
        assert!(text.contains("gendt_serve_batched_requests_total 4"));
        assert!(text.contains("gendt_serve_batch_size_count 2"));
    })
}

/// Bounded-preemption DFS over the submit→batch→reply→stop cycle:
/// exhaustive for small preemption counts, complementing the random
/// models above with systematic coverage of the low-preemption space.
fn model_sched_dfs(entry: &Arc<ModelEntry>, ctx: &Arc<RunContext>) -> Report {
    let cfg = Config::dfs(1_500, 2);
    let (entry, ctx) = (entry.clone(), ctx.clone());
    interleave::explore(&cfg, move || {
        let metrics = Arc::new(ServeMetrics::new(4));
        let sched = Arc::new(Scheduler::with_runner(
            sched_cfg(2, 0, 4),
            metrics,
            Box::new(StubRunner),
        ));
        let worker = {
            let s = sched.clone();
            thread::spawn(move || s.run_worker())
        };
        let job = GenJob {
            entry: entry.clone(),
            ctx: ctx.clone(),
            sample_seed: 3,
            stream: None,
        };
        let rx = sched.submit(job, None).expect("queue has room");
        let out = rx
            .recv()
            .expect("accepted job must be answered")
            .expect("stub batch cannot fail");
        assert_eq!(out.series.series[0][0], 3.0);
        sched.stop();
        worker.join().expect("worker must exit cleanly");
    })
}

// ---------------------------------------------------------------------
// Detector fixtures: seeded bugs every detector must flag and replay
// ---------------------------------------------------------------------

/// Runs a fixture expected to fail with `want`, then replays the printed
/// token and demands the same finding in exactly one schedule.
fn expect_detected<F: Fn() + Clone>(
    name: &str,
    cfg: &Config,
    want: &[FailureKind],
    body: F,
) -> (bool, u64) {
    let report = interleave::explore(cfg, body.clone());
    let explored = report.schedules;
    let Some(failure) = report.failure else {
        println!(
            "  [FAIL] {name:<24} seeded bug NOT detected in {} schedules",
            report.schedules
        );
        return (false, explored);
    };
    if !want.contains(&failure.kind) {
        println!(
            "  [FAIL] {name:<24} detected {:?}, expected one of {want:?}",
            failure.kind
        );
        return (false, explored);
    }
    let token = failure.replay_token();
    let replayed = interleave::replay(cfg, &token, body);
    let reproduced = replayed
        .failure
        .as_ref()
        .is_some_and(|f| f.kind == failure.kind);
    if !reproduced {
        println!(
            "  [FAIL] {name:<24} token {token} did not reproduce {:?}",
            failure.kind
        );
        return (false, explored + replayed.schedules);
    }
    println!(
        "  [ok  ] {name:<24} detected {:?} at schedule #{}, replayed via {token}",
        failure.kind, failure.schedule_index
    );
    (true, explored + replayed.schedules)
}

/// Seeded bug: the flag is set without `notify_one`. A waiter already
/// parked sleeps forever — the lost-wakeup deadlock detector must fire.
fn fixture_lost_notify() -> (bool, u64) {
    let cfg = Config::random(400, 0xbad_0001);
    expect_detected(
        "fixture_lost_notify",
        &cfg,
        &[FailureKind::Deadlock],
        || {
            let state = Arc::new((Mutex::new(false), Condvar::new()));
            let s1 = state.clone();
            let waiter = thread::spawn(move || {
                let (m, cv) = &*s1;
                let mut g = m.lock();
                while !*g {
                    g = cv.wait(g);
                }
            });
            let s2 = state.clone();
            let setter = thread::spawn(move || {
                let (m, _cv) = &*s2;
                *m.lock() = true; // bug: no notify
            });
            let _ = setter.join();
            let _ = waiter.join();
        },
    )
}

/// Seeded bug: a coalescer that groups by registry *name* instead of
/// `Arc` identity. When jobs pinned to both versions of "m" are queued
/// together, they coalesce into one batch and the homogeneity assert
/// fires — exactly the reload hazard the real scheduler avoids by
/// keying on `Arc::ptr_eq`.
fn fixture_mixed_version(v1: &Arc<ModelEntry>, v2: &Arc<ModelEntry>) -> (bool, u64) {
    let cfg = Config::random(400, 0xbad_0002);
    let (v1, v2) = (v1.clone(), v2.clone());
    expect_detected(
        "fixture_mixed_version",
        &cfg,
        &[FailureKind::Panic],
        move || {
            let queue = Arc::new(Mutex::new(VecDeque::<Arc<ModelEntry>>::new()));
            let producers: Vec<_> = [v1.clone(), v2.clone()]
                .into_iter()
                .map(|e| {
                    let q = queue.clone();
                    thread::spawn(move || q.lock().push_back(e))
                })
                .collect();
            let batcher = {
                let q = queue.clone();
                thread::spawn(move || {
                    let mut done = 0;
                    while done < 2 {
                        let mut q = q.lock();
                        let Some(head) = q.pop_front() else {
                            continue; // lock/unlock is a yield point
                        };
                        let mut batch = vec![head];
                        // Bug: same *name* coalesces — versions alias.
                        while q.front().is_some_and(|e| e.name == batch[0].name) {
                            batch.extend(q.pop_front());
                        }
                        drop(q);
                        assert!(
                            batch.iter().all(|e| Arc::ptr_eq(e, &batch[0])),
                            "mixed-version batch formed across a reload"
                        );
                        done += batch.len();
                    }
                })
            };
            for h in producers {
                let _ = h.join();
            }
            let _ = batcher.join();
        },
    )
}

/// Seeded bug: ABBA acquisition order across two threads. The
/// lock-order-graph detector must flag the cycle (or catch the fatal
/// interleaving as a deadlock outright).
fn fixture_lock_inversion() -> (bool, u64) {
    let cfg = Config::random(400, 0xbad_0003);
    expect_detected(
        "fixture_lock_inversion",
        &cfg,
        &[FailureKind::LockOrderCycle, FailureKind::Deadlock],
        || {
            let a = Arc::new(Mutex::new(0u32));
            let b = Arc::new(Mutex::new(0u32));
            let (a1, b1) = (a.clone(), b.clone());
            let h1 = thread::spawn(move || {
                let _ga = a1.lock();
                let _gb = b1.lock();
            });
            let (a2, b2) = (a.clone(), b.clone());
            let h2 = thread::spawn(move || {
                let _gb = b2.lock();
                let _ga = a2.lock();
            });
            let _ = h1.join();
            let _ = h2.join();
        },
    )
}

/// Seeded bug: non-atomic read-modify-write on a shared counter. The
/// vector-clock lost-update detector must flag the overwrite of a value
/// the storing thread never observed.
fn fixture_lost_update() -> (bool, u64) {
    let cfg = Config::random(400, 0xbad_0004);
    expect_detected(
        "fixture_lost_update",
        &cfg,
        &[FailureKind::LostUpdate],
        || {
            let counter = Arc::new(AtomicU64::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let c = counter.clone();
                    thread::spawn(move || {
                        let v = c.load(Ordering::SeqCst);
                        c.store(v + 1, Ordering::SeqCst); // bug: not a RMW
                    })
                })
                .collect();
            for h in handles {
                let _ = h.join();
            }
        },
    )
}

// ---------------------------------------------------------------------
// Fleet models: health flaps racing the forwarding path
// ---------------------------------------------------------------------

/// Stub probe/forwarder pair sharing one health switch: worker `a0`
/// answers only while the switch says up; `a1` is always up. The same
/// switch feeds both so the checker can interleave a health transition
/// anywhere inside a forward attempt.
struct FlapNet {
    a0_down: AtomicBool,
}

impl gendt_fleet::Probe for FlapNet {
    fn healthz(&self, addr: &str) -> Result<bool, GendtError> {
        // sync: SeqCst switch read; pairs with the flapper's store and
        // is itself the raced state under exploration.
        Ok(!(addr == "a0" && self.a0_down.load(Ordering::SeqCst)))
    }

    fn info(&self, _addr: &str) -> Result<InfoResponse, GendtError> {
        Ok(InfoResponse {
            models: Vec::new(),
            queue_depth: 0,
            max_batch: 8,
            draining: false,
        })
    }
}

impl gendt_fleet::Forwarder for FlapNet {
    fn forward(
        &self,
        addr: &str,
        _method: &str,
        _path: &str,
        _headers: &[(String, String)],
        _body: Option<&str>,
        _timeout: Duration,
    ) -> Result<HttpResponse, GendtError> {
        // sync: SeqCst switch read; see healthz above.
        if addr == "a0" && self.a0_down.load(Ordering::SeqCst) {
            return Err(GendtError::unavailable("model: a0 is down"));
        }
        Ok(HttpResponse {
            status: 200,
            headers: Vec::new(),
            body: format!("{{\"worker\":\"{addr}\"}}"),
        })
    }
}

fn fleet_body() -> &'static str {
    "{\"model\":\"demo_a\",\"scenario\":\"walk\",\"duration_s\":10.0,\"start_x\":0.0,\
     \"start_y\":0.0,\"traj_seed\":1,\"sample_seed\":2}"
}

/// Health flaps racing request forwarding through the real
/// [`Membership`] + [`gendt_fleet::dispatch_generate`] path: every
/// accepted request gets a definite, typed answer — 200 from a live
/// worker or a retryable 503 envelope — never a strand, never an
/// untyped error, no matter where the flap lands inside the
/// route→forward→evict→retry window.
fn model_fleet_flap_vs_forward() -> Report {
    let cfg = Config::random(700, 0x5eed_0010);
    interleave::explore(&cfg, move || {
        let net = Arc::new(FlapNet {
            a0_down: AtomicBool::new(false),
        });
        let metrics = Arc::new(gendt_fleet::FleetMetrics::new());
        let membership = Arc::new(gendt_fleet::Membership::new(3, metrics.clone()));
        membership.register("w0", "a0");
        membership.register("w1", "a1");

        let flapper = {
            let (net, membership) = (net.clone(), membership.clone());
            thread::spawn(move || {
                // sync: SeqCst switch write; raced against forwards.
                net.a0_down.store(true, Ordering::SeqCst);
                membership.poll_once(net.as_ref());
                net.a0_down.store(false, Ordering::SeqCst);
                membership.poll_once(net.as_ref());
            })
        };
        let clients: Vec<_> = (0..2)
            .map(|_| {
                let (net, membership, metrics) = (net.clone(), membership.clone(), metrics.clone());
                thread::spawn(move || {
                    let routed = gendt_fleet::dispatch_generate(
                        &membership,
                        net.as_ref(),
                        &metrics,
                        "/v1/generate",
                        fleet_body(),
                        None,
                        gendt_sync::time::Instant::now(),
                        Duration::from_millis(50),
                    );
                    match routed.status {
                        200 => assert!(
                            routed.body.contains("\"worker\":\"a"),
                            "200 without a worker body: {}",
                            routed.body
                        ),
                        503 => assert!(
                            routed.body.contains("\"retryable\":true"),
                            "untyped 503: {}",
                            routed.body
                        ),
                        other => panic!("stranded/untyped answer: {other} {}", routed.body),
                    }
                })
            })
            .collect();
        for h in clients {
            h.join().expect("client must not panic");
        }
        flapper.join().expect("flapper must not panic");

        // Quiesced with a0 back up: one more poll restores full
        // membership; eviction is memoryless.
        membership.poll_once(net.as_ref());
        assert_eq!(membership.healthy_count(), 2, "rejoin lost a worker");
        assert!(membership.route("demo_a", "walk").is_some());
    })
}

/// Forward-path eviction ([`Membership::report_failure`]) racing the
/// health poller and a routing reader: the ring never shows a member
/// that was not registered, routing stays definite (Some over a
/// non-empty healthy set, None only if everything is down), and the
/// final poll converges to the probe's truth.
fn model_fleet_evict_vs_poll() -> Report {
    let cfg = Config::random(700, 0x5eed_0011);
    interleave::explore(&cfg, move || {
        let net = Arc::new(FlapNet {
            a0_down: AtomicBool::new(false),
        });
        let metrics = Arc::new(gendt_fleet::FleetMetrics::new());
        let membership = Arc::new(gendt_fleet::Membership::new(5, metrics));
        membership.register("w0", "a0");
        membership.register("w1", "a1");

        let evictor = {
            let m = membership.clone();
            thread::spawn(move || {
                m.report_failure("w0");
            })
        };
        let poller = {
            let (net, m) = (net.clone(), membership.clone());
            thread::spawn(move || {
                m.poll_once(net.as_ref());
            })
        };
        let reader = {
            let m = membership.clone();
            thread::spawn(move || {
                let ring = m.ring();
                for member in ring.members() {
                    assert!(
                        member == "w0" || member == "w1",
                        "ring holds unregistered member {member}"
                    );
                }
                // w1 is never evicted, so routing must stay definite.
                let (_, addr) = m.route("demo_a", "walk").expect("route with w1 healthy");
                assert!(addr == "a0" || addr == "a1");
            })
        };
        for h in [evictor, poller, reader] {
            h.join().expect("fleet thread must not panic");
        }
        // Converge: with the probe reporting both up, one pass restores
        // both members regardless of who won the race above.
        membership.poll_once(net.as_ref());
        assert_eq!(membership.healthy_count(), 2);
        assert_eq!(membership.ring().len(), 2);
    })
}

// ---------------------------------------------------------------------
// Gate entry point
// ---------------------------------------------------------------------

/// Runs the invariant zoo and the detector fixtures; prints one line per
/// model and the explored-schedule totals. Returns `true` when every
/// real-code model is finding-free AND every seeded bug was detected and
/// replayed.
pub fn run() -> bool {
    println!("== sync-check: schedule exploration over serve's concurrent state machines ==");
    prewarm();
    let v1 = test_entry("m", 71);
    let v2 = test_entry("m", 72);
    let ctx = empty_ctx();

    let mut ok = true;
    let mut zoo_schedules = 0u64;
    let mut zoo_steps = 0u64;
    let models: [(&str, Report); 11] = [
        ("sched_exactly_once", model_sched_exactly_once(&v1, &ctx)),
        (
            "sched_mixed_version",
            model_sched_mixed_version(&v1, &v2, &ctx),
        ),
        ("sched_spurious_condvar", model_sched_spurious(&v1, &ctx)),
        ("drain_flush", model_drain_flush(&v1, &ctx)),
        ("registry_swap", model_registry_swap(&v1, &v2)),
        ("cache_linearizes", model_cache_linearizes()),
        ("session_churn", model_session_churn()),
        ("metrics_scrape", model_metrics_scrape()),
        ("sched_dfs_bounded", model_sched_dfs(&v1, &ctx)),
        ("fleet_flap_vs_forward", model_fleet_flap_vs_forward()),
        ("fleet_evict_vs_poll", model_fleet_evict_vs_poll()),
    ];
    for (name, report) in &models {
        ok &= report_line(name, report);
        zoo_schedules += report.schedules;
        zoo_steps += report.steps_total;
    }

    println!("  -- detector fixtures (each must be caught and replayed) --");
    let mut fixture_schedules = 0u64;
    for (detected, schedules) in [
        fixture_lost_notify(),
        fixture_mixed_version(&v1, &v2),
        fixture_lock_inversion(),
        fixture_lost_update(),
    ] {
        ok &= detected;
        fixture_schedules += schedules;
    }

    println!(
        "sync-check: {} ({zoo_schedules} schedules / {zoo_steps} steps over real code, \
         {fixture_schedules} over fixtures)",
        if ok { "clean" } else { "FAILED" }
    );
    ok
}
