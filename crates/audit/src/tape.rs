//! Tape verifier: re-derive every node's shape from [`Op`] semantics.
//!
//! [`expected_shape`] is an exhaustive `match` over [`Op`] — adding a
//! variant to `gendt-nn` without a shape rule here fails to compile,
//! which is the crate's coverage guarantee. [`verify`] walks a recorded
//! graph, compares each node's stored value against its derived shape
//! (errors), and flags dead nodes and nodes unreachable from the loss
//! (warnings: a forward-only graph legitimately has outputs the tape
//! cannot see being read).

use gendt_nn::{Graph, NodeId, Op};

/// Severity of a [`TapeIssue`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Severity {
    /// The tape is inconsistent; training on it would be wrong.
    Error,
    /// Suspicious but possibly intentional (e.g. an output node the
    /// verifier cannot see being consumed).
    Warning,
}

/// One finding from [`verify`].
#[derive(Clone, Debug)]
pub struct TapeIssue {
    /// Node the issue is anchored at.
    pub node: usize,
    /// `Op::describe()` of that node.
    pub op: String,
    /// Error or warning.
    pub severity: Severity,
    /// Human-readable description.
    pub message: String,
}

/// Result of verifying one recorded graph.
#[derive(Clone, Debug, Default)]
pub struct TapeReport {
    /// Number of nodes walked.
    pub nodes: usize,
    /// All findings, in node order.
    pub issues: Vec<TapeIssue>,
}

impl TapeReport {
    /// Findings with [`Severity::Error`].
    pub fn errors(&self) -> impl Iterator<Item = &TapeIssue> {
        self.issues.iter().filter(|i| i.severity == Severity::Error)
    }

    /// Findings with [`Severity::Warning`].
    pub fn warnings(&self) -> impl Iterator<Item = &TapeIssue> {
        self.issues
            .iter()
            .filter(|i| i.severity == Severity::Warning)
    }

    /// True when no error-severity issue was found.
    pub fn is_consistent(&self) -> bool {
        self.errors().count() == 0
    }
}

/// Re-derive the output shape of `op` from its operand shapes.
///
/// Returns `None` for leaves (`Input`, `Param`): their recorded value
/// *is* the ground truth, there is nothing to derive. Otherwise returns
/// the derived `(rows, cols)` or a message describing why the operands
/// are invalid for this op.
///
/// The `match` is exhaustive on purpose: a new `Op` variant without a
/// rule here is a compile error.
pub fn expected_shape(
    op: &Op,
    shape_of: &dyn Fn(NodeId) -> (usize, usize),
) -> Option<Result<(usize, usize), String>> {
    // Local helper: all listed operands must share one shape.
    let same = |ids: &[NodeId]| -> Result<(usize, usize), String> {
        let s0 = shape_of(ids[0]);
        for &id in &ids[1..] {
            let s = shape_of(id);
            if s != s0 {
                return Err(format!("operand shapes differ: {s0:?} vs {s:?}"));
            }
        }
        Ok(s0)
    };
    let scalar_result = |r: Result<(usize, usize), String>| Some(r.map(|_| (1, 1)));
    match op {
        Op::Input | Op::Param(_) => None,
        Op::MatMul(a, b) => {
            let ((ra, ca), (rb, cb)) = (shape_of(*a), shape_of(*b));
            Some(if ca == rb {
                Ok((ra, cb))
            } else {
                Err(format!("inner dimensions differ: {ra}x{ca} * {rb}x{cb}"))
            })
        }
        Op::Add(a, b) | Op::Sub(a, b) | Op::Mul(a, b) => Some(same(&[*a, *b])),
        Op::AddRow(a, b) => {
            let ((ra, ca), sb) = (shape_of(*a), shape_of(*b));
            Some(if sb == (1, ca) {
                Ok((ra, ca))
            } else {
                Err(format!("row operand must be 1x{ca}, got {sb:?}"))
            })
        }
        Op::MulCol(a, b) => {
            let ((ra, ca), sb) = (shape_of(*a), shape_of(*b));
            Some(if sb == (ra, 1) {
                Ok((ra, ca))
            } else {
                Err(format!("column operand must be {ra}x1, got {sb:?}"))
            })
        }
        Op::Scale(a, _)
        | Op::Offset(a, _)
        | Op::Sigmoid(a)
        | Op::Tanh(a)
        | Op::LeakyRelu(a, _)
        | Op::Exp(a)
        | Op::Softplus(a) => Some(Ok(shape_of(*a))),
        Op::ConcatCols(a, b) => {
            let ((ra, ca), (rb, cb)) = (shape_of(*a), shape_of(*b));
            Some(if ra == rb {
                Ok((ra, ca + cb))
            } else {
                Err(format!("row counts differ: {ra} vs {rb}"))
            })
        }
        Op::SliceCols(a, c0, c1) => {
            let (ra, ca) = shape_of(*a);
            Some(if c0 < c1 && *c1 <= ca {
                Ok((ra, c1 - c0))
            } else {
                Err(format!("bad column range {c0}..{c1} of {ca}"))
            })
        }
        Op::SliceRows(a, r0, r1) => {
            let (ra, ca) = shape_of(*a);
            Some(if r0 < r1 && *r1 <= ra {
                Ok((r1 - r0, ca))
            } else {
                Err(format!("bad row range {r0}..{r1} of {ra}"))
            })
        }
        Op::RowSum(a) => Some(Ok((shape_of(*a).0, 1))),
        Op::SumRowGroups(a, group) => {
            let (ra, ca) = shape_of(*a);
            Some(if *group > 0 && ra % group == 0 {
                Ok((ra / group, ca))
            } else {
                Err(format!("{ra} rows not divisible by group {group}"))
            })
        }
        Op::LstmCell {
            gates,
            c_prev,
            hidden,
        } => {
            let ((rg, cg), sc) = (shape_of(*gates), shape_of(*c_prev));
            Some(if *hidden > 0 && cg == 4 * hidden && sc == (rg, *hidden) {
                Ok((rg, 2 * hidden))
            } else {
                Err(format!(
                    "gates {rg}x{cg} / c_prev {sc:?} inconsistent with hidden={hidden}"
                ))
            })
        }
        Op::NoisyRenorm { x, noise, .. } => {
            let sx = shape_of(*x);
            Some(if noise.shape() == sx {
                Ok(sx)
            } else {
                Err(format!(
                    "noise shape {:?} != input shape {sx:?}",
                    noise.shape()
                ))
            })
        }
        Op::AddAddRow(a, b, bias) => {
            let ((ra, ca), sb, sbias) = (shape_of(*a), shape_of(*b), shape_of(*bias));
            Some(if sb == (ra, ca) && sbias == (1, ca) {
                Ok((ra, ca))
            } else {
                Err(format!(
                    "operands {ra}x{ca} / {sb:?} / bias {sbias:?} inconsistent"
                ))
            })
        }
        Op::MaskedGroupMean {
            x,
            mask,
            scale,
            group,
        } => {
            let (rx, cx) = shape_of(*x);
            Some(
                if *group > 0
                    && rx % group == 0
                    && mask.shape() == (rx, 1)
                    && scale.shape() == (rx / group, 1)
                {
                    Ok((rx / group, cx))
                } else {
                    Err(format!(
                        "x {rx}x{cx}, mask {:?}, scale {:?} inconsistent with group={group}",
                        mask.shape(),
                        scale.shape()
                    ))
                },
            )
        }
        Op::Mean(_) => Some(Ok((1, 1))),
        Op::MseLoss(a, b) => scalar_result(same(&[*a, *b])),
        Op::BceWithLogits(a, targets) => {
            let sa = shape_of(*a);
            scalar_result(if targets.shape() == sa {
                Ok(sa)
            } else {
                Err(format!(
                    "targets shape {:?} != logits shape {sa:?}",
                    targets.shape()
                ))
            })
        }
        Op::WeightedSum(terms) => {
            for &(id, _) in terms {
                let s = shape_of(id);
                if s != (1, 1) {
                    return scalar_result(Err(format!(
                        "term node {} is {s:?}, expected 1x1",
                        id.index()
                    )));
                }
            }
            Some(Ok((1, 1)))
        }
        Op::GaussianNll { mu, sigma, target } => {
            let (sm, ss) = (shape_of(*mu), shape_of(*sigma));
            scalar_result(if sm == ss && target.shape() == sm {
                Ok(sm)
            } else {
                Err(format!(
                    "mu {sm:?} / sigma {ss:?} / target {:?} inconsistent",
                    target.shape()
                ))
            })
        }
    }
}

/// Walk a recorded graph: check every node's stored shape against its
/// derived shape, and (when `loss` is given) flag dead nodes and nodes
/// the backward walk from `loss` can never reach.
pub fn verify(g: &Graph, loss: Option<NodeId>) -> TapeReport {
    let n = g.len();
    let mut report = TapeReport {
        nodes: n,
        issues: Vec::new(),
    };
    let shape_of = |id: NodeId| g.value(id).shape();

    let mut consumers = vec![0usize; n];
    for id in g.node_ids() {
        for inp in g.op(id).inputs() {
            consumers[inp.index()] += 1;
        }
    }

    for id in g.node_ids() {
        let op = g.op(id);
        let actual = g.value(id).shape();
        match expected_shape(op, &shape_of) {
            None => {}
            Some(Ok(expected)) if expected == actual => {}
            Some(Ok(expected)) => report.issues.push(TapeIssue {
                node: id.index(),
                op: op.describe(),
                severity: Severity::Error,
                message: format!("stored shape {actual:?} but semantics derive {expected:?}"),
            }),
            Some(Err(msg)) => report.issues.push(TapeIssue {
                node: id.index(),
                op: op.describe(),
                severity: Severity::Error,
                message: format!("invalid operands: {msg}"),
            }),
        }
        // Shape metadata vs. backing storage (a corrupted Matrix would
        // make every derived shape above meaningless).
        let v = g.value(id);
        if v.data.len() != v.rows * v.cols {
            report.issues.push(TapeIssue {
                node: id.index(),
                op: op.describe(),
                severity: Severity::Error,
                message: format!(
                    "matrix claims {}x{} but holds {} elements",
                    v.rows,
                    v.cols,
                    v.data.len()
                ),
            });
        }
    }

    if let Some(loss) = loss {
        // Reachability from the loss through op inputs (the set backward
        // can touch). Tape order makes a reverse sweep sufficient: a
        // node's consumers always sit later on the tape.
        let ids: Vec<NodeId> = g.node_ids().collect();
        let mut reachable = vec![false; n];
        if loss.index() < n {
            reachable[loss.index()] = true;
            for i in (0..=loss.index()).rev() {
                if !reachable[i] {
                    continue;
                }
                for inp in g.op(ids[i]).inputs() {
                    reachable[inp.index()] = true;
                }
            }
        }
        for &id in &ids {
            let i = id.index();
            if consumers[i] == 0 && i != loss.index() {
                report.issues.push(TapeIssue {
                    node: i,
                    op: g.op(id).describe(),
                    severity: Severity::Warning,
                    message: "dead node: no consumer on the tape and not the loss".into(),
                });
            }
            if !reachable[i] && g.node_needs_grad(id) {
                report.issues.push(TapeIssue {
                    node: i,
                    op: g.op(id).describe(),
                    severity: Severity::Warning,
                    message: "needs grad but is unreachable from the loss".into(),
                });
            }
        }
    }
    report
}
