//! Exhaustive finite-difference gradient checking, one case set per
//! [`Op`] variant.
//!
//! [`cases_for`] maps every variant to the named cases that exercise its
//! backward — an exhaustive `match`, so adding an `Op` to `gendt-nn`
//! without gradcheck coverage fails to compile. [`all_cases`] runs the
//! named cases; a test (and the CLI) cross-checks the two against the
//! [`crate::zoo`] tape so the mapping cannot rot.
//!
//! Analytic gradients come from [`Graph::backward`]; the numeric
//! reference is a central difference `(f(w+e) - f(w-e)) / 2e` with
//! `e = 1e-3 * (1 + |w|)`, compared at relative tolerance
//! [`TOLERANCE`] (`|a - n| <= tol * (1 + max(|a|, |n|))`).
//!
//! `NoisyRenorm` deliberately stops gradients at its noise and
//! renormalization denominator (matching the unfused composition), so
//! differencing the *true* forward would disagree with the analytic
//! backward by design; its case differences a frozen-semantics forward
//! (noise and denominator pinned at the base point) instead.

use gendt_nn::{Graph, Matrix, NodeId, Op, ParamId, ParamStore};

/// Relative tolerance of the analytic-vs-numeric comparison.
pub const TOLERANCE: f64 = 1e-2;

/// Outcome of one gradcheck case.
#[derive(Clone, Debug)]
pub struct CaseResult {
    /// Case name (stable, used by [`cases_for`]).
    pub name: &'static str,
    /// Worst relative error over all checked parameter elements.
    pub max_rel_err: f64,
    /// True when every element agreed within [`TOLERANCE`].
    pub passed: bool,
    /// Description of the worst element (param, index, both gradients).
    pub detail: String,
}

/// Graph builder signature shared by all cases: record a scalar loss
/// over the store's parameters.
pub type Build = dyn Fn(&mut Graph, &ParamStore, &[ParamId]) -> NodeId;

/// Loss evaluated directly from parameter matrices — only used by cases
/// whose op semantics differ from the recorded forward (stop-gradients).
pub type FdLoss = dyn Fn(&[&Matrix]) -> f64;

fn run_graph_loss(store: &ParamStore, ids: &[ParamId], build: &Build) -> f64 {
    let mut g = Graph::new();
    let loss = build(&mut g, store, ids);
    f64::from(g.value(loss).data[0])
}

/// Core harness: analytic gradient via the tape backward, numeric via
/// central differences on every element of every parameter.
///
/// Public so the self-tests can aim it at a deliberately wrong
/// reference and watch it fire.
pub fn check_case(
    name: &'static str,
    mats: Vec<(&'static str, Matrix)>,
    build: &Build,
    fd_loss: Option<&FdLoss>,
) -> CaseResult {
    let mut store = ParamStore::new();
    let ids: Vec<ParamId> = mats.iter().map(|(n, m)| store.add(n, m.clone())).collect();

    store.zero_grad();
    let mut g = Graph::new();
    let loss = build(&mut g, &store, &ids);
    assert_eq!(
        g.value(loss).shape(),
        (1, 1),
        "gradcheck case {name}: loss must be scalar"
    );
    g.backward(loss, &mut store);
    let analytic: Vec<Matrix> = ids.iter().map(|&id| store.grad(id).clone()).collect();

    let mut max_rel = 0.0f64;
    let mut detail = String::from("all elements within tolerance");
    let mut passed = true;
    for (pi, &id) in ids.iter().enumerate() {
        for k in 0..store.value(id).data.len() {
            let w0 = store.value(id).data[k];
            let eps = 1e-3 * (1.0 + w0.abs());
            let eval = |w: f32, store: &mut ParamStore| -> f64 {
                store.value_mut(id).data[k] = w;
                let v = match fd_loss {
                    Some(f) => {
                        let views: Vec<&Matrix> = ids.iter().map(|&i| store.value(i)).collect();
                        f(&views)
                    }
                    None => run_graph_loss(store, &ids, build),
                };
                store.value_mut(id).data[k] = w0;
                v
            };
            let f_plus = eval(w0 + eps, &mut store);
            let f_minus = eval(w0 - eps, &mut store);
            let numeric = (f_plus - f_minus) / (2.0 * f64::from(eps));
            let a = f64::from(analytic[pi].data[k]);
            let denom = 1.0 + a.abs().max(numeric.abs());
            let rel = (a - numeric).abs() / denom;
            if rel > max_rel {
                max_rel = rel;
                detail = format!(
                    "worst: param {} [{}]: analytic {a:.6e}, numeric {numeric:.6e}, rel {rel:.3e}",
                    mats[pi].0, k
                );
            }
            if rel > TOLERANCE {
                passed = false;
            }
        }
    }
    CaseResult {
        name,
        max_rel_err: max_rel,
        passed,
        detail,
    }
}

fn mat(rows: usize, cols: usize, seed: u64, lo: f64, hi: f64) -> Matrix {
    let mut rng = gendt_nn::Rng::seed_from(seed);
    Matrix::from_vec(
        rows,
        cols,
        (0..rows * cols)
            .map(|_| rng.uniform(lo, hi) as f32)
            .collect(),
    )
}

/// A named, self-contained gradcheck case runner.
pub type CaseFn = fn() -> CaseResult;

/// Registry of every gradcheck case, name → runner.
///
/// Cases referenced by [`cases_for`] must appear here; the zoo coverage
/// test enforces it.
pub fn all_cases() -> Vec<(&'static str, CaseFn)> {
    vec![
        ("param_leaf", || {
            check_case(
                "param_leaf",
                vec![("w", mat(2, 3, 1, -1.0, 1.0))],
                &|g, s, ids| {
                    let w = g.param(s, ids[0]);
                    g.mean(w)
                },
                None,
            )
        }),
        ("input_is_constant", || {
            check_case(
                "input_is_constant",
                vec![("w", mat(2, 3, 2, -1.0, 1.0))],
                &|g, s, ids| {
                    let w = g.param(s, ids[0]);
                    let c = g.input(mat(2, 3, 3, -1.0, 1.0));
                    let y = g.add(w, c);
                    g.mean(y)
                },
                None,
            )
        }),
        ("matmul", || {
            check_case(
                "matmul",
                vec![
                    ("a", mat(3, 4, 4, -1.0, 1.0)),
                    ("b", mat(4, 2, 5, -1.0, 1.0)),
                ],
                &|g, s, ids| {
                    let a = g.param(s, ids[0]);
                    let b = g.param(s, ids[1]);
                    let y = g.matmul(a, b);
                    g.mean(y)
                },
                None,
            )
        }),
        ("matmul_1x1", || {
            check_case(
                "matmul_1x1",
                vec![("a", mat(1, 1, 6, 0.5, 1.5)), ("b", mat(1, 1, 7, 0.5, 1.5))],
                &|g, s, ids| {
                    let a = g.param(s, ids[0]);
                    let b = g.param(s, ids[1]);
                    let y = g.matmul(a, b);
                    g.mean(y)
                },
                None,
            )
        }),
        ("add", || {
            check_case(
                "add",
                vec![
                    ("a", mat(2, 3, 8, -1.0, 1.0)),
                    ("b", mat(2, 3, 9, -1.0, 1.0)),
                ],
                &|g, s, ids| {
                    let a = g.param(s, ids[0]);
                    let b = g.param(s, ids[1]);
                    let y = g.add(a, b);
                    square_mean(g, y)
                },
                None,
            )
        }),
        ("sub", || {
            check_case(
                "sub",
                vec![
                    ("a", mat(2, 3, 10, -1.0, 1.0)),
                    ("b", mat(2, 3, 11, -1.0, 1.0)),
                ],
                &|g, s, ids| {
                    let a = g.param(s, ids[0]);
                    let b = g.param(s, ids[1]);
                    let y = g.sub(a, b);
                    square_mean(g, y)
                },
                None,
            )
        }),
        ("mul", || {
            check_case(
                "mul",
                vec![
                    ("a", mat(2, 3, 12, -1.0, 1.0)),
                    ("b", mat(2, 3, 13, -1.0, 1.0)),
                ],
                &|g, s, ids| {
                    let a = g.param(s, ids[0]);
                    let b = g.param(s, ids[1]);
                    let y = g.mul(a, b);
                    g.mean(y)
                },
                None,
            )
        }),
        ("add_row", || {
            check_case(
                "add_row",
                vec![
                    ("a", mat(3, 4, 14, -1.0, 1.0)),
                    ("b", mat(1, 4, 15, -1.0, 1.0)),
                ],
                &|g, s, ids| {
                    let a = g.param(s, ids[0]);
                    let b = g.param(s, ids[1]);
                    let y = g.add_row(a, b);
                    square_mean(g, y)
                },
                None,
            )
        }),
        ("mul_col", || {
            check_case(
                "mul_col",
                vec![
                    ("a", mat(3, 4, 16, -1.0, 1.0)),
                    ("b", mat(3, 1, 17, -1.0, 1.0)),
                ],
                &|g, s, ids| {
                    let a = g.param(s, ids[0]);
                    let b = g.param(s, ids[1]);
                    let y = g.mul_col(a, b);
                    g.mean(y)
                },
                None,
            )
        }),
        ("scale", || {
            check_case(
                "scale",
                vec![("w", mat(2, 3, 18, -1.0, 1.0))],
                &|g, s, ids| {
                    let w = g.param(s, ids[0]);
                    let y = g.scale(w, -1.7);
                    square_mean(g, y)
                },
                None,
            )
        }),
        ("offset", || {
            check_case(
                "offset",
                vec![("w", mat(2, 3, 19, -1.0, 1.0))],
                &|g, s, ids| {
                    let w = g.param(s, ids[0]);
                    let y = g.offset(w, 0.4);
                    square_mean(g, y)
                },
                None,
            )
        }),
        ("sigmoid", || {
            check_case(
                "sigmoid",
                vec![("w", mat(2, 3, 20, -2.0, 2.0))],
                &|g, s, ids| {
                    let w = g.param(s, ids[0]);
                    let y = g.sigmoid(w);
                    g.mean(y)
                },
                None,
            )
        }),
        ("tanh", || {
            check_case(
                "tanh",
                vec![("w", mat(2, 3, 21, -2.0, 2.0))],
                &|g, s, ids| {
                    let w = g.param(s, ids[0]);
                    let y = g.tanh(w);
                    g.mean(y)
                },
                None,
            )
        }),
        ("leaky_relu", || {
            // Entries pushed away from 0 so the difference never
            // straddles the kink (FD across it is meaningless).
            let mut m = mat(2, 3, 22, 0.2, 1.5);
            for (i, v) in m.data.iter_mut().enumerate() {
                if i % 2 == 0 {
                    *v = -*v;
                }
            }
            check_case(
                "leaky_relu",
                vec![("w", m)],
                &|g, s, ids| {
                    let w = g.param(s, ids[0]);
                    let y = g.leaky_relu(w, 0.1);
                    g.mean(y)
                },
                None,
            )
        }),
        ("exp", || {
            check_case(
                "exp",
                vec![("w", mat(2, 3, 23, -1.0, 1.0))],
                &|g, s, ids| {
                    let w = g.param(s, ids[0]);
                    let y = g.exp(w);
                    g.mean(y)
                },
                None,
            )
        }),
        ("exp_large", || {
            check_case(
                "exp_large",
                vec![("w", mat(1, 4, 24, 8.0, 10.0))],
                &|g, s, ids| {
                    let w = g.param(s, ids[0]);
                    let y = g.exp(w);
                    g.mean(y)
                },
                None,
            )
        }),
        ("softplus", || {
            check_case(
                "softplus",
                vec![("w", mat(2, 3, 25, -2.0, 2.0))],
                &|g, s, ids| {
                    let w = g.param(s, ids[0]);
                    let y = g.softplus(w);
                    g.mean(y)
                },
                None,
            )
        }),
        ("softplus_large", || {
            // ±25: deep in both saturation regimes (identity / zero).
            let m = Matrix::from_vec(1, 4, vec![-25.0, -24.0, 24.0, 25.0]);
            check_case(
                "softplus_large",
                vec![("w", m)],
                &|g, s, ids| {
                    let w = g.param(s, ids[0]);
                    let y = g.softplus(w);
                    g.mean(y)
                },
                None,
            )
        }),
        ("concat_cols", || {
            check_case(
                "concat_cols",
                vec![
                    ("a", mat(3, 2, 26, -1.0, 1.0)),
                    ("b", mat(3, 4, 27, -1.0, 1.0)),
                ],
                &|g, s, ids| {
                    let a = g.param(s, ids[0]);
                    let b = g.param(s, ids[1]);
                    let y = g.concat_cols(a, b);
                    square_mean(g, y)
                },
                None,
            )
        }),
        ("slice_cols_left_edge", || {
            check_case(
                "slice_cols_left_edge",
                vec![("w", mat(3, 5, 28, -1.0, 1.0))],
                &|g, s, ids| {
                    let w = g.param(s, ids[0]);
                    let y = g.slice_cols(w, 0, 2);
                    square_mean(g, y)
                },
                None,
            )
        }),
        ("slice_cols_right_edge", || {
            check_case(
                "slice_cols_right_edge",
                vec![("w", mat(3, 5, 29, -1.0, 1.0))],
                &|g, s, ids| {
                    let w = g.param(s, ids[0]);
                    let y = g.slice_cols(w, 3, 5);
                    square_mean(g, y)
                },
                None,
            )
        }),
        ("slice_cols_one_col", || {
            // 1-column source: the whole matrix is one boundary slice.
            check_case(
                "slice_cols_one_col",
                vec![("w", mat(4, 1, 30, -1.0, 1.0))],
                &|g, s, ids| {
                    let w = g.param(s, ids[0]);
                    let y = g.slice_cols(w, 0, 1);
                    square_mean(g, y)
                },
                None,
            )
        }),
        ("slice_rows_top_edge", || {
            check_case(
                "slice_rows_top_edge",
                vec![("w", mat(5, 3, 31, -1.0, 1.0))],
                &|g, s, ids| {
                    let w = g.param(s, ids[0]);
                    let y = g.slice_rows(w, 0, 2);
                    square_mean(g, y)
                },
                None,
            )
        }),
        ("slice_rows_bottom_edge", || {
            check_case(
                "slice_rows_bottom_edge",
                vec![("w", mat(5, 3, 32, -1.0, 1.0))],
                &|g, s, ids| {
                    let w = g.param(s, ids[0]);
                    let y = g.slice_rows(w, 3, 5);
                    square_mean(g, y)
                },
                None,
            )
        }),
        ("slice_rows_one_row", || {
            // 1-row source: the whole matrix is one boundary slice.
            check_case(
                "slice_rows_one_row",
                vec![("w", mat(1, 5, 33, -1.0, 1.0))],
                &|g, s, ids| {
                    let w = g.param(s, ids[0]);
                    let y = g.slice_rows(w, 0, 1);
                    square_mean(g, y)
                },
                None,
            )
        }),
        ("row_sum", || {
            check_case(
                "row_sum",
                vec![("w", mat(3, 4, 34, -1.0, 1.0))],
                &|g, s, ids| {
                    let w = g.param(s, ids[0]);
                    let y = g.row_sum(w);
                    square_mean(g, y)
                },
                None,
            )
        }),
        ("sum_row_groups", || {
            check_case(
                "sum_row_groups",
                vec![("w", mat(6, 3, 35, -1.0, 1.0))],
                &|g, s, ids| {
                    let w = g.param(s, ids[0]);
                    let y = g.sum_row_groups(w, 3);
                    square_mean(g, y)
                },
                None,
            )
        }),
        ("sum_row_groups_whole", || {
            // group == rows: the reduction collapses to a single row.
            check_case(
                "sum_row_groups_whole",
                vec![("w", mat(4, 3, 36, -1.0, 1.0))],
                &|g, s, ids| {
                    let w = g.param(s, ids[0]);
                    let y = g.sum_row_groups(w, 4);
                    square_mean(g, y)
                },
                None,
            )
        }),
        ("lstm_cell", || {
            check_case(
                "lstm_cell",
                vec![
                    ("gates", mat(2, 8, 37, -1.0, 1.0)),
                    ("c_prev", mat(2, 2, 38, -1.0, 1.0)),
                ],
                &|g, s, ids| {
                    let gates = g.param(s, ids[0]);
                    let c_prev = g.param(s, ids[1]);
                    let y = g.lstm_cell(gates, c_prev, 2);
                    square_mean(g, y)
                },
                None,
            )
        }),
        ("noisy_renorm", noisy_renorm_case),
        ("add_add_row", || {
            check_case(
                "add_add_row",
                vec![
                    ("a", mat(3, 4, 40, -1.0, 1.0)),
                    ("b", mat(3, 4, 41, -1.0, 1.0)),
                    ("bias", mat(1, 4, 42, -1.0, 1.0)),
                ],
                &|g, s, ids| {
                    let a = g.param(s, ids[0]);
                    let b = g.param(s, ids[1]);
                    let bias = g.param(s, ids[2]);
                    let y = g.add_add_row(a, b, bias);
                    square_mean(g, y)
                },
                None,
            )
        }),
        ("masked_group_mean", || {
            check_case(
                "masked_group_mean",
                vec![("w", mat(6, 3, 43, -1.0, 1.0))],
                &|g, s, ids| {
                    let w = g.param(s, ids[0]);
                    let mask = Matrix::from_vec(6, 1, vec![1.0, 0.0, 1.0, 1.0, 1.0, 0.0]);
                    let scale = Matrix::from_vec(2, 1, vec![0.5, 1.0]);
                    let y = g.masked_group_mean(w, &mask, &scale, 3);
                    square_mean(g, y)
                },
                None,
            )
        }),
        ("mean", || {
            check_case(
                "mean",
                vec![("w", mat(3, 3, 44, -1.0, 1.0))],
                &|g, s, ids| {
                    let w = g.param(s, ids[0]);
                    let sq = g.mul(w, w);
                    g.mean(sq)
                },
                None,
            )
        }),
        ("mse_loss", || {
            check_case(
                "mse_loss",
                vec![
                    ("a", mat(3, 3, 45, -1.0, 1.0)),
                    ("b", mat(3, 3, 46, -1.0, 1.0)),
                ],
                &|g, s, ids| {
                    let a = g.param(s, ids[0]);
                    let b = g.param(s, ids[1]);
                    g.mse_loss(a, b)
                },
                None,
            )
        }),
        ("bce_with_logits", || {
            check_case(
                "bce_with_logits",
                vec![("w", mat(4, 1, 47, -2.0, 2.0))],
                &|g, s, ids| {
                    let w = g.param(s, ids[0]);
                    g.bce_with_logits(w, Matrix::from_vec(4, 1, vec![1.0, 0.0, 1.0, 0.0]))
                },
                None,
            )
        }),
        ("weighted_sum", || {
            check_case(
                "weighted_sum",
                vec![
                    ("a", mat(2, 2, 48, -1.0, 1.0)),
                    ("b", mat(2, 2, 49, -1.0, 1.0)),
                ],
                &|g, s, ids| {
                    let a = g.param(s, ids[0]);
                    let b = g.param(s, ids[1]);
                    let ma = g.mean(a);
                    let sq = g.mul(b, b);
                    let mb = g.mean(sq);
                    g.weighted_sum(vec![(ma, 0.75), (mb, -1.25)])
                },
                None,
            )
        }),
        ("gaussian_nll", || {
            check_case(
                "gaussian_nll",
                vec![
                    ("mu", mat(2, 3, 50, -1.0, 1.0)),
                    ("sigma", mat(2, 3, 51, 0.5, 1.5)),
                ],
                &|g, s, ids| {
                    let mu = g.param(s, ids[0]);
                    let sigma = g.param(s, ids[1]);
                    g.gaussian_nll(mu, sigma, mat(2, 3, 52, -1.0, 1.0))
                },
                None,
            )
        }),
    ]
}

/// `mean(y ⊙ y)` — a loss that makes every element's gradient distinct,
/// catching transposed/misrouted backward rules a plain `mean` would
/// accept (its uniform gradient is blind to element permutations).
fn square_mean(g: &mut Graph, y: NodeId) -> NodeId {
    let sq = g.mul(y, y);
    g.mean(sq)
}

/// `NoisyRenorm` with its stop-gradient semantics: the analytic backward
/// treats the noise `n0 = u * rowmean(x0)` and the denominator
/// `rowsum(x0 + a*n0) + 1e-3` as constants of the base point, so the FD
/// reference must difference that frozen function, not the true forward.
fn noisy_renorm_case() -> CaseResult {
    let a = 0.1f32;
    let base = mat(3, 4, 39, 0.5, 1.5);
    let (rows, cols) = base.shape();
    let u = {
        let mut rng = gendt_nn::Rng::seed_from(53);
        Matrix::from_vec(
            rows,
            cols,
            (0..rows * cols).map(|_| rng.normal() as f32).collect(),
        )
    };
    // Freeze noise and denominator at the base point.
    let mut n0 = Matrix::zeros(rows, cols);
    let mut rden0 = vec![0.0f64; rows];
    for (r, rd) in rden0.iter_mut().enumerate() {
        let xr = &base.data[r * cols..(r + 1) * cols];
        let m = xr.iter().sum::<f32>() / cols as f32;
        let mut sp = 0.0f32;
        for (c, &xv) in xr.iter().enumerate() {
            n0.data[r * cols + c] = u.data[r * cols + c] * m;
            sp += xv + n0.data[r * cols + c] * a;
        }
        *rd = 1.0 / f64::from(sp + 1e-3);
    }
    let u_for_build = u.clone();
    let n0_fd = n0.clone();
    let fd = move |mats: &[&Matrix]| -> f64 {
        let x = mats[0];
        let mut acc = 0.0f64;
        for (r, &rd) in rden0.iter().enumerate() {
            let xr = &x.data[r * cols..(r + 1) * cols];
            let sx: f64 = xr.iter().map(|&v| f64::from(v)).sum();
            let ratio = (sx + 1e-3) * rd;
            for (c, &xv) in xr.iter().enumerate() {
                let p = f64::from(xv) + f64::from(n0_fd.data[r * cols + c]) * f64::from(a);
                acc += p * ratio;
            }
        }
        acc / (rows * cols) as f64
    };
    check_case(
        "noisy_renorm",
        vec![("x", base)],
        &move |g, s, ids| {
            let x = g.param(s, ids[0]);
            let y = g.noisy_renorm(x, a, &u_for_build);
            g.mean(y)
        },
        Some(&fd),
    )
}

/// Names of the gradcheck cases covering `op`.
///
/// Exhaustive on purpose: a new `Op` variant without an arm here — and
/// without its named cases present in [`all_cases`] (enforced by the
/// zoo coverage test) — cannot ship.
pub fn cases_for(op: &Op) -> &'static [&'static str] {
    match op {
        Op::Input => &["input_is_constant"],
        Op::Param(_) => &["param_leaf"],
        Op::MatMul(..) => &["matmul", "matmul_1x1"],
        Op::Add(..) => &["add"],
        Op::Sub(..) => &["sub"],
        Op::Mul(..) => &["mul"],
        Op::AddRow(..) => &["add_row"],
        Op::MulCol(..) => &["mul_col"],
        Op::Scale(..) => &["scale"],
        Op::Offset(..) => &["offset"],
        Op::Sigmoid(_) => &["sigmoid"],
        Op::Tanh(_) => &["tanh"],
        Op::LeakyRelu(..) => &["leaky_relu"],
        Op::Exp(_) => &["exp", "exp_large"],
        Op::Softplus(_) => &["softplus", "softplus_large"],
        Op::ConcatCols(..) => &["concat_cols"],
        Op::SliceCols(..) => &[
            "slice_cols_left_edge",
            "slice_cols_right_edge",
            "slice_cols_one_col",
        ],
        Op::SliceRows(..) => &[
            "slice_rows_top_edge",
            "slice_rows_bottom_edge",
            "slice_rows_one_row",
        ],
        Op::RowSum(_) => &["row_sum"],
        Op::SumRowGroups(..) => &["sum_row_groups", "sum_row_groups_whole"],
        Op::LstmCell { .. } => &["lstm_cell"],
        Op::NoisyRenorm { .. } => &["noisy_renorm"],
        Op::AddAddRow(..) => &["add_add_row"],
        Op::MaskedGroupMean { .. } => &["masked_group_mean"],
        Op::Mean(_) => &["mean"],
        Op::MseLoss(..) => &["mse_loss"],
        Op::BceWithLogits(..) => &["bce_with_logits"],
        Op::WeightedSum(_) => &["weighted_sum"],
        Op::GaussianNll { .. } => &["gaussian_nll"],
    }
}

/// Run every registered case and return the results in registry order.
pub fn run_all() -> Vec<CaseResult> {
    all_cases().into_iter().map(|(_, f)| f()).collect()
}
