//! `gendt-audit` CLI: run the verification layer from the command line
//! (and from `scripts/ci.sh`).
//!
//! ```text
//! cargo run --release -p gendt-audit -- gradcheck   # FD-check every Op backward
//! cargo run --release -p gendt-audit -- lint [ROOT] # repo-invariant source lint
//! cargo run --release -p gendt-audit -- verify      # tape-verify zoo + a real training graph
//! cargo run --release -p gendt-audit -- smoke       # sanitized train step + generation
//! cargo run --release -p gendt-audit -- all         # everything above
//! ```
//!
//! Exit status is nonzero when any check fails, so CI can gate on it.

#![forbid(unsafe_code)]

use gendt_audit::{gradcheck, lint, tape, zoo};
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("all");
    let ok = match cmd {
        "gradcheck" => run_gradcheck(),
        "lint" => run_lint(args.get(1).map(String::as_str).unwrap_or(".")),
        "verify" => run_verify(),
        "smoke" => run_smoke(),
        "all" => {
            // Non-short-circuiting: report every failing check at once.
            let l = run_lint(".");
            let g = run_gradcheck();
            let v = run_verify();
            let s = run_smoke();
            l && g && v && s
        }
        other => {
            eprintln!("unknown subcommand `{other}` (expected gradcheck|lint|verify|smoke|all)");
            false
        }
    };
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn run_gradcheck() -> bool {
    println!("== gradcheck: every Op backward vs central finite differences ==");
    let results = gradcheck::run_all();
    let mut ok = true;
    for r in &results {
        let status = if r.passed { "ok  " } else { "FAIL" };
        println!(
            "  [{status}] {:<24} max_rel_err {:>10.3e}",
            r.name, r.max_rel_err
        );
        if !r.passed {
            println!("         {}", r.detail);
            ok = false;
        }
    }
    // Cross-check: every Op variant recorded by the zoo must map to
    // cases that actually ran.
    let z = zoo::build();
    let ran: Vec<&str> = results.iter().map(|r| r.name).collect();
    for id in z.graph.node_ids() {
        for &case in gradcheck::cases_for(z.graph.op(id)) {
            if !ran.contains(&case) {
                println!(
                    "  [FAIL] case `{case}` (op {}) is not in the registry",
                    z.graph.op(id).name()
                );
                ok = false;
            }
        }
    }
    println!(
        "gradcheck: {} cases, {}",
        results.len(),
        if ok { "all passed" } else { "FAILED" }
    );
    ok
}

fn run_lint(root: &str) -> bool {
    println!("== lint: repo invariants under {root} ==");
    let violations = lint::run(Path::new(root));
    for v in &violations {
        println!("  {v}");
    }
    println!(
        "lint: {}",
        if violations.is_empty() {
            "clean".to_string()
        } else {
            format!("{} violation(s)", violations.len())
        }
    );
    violations.is_empty()
}

fn run_verify() -> bool {
    println!("== verify: tape verifier on the zoo and a real training graph ==");
    let mut ok = true;

    let z = zoo::build();
    let report = tape::verify(&z.graph, Some(z.loss));
    ok &= print_report("zoo graph", &report);

    // A real recorded graph: one generator forward + loss, exactly the
    // tape a training step walks.
    let (graph, loss) = record_training_graph();
    let report = tape::verify(&graph, Some(loss));
    ok &= print_report("generator training graph", &report);
    ok
}

fn print_report(what: &str, report: &tape::TapeReport) -> bool {
    let errors = report.errors().count();
    let warnings = report.warnings().count();
    println!(
        "  {what}: {} nodes, {errors} error(s), {warnings} warning(s)",
        report.nodes
    );
    // Warnings on a real training graph are expected: outputs the trainer
    // reads via `g.value` (sigma means, carry state) look dead to the
    // tape. Cap the listing so CI logs stay readable.
    const MAX_SHOWN: usize = 12;
    for issue in report.issues.iter().take(MAX_SHOWN) {
        let tag = match issue.severity {
            tape::Severity::Error => "ERROR",
            tape::Severity::Warning => "warn ",
        };
        println!(
            "    [{tag}] node {} ({}): {}",
            issue.node, issue.op, issue.message
        );
    }
    if report.issues.len() > MAX_SHOWN {
        println!("    ... and {} more", report.issues.len() - MAX_SHOWN);
    }
    report.is_consistent()
}

/// Record a small but real generator graph (forward + MSE loss) the way
/// `trainer.rs` does, so the verifier exercises production op patterns
/// (cell packing, LSTM unrolling, the Gaussian head), not just the zoo.
fn record_training_graph() -> (gendt_nn::Graph, gendt_nn::NodeId) {
    use gendt::{ArMode, CarryState, GenDtCfg};
    use gendt_data::{dataset_a, extract, windows, BuildCfg, ContextCfg, Kpi};
    use gendt_nn::{Graph, Matrix};

    let mut cfg = GenDtCfg::fast(4, 21);
    cfg.hidden = 8;
    cfg.resgen_hidden = 8;
    cfg.window.len = 8;
    cfg.window.stride = 8;
    cfg.window.max_cells = 2;
    let ds = dataset_a(&BuildCfg::quick(22));
    let run = &ds.runs[0];
    let ctx = extract(
        &ds.world,
        &ds.deployment,
        &run.traj,
        &ContextCfg {
            max_cells: 2,
            ..ContextCfg::default()
        },
    );
    let pool = windows(run, &ctx, &Kpi::DATASET_A, &cfg.window);
    assert!(
        !pool.is_empty(),
        "verify: synthetic dataset produced no windows"
    );
    let batch: Vec<&gendt_data::windows::Window> = pool.iter().take(2).collect();

    let mut rng = gendt_nn::Rng::seed_from(23);
    let model = gendt::GenDt::new(cfg.clone());
    let carry = CarryState::zeros(&cfg, batch.len());
    let mut g = Graph::new();
    let fwd = model.generator.forward(
        &mut g,
        &batch,
        &carry,
        ArMode::TeacherForced,
        true,
        &mut rng,
    );
    let mut terms = Vec::new();
    let n_ch = cfg.n_ch;
    for (t, &out) in fwd.outputs.iter().enumerate() {
        let mut target = Matrix::zeros(batch.len(), n_ch);
        for (bi, w) in batch.iter().enumerate() {
            for ch in 0..n_ch {
                target.data[bi * n_ch + ch] = w.targets[ch][t];
            }
        }
        let target = g.input(target);
        let mse = g.mse_loss(out, target);
        terms.push((mse, 1.0 / fwd.outputs.len() as f32));
    }
    let loss = g.weighted_sum(terms);
    (g, loss)
}

fn run_smoke() -> bool {
    use gendt::{generate_series, GenDt, GenDtCfg};
    use gendt_data::{dataset_a, extract, windows, BuildCfg, ContextCfg, Kpi};

    println!("== smoke: sanitized train step + generation ==");
    gendt_nn::set_sanitize(true);
    let mut cfg = GenDtCfg::fast(4, 31);
    cfg.hidden = 8;
    cfg.resgen_hidden = 8;
    cfg.disc_hidden = 6;
    cfg.window.len = 8;
    cfg.window.stride = 8;
    cfg.window.max_cells = 2;
    cfg.batch_size = 4;
    let ds = dataset_a(&BuildCfg::quick(32));
    let run = &ds.runs[0];
    let ctx = extract(
        &ds.world,
        &ds.deployment,
        &run.traj,
        &ContextCfg {
            max_cells: 2,
            ..ContextCfg::default()
        },
    );
    let pool = windows(run, &ctx, &Kpi::DATASET_A, &cfg.window);
    if pool.is_empty() {
        println!("smoke: FAILED (no training windows)");
        return false;
    }
    let mut model = GenDt::new(cfg);
    let trace = model.train_step(&pool);
    let series = generate_series(&mut model, &ctx, &Kpi::DATASET_A, false, 3);
    gendt_nn::set_sanitize(false);
    let ok = trace.mse.is_finite() && !series.is_empty();
    println!(
        "smoke: {} (mse {:.4}, {} generated steps, every op checked for NaN/Inf/shape)",
        if ok { "clean" } else { "FAILED" },
        trace.mse,
        series.len()
    );
    ok
}
