//! `gendt-audit` CLI: run the verification layer from the command line
//! (and from `scripts/ci.sh`).
//!
//! ```text
//! cargo run --release -p gendt-audit -- gradcheck   # FD-check every Op backward
//! cargo run --release -p gendt-audit -- lint [ROOT] # repo-invariant source lint
//! cargo run --release -p gendt-audit -- verify      # tape-verify zoo + a real training graph
//! cargo run --release -p gendt-audit -- smoke       # sanitized train step + generation
//! cargo run --release -p gendt-audit -- trace-smoke # traced run: bitwise parity + Chrome-trace JSON
//! cargo run --release -p gendt-audit -- plan-parity # compiled plans vs interpreted tape, bitwise
//! cargo run --release -p gendt-audit -- chaos       # server + trainer under seeded fault schedules
//! cargo run --release -p gendt-audit -- sync-check  # schedule-explore serve's concurrency + detector fixtures
//! cargo run --release -p gendt-audit -- obs-smoke   # fleet trace propagation + federation + flight recorder
//! cargo run --release -p gendt-audit -- stream-smoke # /v1/stream parity (interpreted + plans), deadline, drain
//! cargo run --release -p gendt-audit -- all         # everything above
//! ```
//!
//! Exit status is nonzero when any check fails, so CI can gate on it.

#![forbid(unsafe_code)]

use gendt_audit::{chaos, gradcheck, lint, obs_smoke, stream_smoke, sync_check, tape, zoo};
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    // Worker mode: obs-smoke spawns a fleet, whose supervisor re-execs
    // the current binary (this one) as its workers.
    if let Some(code) = gendt_fleet::supervisor::maybe_run_worker() {
        return ExitCode::from(code);
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("all");
    let ok = match cmd {
        "gradcheck" => run_gradcheck(),
        "lint" => run_lint(args.get(1).map(String::as_str).unwrap_or(".")),
        "verify" => run_verify(),
        "smoke" => run_smoke(),
        "trace-smoke" => run_trace_smoke(),
        "plan-parity" => run_plan_parity(),
        "chaos" => chaos::run(),
        "sync-check" => sync_check::run(),
        "obs-smoke" => obs_smoke::run(),
        "stream-smoke" => stream_smoke::run(),
        "all" => {
            // Non-short-circuiting: report every failing check at once.
            let l = run_lint(".");
            let g = run_gradcheck();
            let v = run_verify();
            let s = run_smoke();
            let t = run_trace_smoke();
            let p = run_plan_parity();
            let c = chaos::run();
            let y = sync_check::run();
            let o = obs_smoke::run();
            let m = stream_smoke::run();
            l && g && v && s && t && p && c && y && o && m
        }
        other => {
            eprintln!(
                "unknown subcommand `{other}` (expected gradcheck|lint|verify|smoke|trace-smoke|plan-parity|chaos|sync-check|obs-smoke|stream-smoke|all)"
            );
            false
        }
    };
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn run_gradcheck() -> bool {
    println!("== gradcheck: every Op backward vs central finite differences ==");
    let results = gradcheck::run_all();
    let mut ok = true;
    for r in &results {
        let status = if r.passed { "ok  " } else { "FAIL" };
        println!(
            "  [{status}] {:<24} max_rel_err {:>10.3e}",
            r.name, r.max_rel_err
        );
        if !r.passed {
            println!("         {}", r.detail);
            ok = false;
        }
    }
    // Cross-check: every Op variant recorded by the zoo must map to
    // cases that actually ran.
    let z = zoo::build();
    let ran: Vec<&str> = results.iter().map(|r| r.name).collect();
    for id in z.graph.node_ids() {
        for &case in gradcheck::cases_for(z.graph.op(id)) {
            if !ran.contains(&case) {
                println!(
                    "  [FAIL] case `{case}` (op {}) is not in the registry",
                    z.graph.op(id).name()
                );
                ok = false;
            }
        }
    }
    println!(
        "gradcheck: {} cases, {}",
        results.len(),
        if ok { "all passed" } else { "FAILED" }
    );
    ok
}

fn run_lint(root: &str) -> bool {
    println!("== lint: repo invariants under {root} ==");
    let violations = lint::run(Path::new(root));
    for v in &violations {
        println!("  {v}");
    }
    println!(
        "lint: {}",
        if violations.is_empty() {
            "clean".to_string()
        } else {
            format!("{} violation(s)", violations.len())
        }
    );
    violations.is_empty()
}

fn run_verify() -> bool {
    println!("== verify: tape verifier on the zoo and a real training graph ==");
    let mut ok = true;

    let z = zoo::build();
    let report = tape::verify(&z.graph, Some(z.loss));
    ok &= print_report("zoo graph", &report);

    // A real recorded graph: one generator forward + loss, exactly the
    // tape a training step walks.
    let (graph, loss) = record_training_graph();
    let report = tape::verify(&graph, Some(loss));
    ok &= print_report("generator training graph", &report);
    ok
}

fn print_report(what: &str, report: &tape::TapeReport) -> bool {
    let errors = report.errors().count();
    let warnings = report.warnings().count();
    println!(
        "  {what}: {} nodes, {errors} error(s), {warnings} warning(s)",
        report.nodes
    );
    // Warnings on a real training graph are expected: outputs the trainer
    // reads via `g.value` (sigma means, carry state) look dead to the
    // tape. Cap the listing so CI logs stay readable.
    const MAX_SHOWN: usize = 12;
    for issue in report.issues.iter().take(MAX_SHOWN) {
        let tag = match issue.severity {
            tape::Severity::Error => "ERROR",
            tape::Severity::Warning => "warn ",
        };
        println!(
            "    [{tag}] node {} ({}): {}",
            issue.node, issue.op, issue.message
        );
    }
    if report.issues.len() > MAX_SHOWN {
        println!("    ... and {} more", report.issues.len() - MAX_SHOWN);
    }
    report.is_consistent()
}

/// Record a small but real generator graph (forward + MSE loss) the way
/// `trainer.rs` does, so the verifier exercises production op patterns
/// (cell packing, LSTM unrolling, the Gaussian head), not just the zoo.
fn record_training_graph() -> (gendt_nn::Graph, gendt_nn::NodeId) {
    use gendt::{ArMode, CarryState, GenDtCfg};
    use gendt_data::{dataset_a, extract, windows, BuildCfg, ContextCfg, Kpi};
    use gendt_nn::{Graph, Matrix};

    let mut cfg = GenDtCfg::fast(4, 21);
    cfg.hidden = 8;
    cfg.resgen_hidden = 8;
    cfg.window.len = 8;
    cfg.window.stride = 8;
    cfg.window.max_cells = 2;
    let ds = dataset_a(&BuildCfg::quick(22));
    let run = &ds.runs[0];
    let ctx = extract(
        &ds.world,
        &ds.deployment,
        &run.traj,
        &ContextCfg {
            max_cells: 2,
            ..ContextCfg::default()
        },
    );
    let pool = windows(run, &ctx, &Kpi::DATASET_A, &cfg.window);
    assert!(
        !pool.is_empty(),
        "verify: synthetic dataset produced no windows"
    );
    let batch: Vec<&gendt_data::windows::Window> = pool.iter().take(2).collect();

    let mut rng = gendt_nn::Rng::seed_from(23);
    let model = gendt::GenDt::new(cfg.clone());
    let carry = CarryState::zeros(&cfg, batch.len());
    let mut g = Graph::new();
    let fwd = model.generator.forward(
        &mut g,
        &batch,
        &carry,
        ArMode::TeacherForced,
        true,
        &mut rng,
    );
    let mut terms = Vec::new();
    let n_ch = cfg.n_ch;
    for (t, &out) in fwd.outputs.iter().enumerate() {
        let mut target = Matrix::zeros(batch.len(), n_ch);
        for (bi, w) in batch.iter().enumerate() {
            for ch in 0..n_ch {
                target.data[bi * n_ch + ch] = w.targets[ch][t];
            }
        }
        let target = g.input(target);
        let mse = g.mse_loss(out, target);
        terms.push((mse, 1.0 / fwd.outputs.len() as f32));
    }
    let loss = g.weighted_sum(terms);
    (g, loss)
}

/// A CI-sized training workload: a tiny model config, one synthetic
/// run's context, and its window pool. `cfg_seed`/`data_seed` keep the
/// smoke and trace-smoke gates on independent inputs.
fn tiny_workload(
    cfg_seed: u64,
    data_seed: u64,
) -> Option<(
    gendt::GenDtCfg,
    gendt_data::RunContext,
    Vec<gendt_data::windows::Window>,
)> {
    use gendt::GenDtCfg;
    use gendt_data::{dataset_a, extract, windows, BuildCfg, ContextCfg, Kpi};

    let mut cfg = GenDtCfg::fast(4, cfg_seed);
    cfg.hidden = 8;
    cfg.resgen_hidden = 8;
    cfg.disc_hidden = 6;
    cfg.window.len = 8;
    cfg.window.stride = 8;
    cfg.window.max_cells = 2;
    cfg.batch_size = 4;
    let ds = dataset_a(&BuildCfg::quick(data_seed));
    let run = &ds.runs[0];
    let ctx = extract(
        &ds.world,
        &ds.deployment,
        &run.traj,
        &ContextCfg {
            max_cells: 2,
            ..ContextCfg::default()
        },
    );
    let pool = windows(run, &ctx, &Kpi::DATASET_A, &cfg.window);
    if pool.is_empty() {
        return None;
    }
    Some((cfg, ctx, pool))
}

fn run_smoke() -> bool {
    use gendt::{generate_series, GenDt};
    use gendt_data::Kpi;

    println!("== smoke: sanitized train step + generation ==");
    let Some((cfg, ctx, pool)) = tiny_workload(31, 32) else {
        println!("smoke: FAILED (no training windows)");
        return false;
    };
    gendt_nn::set_sanitize(true);
    let mut model = GenDt::new(cfg);
    let trace = model.train_step(&pool);
    let series = generate_series(&mut model, &ctx, &Kpi::DATASET_A, false, 3);
    gendt_nn::set_sanitize(false);
    let ok = trace.mse.is_finite() && !series.is_empty();
    println!(
        "smoke: {} (mse {:.4}, {} generated steps, every op checked for NaN/Inf/shape)",
        if ok { "clean" } else { "FAILED" },
        trace.mse,
        series.len()
    );
    ok
}

fn run_plan_parity() -> bool {
    use gendt::{generate_series, generate_series_batch, GenBatchItem, GenDt};
    use gendt_data::Kpi;

    println!("== plan-parity: compiled plans vs interpreted tape (bitwise) ==");
    let Some((mut cfg, ctx, pool)) = tiny_workload(51, 52) else {
        println!("plan-parity: FAILED (no training windows)");
        return false;
    };
    cfg.steps = 6;
    let mut ok = true;

    // Train the same seed twice: interpreted tape vs compiled plans.
    // Several steps so later steps replay cached plans, not fresh ones.
    let train = |plan: bool| {
        let mut model = GenDt::new(cfg.clone());
        model.set_plan_mode(plan);
        model.train(&pool);
        model
    };
    let mut tape = train(false);
    let mut plan = train(true);
    let weights = |m: &GenDt| -> Vec<Vec<f32>> {
        m.generator
            .store
            .iter()
            .chain(m.discriminator.store.iter())
            .map(|p| p.value.data.clone())
            .collect()
    };
    let w_eq = weights(&tape) == weights(&plan);
    let trace_eq = tape.trace.iter().map(|t| t.mse).collect::<Vec<_>>()
        == plan.trace.iter().map(|t| t.mse).collect::<Vec<_>>();
    println!(
        "  train: weights {}, trace {}",
        if w_eq { "bitwise-equal" } else { "DIVERGED" },
        if trace_eq {
            "bitwise-equal"
        } else {
            "DIVERGED"
        },
    );
    ok &= w_eq && trace_eq;

    // Generation: single-request and batched, compiled + cached replay.
    tape.set_plan_mode(false);
    let base = generate_series(&mut tape, &ctx, &Kpi::DATASET_A, false, 7);
    plan.set_plan_mode(true);
    let first = generate_series(&mut plan, &ctx, &Kpi::DATASET_A, false, 7);
    let replay = generate_series(&mut plan, &ctx, &Kpi::DATASET_A, false, 7);
    let gen_eq = base.series == first.series && base.series == replay.series;
    println!(
        "  generate: compiled + cached replay {}",
        if gen_eq { "bitwise-equal" } else { "DIVERGED" }
    );
    ok &= gen_eq;

    let items = [
        GenBatchItem { ctx: &ctx, seed: 8 },
        GenBatchItem { ctx: &ctx, seed: 9 },
    ];
    let b_base = generate_series_batch(&tape, &Kpi::DATASET_A, &items);
    let b_first = generate_series_batch(&plan, &Kpi::DATASET_A, &items);
    let b_replay = generate_series_batch(&plan, &Kpi::DATASET_A, &items);
    let batch_eq = (0..items.len())
        .all(|k| b_base[k].series == b_first[k].series && b_base[k].series == b_replay[k].series);
    println!(
        "  generate_series_batch: compiled + cached replay {}",
        if batch_eq {
            "bitwise-equal"
        } else {
            "DIVERGED"
        }
    );
    ok &= batch_eq;

    println!("plan-parity: {}", if ok { "clean" } else { "FAILED" });
    ok
}

/// Chrome-trace validation: parse `json` and check that each expected
/// name appears with the given category, that op-level events exist for
/// both autodiff phases, and that every event carries the mandatory
/// Trace Event Format fields.
fn check_chrome_trace(json: &str) -> Result<(), String> {
    let doc: serde::Value =
        serde_json::from_str(json).map_err(|e| format!("exported trace is not valid JSON: {e}"))?;
    let top = doc
        .as_map_for("trace document")
        .map_err(|e| e.to_string())?;
    let events = serde::map_field(top, "traceEvents", "trace document")
        .and_then(|v| v.as_seq_for("traceEvents"))
        .map_err(|e| e.to_string())?;
    if events.is_empty() {
        return Err("traceEvents is empty".to_string());
    }
    let mut seen: Vec<(String, String)> = Vec::new();
    for ev in events {
        let m = ev.as_map_for("trace event").map_err(|e| e.to_string())?;
        let name = serde::map_field(m, "name", "trace event")
            .and_then(|v| v.as_str_for("name"))
            .map_err(|e| e.to_string())?;
        let cat = serde::map_field(m, "cat", "trace event")
            .and_then(|v| v.as_str_for("cat"))
            .map_err(|e| e.to_string())?;
        for field in ["ph", "ts", "dur", "pid", "tid"] {
            serde::map_field(m, field, "trace event").map_err(|e| e.to_string())?;
        }
        seen.push((name.to_string(), cat.to_string()));
    }
    for (name, cat) in [("train_step", "span"), ("generate_series", "span")] {
        if !seen.iter().any(|(n, c)| n == name && c == cat) {
            return Err(format!("no `{name}` event with cat `{cat}`"));
        }
    }
    for cat in ["op", "op.bwd"] {
        if !seen.iter().any(|(_, c)| c == cat) {
            return Err(format!("no per-op tape event with cat `{cat}`"));
        }
    }
    Ok(())
}

/// Telemetry validation: every line must be a JSON object with a `kind`
/// field, and at least one `train_step` record must carry the loss
/// decomposition and gradient diagnostics.
fn check_telemetry(lines: &[String]) -> Result<(), String> {
    if lines.is_empty() {
        return Err("no telemetry records were emitted".to_string());
    }
    let mut saw_train_step = false;
    for line in lines {
        let doc: serde::Value = serde_json::from_str(line)
            .map_err(|e| format!("telemetry line is not valid JSON: {e} ({line})"))?;
        let m = doc
            .as_map_for("telemetry record")
            .map_err(|e| e.to_string())?;
        let kind = serde::map_field(m, "kind", "telemetry record")
            .and_then(|v| v.as_str_for("kind"))
            .map_err(|e| e.to_string())?;
        if kind == "train_step" {
            for field in [
                "l_mse",
                "lambda_l_js",
                "grad_norm_g",
                "update_norm_g",
                "u_model",
            ] {
                serde::map_field(m, field, "train_step record")
                    .and_then(|v| v.as_f64_for(field))
                    .map_err(|e| e.to_string())?;
            }
            saw_train_step = true;
        }
    }
    if !saw_train_step {
        return Err("no `train_step` telemetry record".to_string());
    }
    Ok(())
}

fn run_trace_smoke() -> bool {
    use gendt::{generate_series, GenDt};
    use gendt_data::Kpi;

    println!("== trace-smoke: traced train + generation, bitwise vs untraced ==");
    let Some((cfg, ctx, pool)) = tiny_workload(41, 42) else {
        println!("trace-smoke: FAILED (no training windows)");
        return false;
    };

    // Baseline with tracing off.
    gendt_trace::set_trace(false);
    let mut base = GenDt::new(cfg.clone());
    let base_step = base.train_step(&pool);
    let base_series = generate_series(&mut base, &ctx, &Kpi::DATASET_A, false, 3);

    // Same seeds with tracing on; clear every sink so the checks see
    // only this run.
    gendt_trace::set_trace(true);
    gendt_trace::reset_ops();
    let _ = gendt_trace::drain_spans();
    let _ = gendt_trace::take_telemetry();
    let mut traced = GenDt::new(cfg);
    let traced_step = traced.train_step(&pool);
    // Drain in two stages: each thread ring holds 16k events and a full
    // step's op flood could otherwise evict the training spans before
    // generation finishes.
    let (mut events, _) = gendt_trace::drain_spans();
    let traced_series = generate_series(&mut traced, &ctx, &Kpi::DATASET_A, false, 3);
    let (gen_events, _) = gendt_trace::drain_spans();
    events.extend(gen_events);
    let (telemetry, _) = gendt_trace::take_telemetry();
    gendt_trace::set_trace(false);

    let mut ok = true;

    // (1) Tracing must not perturb the math: bitwise-identical results.
    if base_step.mse.to_bits() != traced_step.mse.to_bits() {
        println!(
            "  [FAIL] train_step mse differs under tracing: {} vs {}",
            base_step.mse, traced_step.mse
        );
        ok = false;
    }
    let same_series = base_series.series.len() == traced_series.series.len()
        && base_series
            .series
            .iter()
            .zip(traced_series.series.iter())
            .all(|(a, b)| {
                a.len() == b.len()
                    && a.iter()
                        .zip(b.iter())
                        .all(|(x, y)| x.to_bits() == y.to_bits())
            });
    if !same_series {
        println!("  [FAIL] generated series is not bitwise-identical under tracing");
        ok = false;
    }

    // (2) The exported Chrome trace parses and holds the expected spans.
    let json = gendt_trace::chrome_trace_json(&events);
    let out_path = std::env::temp_dir().join("gendt-trace-smoke.json");
    if let Err(e) = std::fs::write(&out_path, &json) {
        println!("  [FAIL] writing {}: {e}", out_path.display());
        ok = false;
    }
    match check_chrome_trace(&json) {
        Ok(()) => println!(
            "  chrome trace: {} events -> {}",
            events.len(),
            out_path.display()
        ),
        Err(e) => {
            println!("  [FAIL] chrome trace: {e}");
            ok = false;
        }
    }

    // (3) Per-step JSONL telemetry with the loss decomposition.
    match check_telemetry(&telemetry) {
        Ok(()) => println!("  telemetry: {} record(s)", telemetry.len()),
        Err(e) => {
            println!("  [FAIL] telemetry: {e}");
            ok = false;
        }
    }

    // (4) The hot-op table attributed time to real tape ops.
    let table = gendt_trace::op_table();
    if table.is_empty() {
        println!("  [FAIL] op profiler recorded nothing");
        ok = false;
    } else {
        print!("{}", gendt_trace::render_op_table(&table));
    }
    gendt_trace::reset_ops();

    println!("trace-smoke: {}", if ok { "clean" } else { "FAILED" });
    ok
}
