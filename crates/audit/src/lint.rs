//! Repo-invariant source lint — plain file walking, no external deps.
//!
//! Four rule families, all cheap textual analysis over comment- and
//! string-stripped source:
//!
//! 1. **`unsafe-forbid`** — every crate root under `crates/*/src`
//!    (`lib.rs`, `main.rs`, `bin/*.rs`) carries `#![forbid(unsafe_code)]`.
//! 2. **`no-unwrap`** — no `.unwrap()` / `.expect(` in the hot autograd
//!    and training files or the serve request path outside
//!    `#[cfg(test)]`, and nowhere at all in the checkpoint modules
//!    (error paths there must propagate).
//! 3. **`determinism`** — no wall-clock or entropy sources
//!    (`SystemTime`, `Instant::now`, `thread_rng`, `from_entropy`,
//!    `rand::random`) in the training path or in serve's batch assembly
//!    (a served response must depend on seeds, never arrival timing),
//!    and no `HashMap` in the checkpoint modules (serialized output
//!    must iterate in a stable order — `BTreeMap` only).
//! 4. **`fused-bitwise`** — every fused tape op has a bitwise
//!    equivalence test in `graph.rs` (a test fn whose name contains the
//!    op name and `bitwise`), so fused rewrites stay provably identical
//!    to their unfused compositions.
//! 5. **`no-prints`** — no bare `println!` / `eprintln!` outside
//!    `#[cfg(test)]` in files whose console output is routed through the
//!    `gendt-trace` macros (`out!` / `info!` / `error!`), keeping
//!    verbosity env-controlled and quiet by default.
//! 6. **`error-taxonomy`** — the serve request path and the trainer
//!    checkpoint path speak [`gendt_faults::GendtError`] only: no
//!    `Result<_, String>` signatures (stringly errors erase the
//!    code/HTTP-status/exit-code mapping) and no raw `panic!` outside
//!    `#[cfg(test)]` (a panicking handler or checkpoint writer turns a
//!    recoverable fault into an outage).
//! 7. **`plan-no-alloc`** — no heap allocation (`Vec::new`,
//!    `with_capacity`, `vec!`, `Matrix::zeros`) in the compiled-plan
//!    step path of `crates/nn/src/plan.rs`, between the
//!    `// plan-lint: begin step path` and `// plan-lint: end step path`
//!    markers. The plan executor's whole point is zero allocation per
//!    replayed step; a line that must allocate (reference-kernel
//!    fallbacks) carries `// plan-lint: allow-alloc <why>`.
//! 8. **`sync-discipline`** — files migrated onto the `gendt-sync`
//!    facade never reach back into raw `std::sync` primitives
//!    (`Mutex`, `Condvar`, `RwLock`, `mpsc`, `atomic`, `Barrier`;
//!    `Arc` / `OnceLock` stay fine — the facade does not wrap them),
//!    and never poison-unwrap a lock with `.lock().unwrap()` — the
//!    facade's `lock()` returns the guard directly, so an unwrap there
//!    means the code bypassed the facade (and the model checker).
//! 9. **`atomic-ordering`** — in those same files, every relaxed
//!    atomic ordering (`Relaxed`, `Acquire`, `Release`, `AcqRel`)
//!    carries a `// sync:` justification in the same blank-line
//!    delimited paragraph, stating what the ordering pairs with or why
//!    none is needed. `SeqCst` needs no comment: it is the safe
//!    default, and weakening it is what requires an argument.
//! 10. **`trace-propagation`** — every `/v1` request-path entry point
//!     (the worker server and the fleet router) references
//!     `traceid::TRACE_HEADER` outside `#[cfg(test)]`: a handler file
//!     that never touches the `Gendt-Trace-Id` header drops the
//!     distributed trace context, orphaning its spans from the
//!     cross-process timeline `gendt-obs assemble` stitches.
//!
//! The vendored stand-ins under `vendor/` model *external* crates and
//! are deliberately out of scope.

use std::fmt;
use std::path::{Path, PathBuf};

/// One lint finding.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Rule family (`unsafe-forbid`, `no-unwrap`, `determinism`,
    /// `fused-bitwise`, `no-prints`, `error-taxonomy`, `plan-no-alloc`,
    /// `sync-discipline`, `atomic-ordering`, `trace-propagation`, or
    /// `lint-config` for missing targets).
    pub rule: &'static str,
    /// File the finding is in, relative to the linted root.
    pub file: String,
    /// 1-based line, or 0 for file-level findings.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {}:{}: {}",
            self.rule, self.file, self.line, self.message
        )
    }
}

/// Files where `.unwrap()` / `.expect(` are banned outside `#[cfg(test)]`.
/// The serve request-path files are held to the same bar: a panicking
/// handler thread takes its connection (or the whole scheduler) with it.
const NO_UNWRAP_NONTEST: &[&str] = &[
    "crates/nn/src/graph.rs",
    "crates/nn/src/kernels.rs",
    "crates/nn/src/matrix.rs",
    "crates/core/src/trainer.rs",
    "crates/serve/src/http.rs",
    "crates/serve/src/scheduler.rs",
    "crates/serve/src/server.rs",
    "crates/serve/src/batch.rs",
    // The session table sits inside every /v1/stream response; a panic
    // here takes the whole streaming connection pool down with it.
    "crates/serve/src/session.rs",
    // The fleet routing path: a panicking router connection thread
    // strands its client, and a panicking supervisor leaks workers.
    "crates/fleet/src/router.rs",
    "crates/fleet/src/forward.rs",
    "crates/fleet/src/membership.rs",
    "crates/fleet/src/supervisor.rs",
];

/// Files where `.unwrap()` / `.expect(` are banned everywhere, tests
/// included: checkpoint code is the error-propagation showcase.
const NO_UNWRAP_ANYWHERE: &[&str] = &[
    "crates/nn/src/checkpoint.rs",
    "crates/core/src/checkpoint.rs",
];

/// Training-path files where nondeterminism sources are banned.
const DETERMINISM_FILES: &[&str] = &[
    "crates/nn/src/graph.rs",
    "crates/nn/src/kernels.rs",
    "crates/nn/src/matrix.rs",
    "crates/nn/src/layers.rs",
    "crates/nn/src/params.rs",
    "crates/nn/src/threads.rs",
    "crates/nn/src/sanitize.rs",
    "crates/core/src/trainer.rs",
    "crates/core/src/generator.rs",
    "crates/core/src/generate.rs",
    // The batch assembly feeding generation must be clock-free, or a
    // served response could depend on arrival timing instead of seeds.
    "crates/serve/src/batch.rs",
];

/// Tokens that smell of wall clocks or ambient entropy.
const NONDET_TOKENS: &[&str] = &[
    "SystemTime",
    "Instant::now",
    "thread_rng",
    "from_entropy",
    "rand::random",
];

/// Files whose console output must flow through the `gendt-trace`
/// macros, so runs are quiet by default and `GENDT_LOG` controls
/// progress chatter. A bare print here bypasses that switch.
const NO_PRINT_FILES: &[&str] = &[
    "crates/core/src/trainer.rs",
    "crates/eval/src/main.rs",
    "crates/eval/src/harness.rs",
    "crates/bench/src/lib.rs",
    "crates/bench/src/bin/bench_kernels.rs",
];

/// Files that must speak the `GendtError` taxonomy: the serve request
/// path and the trainer checkpoint path. `Result<_, String>` loses the
/// code → HTTP-status / exit-code mapping, and a raw `panic!` outside
/// tests turns a recoverable fault into a dead handler thread or a
/// half-written checkpoint.
const ERROR_TAXONOMY_FILES: &[&str] = &[
    "crates/serve/src/http.rs",
    "crates/serve/src/scheduler.rs",
    "crates/serve/src/server.rs",
    "crates/serve/src/registry.rs",
    "crates/serve/src/api.rs",
    "crates/serve/src/session.rs",
    "crates/serve/src/bin/gendt_serve.rs",
    "crates/core/src/checkpoint.rs",
    "crates/core/src/bin/gendt_train.rs",
    // The fleet speaks the same envelope contract as the workers it
    // fronts; a stringly error here would leak an untyped 500 to
    // clients that were promised the taxonomy.
    "crates/fleet/src/router.rs",
    "crates/fleet/src/forward.rs",
    "crates/fleet/src/membership.rs",
    "crates/fleet/src/supervisor.rs",
    "crates/fleet/src/loadgen.rs",
    "crates/fleet/src/bin/gendt_fleet.rs",
];

/// Fused ops that must each have a `*bitwise*` equivalence test in
/// `graph.rs` proving them identical to their unfused composition.
const FUSED_OPS: &[&str] = &[
    "lstm_cell",
    "noisy_renorm",
    "add_add_row",
    "masked_group_mean",
    "sum_row_groups",
    "slice_rows",
];

/// Run every rule against the workspace rooted at `root`.
pub fn run(root: &Path) -> Vec<Violation> {
    let mut out = Vec::new();
    lint_unsafe_forbid(root, &mut out);
    lint_no_unwrap(root, &mut out);
    lint_determinism(root, &mut out);
    lint_fused_bitwise(root, &mut out);
    lint_no_prints(root, &mut out);
    lint_error_taxonomy(root, &mut out);
    lint_plan_no_alloc(root, &mut out);
    lint_sync_discipline(root, &mut out);
    lint_atomic_ordering(root, &mut out);
    lint_trace_propagation(root, &mut out);
    out
}

fn read(root: &Path, rel: &str) -> Option<String> {
    std::fs::read_to_string(root.join(rel)).ok()
}

fn missing(out: &mut Vec<Violation>, rule: &'static str, rel: &str) {
    out.push(Violation {
        rule: "lint-config",
        file: rel.to_string(),
        line: 0,
        message: format!("file named by the {rule} rule is missing"),
    });
}

fn line_of(text: &str, byte: usize) -> usize {
    text.as_bytes()
        .iter()
        .take(byte)
        .filter(|&&b| b == b'\n')
        .count()
        + 1
}

// ---------------------------------------------------------------------
// Source model: strip comments/strings, locate #[cfg(test)] regions
// ---------------------------------------------------------------------

/// Replace comments, string literals, and char literals with spaces
/// (newlines preserved), so token scans cannot be fooled by docs or
/// message text.
fn strip_source(src: &str) -> String {
    let b = src.as_bytes();
    let mut out = vec![b' '; b.len()];
    // Keep newlines so byte offsets still map to the original lines.
    for (i, &c) in b.iter().enumerate() {
        if c == b'\n' {
            out[i] = b'\n';
        }
    }
    let mut i = 0;
    let n = b.len();
    let copy = |out: &mut Vec<u8>, i: usize| {
        out[i] = b[i];
    };
    while i < n {
        match b[i] {
            b'/' if i + 1 < n && b[i + 1] == b'/' => {
                while i < n && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if i + 1 < n && b[i + 1] == b'*' => {
                let mut depth = 1;
                i += 2;
                while i < n && depth > 0 {
                    if i + 1 < n && b[i] == b'/' && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if i + 1 < n && b[i] == b'*' && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'"' => {
                i += 1;
                while i < n && b[i] != b'"' {
                    if b[i] == b'\\' {
                        i += 1;
                    }
                    i += 1;
                }
                i += 1;
            }
            b'r' if i + 1 < n && (b[i + 1] == b'"' || b[i + 1] == b'#') => {
                // Raw string r"..." / r#"..."#: count hashes, match the tail.
                let mut j = i + 1;
                let mut hashes = 0;
                while j < n && b[j] == b'#' {
                    hashes += 1;
                    j += 1;
                }
                if j < n && b[j] == b'"' {
                    j += 1;
                    'raw: while j < n {
                        if b[j] == b'"' {
                            let mut k = 0;
                            while k < hashes && j + 1 + k < n && b[j + 1 + k] == b'#' {
                                k += 1;
                            }
                            if k == hashes {
                                j += 1 + hashes;
                                break 'raw;
                            }
                        }
                        j += 1;
                    }
                    i = j;
                } else {
                    copy(&mut out, i);
                    i += 1;
                }
            }
            b'\'' => {
                // Char literal vs. lifetime: a closing quote within a
                // few bytes means a literal; otherwise leave the tick.
                let mut j = i + 1;
                if j < n && b[j] == b'\\' {
                    j += 2;
                    while j < n && b[j] != b'\'' && j < i + 12 {
                        j += 1; // \u{...}
                    }
                } else if j < n {
                    j += 1;
                }
                if j < n && b[j] == b'\'' {
                    i = j + 1;
                } else {
                    copy(&mut out, i);
                    i += 1;
                }
            }
            _ => {
                copy(&mut out, i);
                i += 1;
            }
        }
    }
    // Guaranteed valid: we only copied bytes at their original positions
    // or wrote ASCII spaces over complete multi-byte sequences.
    String::from_utf8_lossy(&out).into_owned()
}

/// Byte ranges covered by `#[cfg(test)]` items (mod or fn) in stripped
/// source: from the attribute to the close of the item's brace block.
fn test_regions(stripped: &str) -> Vec<(usize, usize)> {
    let b = stripped.as_bytes();
    let mut regions = Vec::new();
    let needle = "#[cfg(test)]";
    let mut from = 0;
    while let Some(pos) = stripped[from..].find(needle) {
        let start = from + pos;
        // Find the item's opening brace; a `;` first means a braceless
        // item (nothing to span).
        let mut i = start + needle.len();
        while i < b.len() && b[i] != b'{' && b[i] != b';' {
            i += 1;
        }
        if i < b.len() && b[i] == b'{' {
            let mut depth = 0usize;
            let mut j = i;
            while j < b.len() {
                match b[j] {
                    b'{' => depth += 1,
                    b'}' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            regions.push((start, j.min(b.len())));
            from = j.min(b.len());
        } else {
            from = i;
        }
    }
    regions
}

fn in_regions(regions: &[(usize, usize)], byte: usize) -> bool {
    regions.iter().any(|&(s, e)| byte >= s && byte <= e)
}

/// All byte offsets of `token` in `text`.
fn find_all(text: &str, token: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = text[from..].find(token) {
        out.push(from + pos);
        from += pos + token.len();
    }
    out
}

// ---------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------

fn crate_roots(root: &Path) -> Vec<PathBuf> {
    let mut roots = Vec::new();
    let crates_dir = root.join("crates");
    let Ok(entries) = std::fs::read_dir(&crates_dir) else {
        return roots;
    };
    let mut dirs: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    dirs.sort();
    for dir in dirs {
        let src = dir.join("src");
        for name in ["lib.rs", "main.rs"] {
            let p = src.join(name);
            if p.is_file() {
                roots.push(p);
            }
        }
        let bin = src.join("bin");
        if let Ok(bins) = std::fs::read_dir(&bin) {
            let mut files: Vec<PathBuf> = bins
                .flatten()
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|e| e == "rs"))
                .collect();
            files.sort();
            roots.extend(files);
        }
    }
    roots
}

fn rel_to(root: &Path, p: &Path) -> String {
    p.strip_prefix(root)
        .unwrap_or(p)
        .to_string_lossy()
        .replace('\\', "/")
}

fn lint_unsafe_forbid(root: &Path, out: &mut Vec<Violation>) {
    for p in crate_roots(root) {
        let rel = rel_to(root, &p);
        let Ok(src) = std::fs::read_to_string(&p) else {
            missing(out, "unsafe-forbid", &rel);
            continue;
        };
        if !strip_source(&src).contains("#![forbid(unsafe_code)]") {
            out.push(Violation {
                rule: "unsafe-forbid",
                file: rel,
                line: 1,
                message: "crate root lacks #![forbid(unsafe_code)]".into(),
            });
        }
    }
}

fn lint_no_unwrap(root: &Path, out: &mut Vec<Violation>) {
    for (&rel, tests_exempt) in NO_UNWRAP_NONTEST
        .iter()
        .map(|r| (r, true))
        .chain(NO_UNWRAP_ANYWHERE.iter().map(|r| (r, false)))
    {
        let Some(src) = read(root, rel) else {
            missing(out, "no-unwrap", rel);
            continue;
        };
        let stripped = strip_source(&src);
        let regions = if tests_exempt {
            test_regions(&stripped)
        } else {
            Vec::new()
        };
        for token in [".unwrap()", ".expect("] {
            for byte in find_all(&stripped, token) {
                if in_regions(&regions, byte) {
                    continue;
                }
                let scope = if tests_exempt {
                    "outside #[cfg(test)]"
                } else {
                    "anywhere"
                };
                out.push(Violation {
                    rule: "no-unwrap",
                    file: rel.to_string(),
                    line: line_of(&src, byte),
                    message: format!("{token} is banned {scope} in this file"),
                });
            }
        }
    }
}

fn lint_determinism(root: &Path, out: &mut Vec<Violation>) {
    for &rel in DETERMINISM_FILES {
        let Some(src) = read(root, rel) else {
            missing(out, "determinism", rel);
            continue;
        };
        let stripped = strip_source(&src);
        for &token in NONDET_TOKENS {
            for byte in find_all(&stripped, token) {
                out.push(Violation {
                    rule: "determinism",
                    file: rel.to_string(),
                    line: line_of(&src, byte),
                    message: format!("nondeterminism source `{token}` in a training path"),
                });
            }
        }
    }
    // Serialized checkpoint output must iterate stably: BTreeMap only.
    for &rel in NO_UNWRAP_ANYWHERE {
        let Some(src) = read(root, rel) else {
            continue; // already reported by no-unwrap
        };
        let stripped = strip_source(&src);
        for byte in find_all(&stripped, "HashMap") {
            out.push(Violation {
                rule: "determinism",
                file: rel.to_string(),
                line: line_of(&src, byte),
                message: "HashMap in checkpoint code: serialized output must use BTreeMap".into(),
            });
        }
    }
}

fn lint_no_prints(root: &Path, out: &mut Vec<Violation>) {
    for &rel in NO_PRINT_FILES {
        let Some(src) = read(root, rel) else {
            missing(out, "no-prints", rel);
            continue;
        };
        let stripped = strip_source(&src);
        let regions = test_regions(&stripped);
        // "println!" is a suffix of "eprintln!", so one token scan
        // covers both macros.
        for byte in find_all(&stripped, "println!") {
            if in_regions(&regions, byte) {
                continue;
            }
            out.push(Violation {
                rule: "no-prints",
                file: rel.to_string(),
                line: line_of(&src, byte),
                message: "bare print in a telemetry-routed file; use \
                          gendt_trace::{out!, info!, error!}"
                    .into(),
            });
        }
    }
}

/// Byte offsets of `Result<` tokens whose *error* type argument is
/// exactly `String`, found by matching the generic bracket nesting and
/// splitting the arguments at top-level commas. Catches
/// `Result<T, String>` for arbitrarily nested `T` without firing on
/// `Vec<(String, String)>` or map types.
fn result_string_offsets(stripped: &str) -> Vec<usize> {
    let b = stripped.as_bytes();
    let mut hits = Vec::new();
    for byte in find_all(stripped, "Result<") {
        // Token boundary: `IoResult<` or `result<` must not match.
        if byte > 0 {
            let prev = b[byte - 1];
            if prev.is_ascii_alphanumeric() || prev == b'_' {
                continue;
            }
        }
        let open = byte + "Result<".len() - 1;
        let mut depth = 0usize;
        let mut top_commas = Vec::new();
        let mut close = None;
        for (j, &c) in b.iter().enumerate().skip(open) {
            match c {
                b'<' | b'(' | b'[' => depth += 1,
                b'>' | b')' | b']' => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        close = Some(j);
                        break;
                    }
                }
                b',' if depth == 1 => top_commas.push(j),
                _ => {}
            }
        }
        let (Some(close), Some(&comma)) = (close, top_commas.first()) else {
            continue; // Result<T> alias or unclosed — not our shape
        };
        if stripped[comma + 1..close].trim() == "String" {
            hits.push(byte);
        }
    }
    hits
}

fn lint_error_taxonomy(root: &Path, out: &mut Vec<Violation>) {
    for &rel in ERROR_TAXONOMY_FILES {
        let Some(src) = read(root, rel) else {
            missing(out, "error-taxonomy", rel);
            continue;
        };
        let stripped = strip_source(&src);
        let regions = test_regions(&stripped);
        for byte in result_string_offsets(&stripped) {
            if in_regions(&regions, byte) {
                continue;
            }
            out.push(Violation {
                rule: "error-taxonomy",
                file: rel.to_string(),
                line: line_of(&src, byte),
                message: "Result<_, String> in a taxonomy file; use gendt_faults::GendtError"
                    .into(),
            });
        }
        for byte in find_all(&stripped, "panic!") {
            if in_regions(&regions, byte) {
                continue;
            }
            // Token boundary: `dont_panic!` must not match.
            if byte > 0 {
                let prev = stripped.as_bytes()[byte - 1];
                if prev.is_ascii_alphanumeric() || prev == b'_' {
                    continue;
                }
            }
            out.push(Violation {
                rule: "error-taxonomy",
                file: rel.to_string(),
                line: line_of(&src, byte),
                message: "raw panic! outside #[cfg(test)]; propagate a GendtError instead".into(),
            });
        }
    }
}

/// Allocation tokens banned inside the plan executor's step path.
const PLAN_ALLOC_TOKENS: &[&str] = &["Vec::new(", "with_capacity(", "vec!", "Matrix::zeros("];

/// The comment exempting one line from `plan-no-alloc` (must state why).
const PLAN_ALLOW: &str = "// plan-lint: allow-alloc";

fn lint_plan_no_alloc(root: &Path, out: &mut Vec<Violation>) {
    let rel = "crates/nn/src/plan.rs";
    let Some(src) = read(root, rel) else {
        missing(out, "plan-no-alloc", rel);
        return;
    };
    let begin = src.find("// plan-lint: begin step path");
    let end = src.find("// plan-lint: end step path");
    let (Some(begin), Some(end)) = (begin, end) else {
        out.push(Violation {
            rule: "plan-no-alloc",
            file: rel.to_string(),
            line: 0,
            message: "step-path markers missing \
                      (`// plan-lint: begin step path` / `// plan-lint: end step path`)"
                .into(),
        });
        return;
    };
    if end <= begin {
        out.push(Violation {
            rule: "plan-no-alloc",
            file: rel.to_string(),
            line: line_of(&src, end),
            message: "`end step path` marker precedes `begin step path`".into(),
        });
        return;
    }
    let stripped = strip_source(&src);
    let lines: Vec<&str> = src.lines().collect();
    for &token in PLAN_ALLOC_TOKENS {
        for byte in find_all(&stripped, token) {
            if byte < begin || byte > end {
                continue;
            }
            let line = line_of(&src, byte);
            if lines.get(line - 1).is_some_and(|l| l.contains(PLAN_ALLOW)) {
                continue;
            }
            out.push(Violation {
                rule: "plan-no-alloc",
                file: rel.to_string(),
                line,
                message: format!(
                    "heap allocation `{token}` inside the plan step path; \
                     hoist it into plan build, or justify it with \
                     `{PLAN_ALLOW} <why>` on the same line"
                ),
            });
        }
    }
}

fn lint_fused_bitwise(root: &Path, out: &mut Vec<Violation>) {
    let rel = "crates/nn/src/graph.rs";
    let Some(src) = read(root, rel) else {
        missing(out, "fused-bitwise", rel);
        return;
    };
    // Collect all fn names.
    let stripped = strip_source(&src);
    let mut fn_names: Vec<String> = Vec::new();
    for byte in find_all(&stripped, "fn ") {
        // Only match at a token boundary ("fn " preceded by non-ident).
        if byte > 0 {
            let prev = stripped.as_bytes()[byte - 1];
            if prev.is_ascii_alphanumeric() || prev == b'_' {
                continue;
            }
        }
        let name: String = stripped[byte + 3..]
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if !name.is_empty() {
            fn_names.push(name);
        }
    }
    for &op in FUSED_OPS {
        let covered = fn_names
            .iter()
            .any(|n| n.contains(op) && n.contains("bitwise"));
        if !covered {
            out.push(Violation {
                rule: "fused-bitwise",
                file: rel.to_string(),
                line: 0,
                message: format!(
                    "fused op `{op}` has no bitwise-equivalence test \
                     (expected a fn containing `{op}` and `bitwise`)"
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------
// Rules: sync-discipline / atomic-ordering — the gendt-sync facade
// ---------------------------------------------------------------------

/// Files migrated onto the `gendt-sync` facade. These are exactly the
/// modules `gendt-audit sync-check` model-checks; a raw `std::sync`
/// primitive here is invisible to the checker, so the proof would no
/// longer cover the shipped code.
const SYNC_FACADE_FILES: &[&str] = &[
    "crates/serve/src/scheduler.rs",
    "crates/serve/src/registry.rs",
    "crates/serve/src/cache.rs",
    "crates/serve/src/server.rs",
    "crates/serve/src/metrics.rs",
    // The stream session table: sync-check's session_churn model
    // explores exactly this module's lock and gauge updates.
    "crates/serve/src/session.rs",
    "crates/serve/src/bin/gendt_loadgen.rs",
    "crates/trace/src/lib.rs",
    "crates/trace/src/span.rs",
    "crates/trace/src/telemetry.rs",
    "crates/trace/src/oplog.rs",
    "crates/faults/src/inject.rs",
    "crates/nn/src/threads.rs",
    "crates/nn/src/sanitize.rs",
    "crates/nn/src/kernels.rs",
    "crates/nn/src/plan.rs",
    // The fleet router: membership/ring state and the forwarding path
    // are exactly what `sync-check fleet` explores.
    "crates/fleet/src/membership.rs",
    "crates/fleet/src/router.rs",
    "crates/fleet/src/metrics.rs",
    "crates/fleet/src/forward.rs",
    "crates/fleet/src/supervisor.rs",
    "crates/fleet/src/loadgen.rs",
    // Observability plumbing sits on every request path; its gates and
    // rings must stay visible to the interleaving checker.
    "crates/obs/src/traceid.rs",
    "crates/obs/src/flightrec.rs",
];

/// `std::sync` items that must come from `gendt_sync` instead. `Arc`
/// and `OnceLock` are deliberately absent: they carry no blocking
/// behavior for the scheduler to interpose on.
const SYNC_BANNED_ITEMS: &[&str] = &["Mutex", "Condvar", "RwLock", "mpsc", "atomic", "Barrier"];

/// Poison-unwrap suffixes banned outside `#[cfg(test)]` in facade
/// files. The facade's `lock()` / `read()` / `write()` return the
/// guard directly (poisoning is handled inside), so these compile only
/// against raw `std` locks.
const SYNC_POISON_UNWRAPS: &[&str] = &[
    ".lock().unwrap",
    ".lock().expect",
    ".read().unwrap",
    ".read().expect",
    ".write().unwrap",
    ".write().expect",
];

/// True when `word` occurs in `hay` bounded by non-identifier chars.
fn has_word(hay: &str, word: &str) -> bool {
    let b = hay.as_bytes();
    let is_ident = |c: u8| c.is_ascii_alphanumeric() || c == b'_';
    for off in find_all(hay, word) {
        let pre_ok = off == 0 || !is_ident(b[off - 1]);
        let post = off + word.len();
        let post_ok = post >= b.len() || !is_ident(b[post]);
        if pre_ok && post_ok {
            return true;
        }
    }
    false
}

fn lint_sync_discipline(root: &Path, out: &mut Vec<Violation>) {
    for &rel in SYNC_FACADE_FILES {
        let Some(src) = read(root, rel) else {
            missing(out, "sync-discipline", rel);
            continue;
        };
        let stripped = strip_source(&src);
        let tests = test_regions(&stripped);
        // Raw std::sync primitives, banned everywhere in the file
        // (tests included — they build against the same facade).
        for byte in find_all(&stripped, "std::sync") {
            // Scan to the end of the statement so multi-line
            // `use std::sync::{..}` groups are covered too.
            let span_end = stripped[byte..]
                .find(';')
                .map_or(stripped.len(), |i| byte + i);
            let span = &stripped[byte..span_end.min(byte + 300)];
            if let Some(item) = SYNC_BANNED_ITEMS.iter().find(|w| has_word(span, w)) {
                out.push(Violation {
                    rule: "sync-discipline",
                    file: rel.to_string(),
                    line: line_of(&stripped, byte),
                    message: format!(
                        "raw `std::sync::{item}` in a facade-migrated file; \
                         use the `gendt_sync` equivalent so \
                         `gendt-audit sync-check` can interpose on it"
                    ),
                });
            }
        }
        // Poison-unwraps, banned outside tests.
        for &tok in SYNC_POISON_UNWRAPS {
            for byte in find_all(&stripped, tok) {
                if in_regions(&tests, byte) {
                    continue;
                }
                out.push(Violation {
                    rule: "sync-discipline",
                    file: rel.to_string(),
                    line: line_of(&stripped, byte),
                    message: format!(
                        "`{tok}(..)` in a facade-migrated file; the facade's \
                         guard methods return the guard directly and absorb \
                         poisoning — this call bypasses them"
                    ),
                });
            }
        }
    }
}

/// Atomic orderings that demand a written pairing argument.
const RELAXED_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel"];

/// True when the blank-line delimited paragraph containing 1-based
/// `line` carries a `// sync:` comment on that line or above it.
fn paragraph_has_sync_comment(lines: &[&str], line: usize) -> bool {
    let mut i = line; // 1-based; inspect `lines[i - 1]` going upward
    while i >= 1 {
        let l = lines[i - 1];
        if l.trim().is_empty() {
            return false;
        }
        if l.contains("// sync:") {
            return true;
        }
        i -= 1;
    }
    false
}

fn lint_atomic_ordering(root: &Path, out: &mut Vec<Violation>) {
    for &rel in SYNC_FACADE_FILES {
        let Some(src) = read(root, rel) else {
            missing(out, "atomic-ordering", rel);
            continue;
        };
        let stripped = strip_source(&src);
        let tests = test_regions(&stripped);
        let lines: Vec<&str> = src.lines().collect();
        for byte in find_all(&stripped, "Ordering::") {
            if in_regions(&tests, byte) {
                continue;
            }
            let variant: String = stripped[byte + "Ordering::".len()..]
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            // Only atomic orderings; `SeqCst` (and `std::cmp::Ordering`
            // variants like `Less`) need no justification.
            if !RELAXED_ORDERINGS.contains(&variant.as_str()) {
                continue;
            }
            let line = line_of(&stripped, byte);
            if paragraph_has_sync_comment(&lines, line) {
                continue;
            }
            out.push(Violation {
                rule: "atomic-ordering",
                file: rel.to_string(),
                line,
                message: format!(
                    "`Ordering::{variant}` without a `// sync:` justification \
                     in its paragraph; state what the ordering pairs with \
                     (or why none is needed), or use `SeqCst`"
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------
// Rule: trace-propagation — /v1 handlers must thread Gendt-Trace-Id
// ---------------------------------------------------------------------

/// `/v1` request-path entry points. Each must reference
/// `traceid::TRACE_HEADER` (the `Gendt-Trace-Id` header) outside
/// `#[cfg(test)]`: a handler that never touches it drops the trace
/// context, so its spans fall out of the cross-process timeline.
const TRACE_PROP_FILES: &[&str] = &["crates/serve/src/server.rs", "crates/fleet/src/router.rs"];

fn lint_trace_propagation(root: &Path, out: &mut Vec<Violation>) {
    for &rel in TRACE_PROP_FILES {
        let Some(src) = read(root, rel) else {
            missing(out, "trace-propagation", rel);
            continue;
        };
        let stripped = strip_source(&src);
        let tests = test_regions(&stripped);
        let satisfied = find_all(&stripped, "TRACE_HEADER")
            .into_iter()
            .any(|byte| !in_regions(&tests, byte));
        if !satisfied {
            out.push(Violation {
                rule: "trace-propagation",
                file: rel.to_string(),
                line: 0,
                message: "`/v1` handler file never references \
                          `traceid::TRACE_HEADER`; propagate the \
                          `Gendt-Trace-Id` header through the request \
                          path so worker spans stay stitched to the \
                          router timeline"
                    .to_string(),
            });
        }
    }
}
