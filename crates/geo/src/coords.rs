//! Geographic and local planar coordinates.
//!
//! The simulator works in a local east-north ("XY", meters) frame for speed
//! and numeric stability; trajectories and cell records carry WGS-84
//! latitude/longitude because that is the schema drive-test tools and the
//! GenDT context pipeline use. A [`Projection`] converts between the two
//! with an equirectangular approximation, which is accurate to well under
//! a meter over the tens-of-kilometers regions we simulate.

use serde::{Deserialize, Serialize};

/// Mean Earth radius in meters (IUGG).
pub const EARTH_RADIUS_M: f64 = 6_371_008.8;

/// A WGS-84 latitude/longitude pair in degrees.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LatLon {
    /// Latitude in degrees, positive north.
    pub lat: f64,
    /// Longitude in degrees, positive east.
    pub lon: f64,
}

impl LatLon {
    /// Construct from degrees.
    pub fn new(lat: f64, lon: f64) -> Self {
        LatLon { lat, lon }
    }

    /// Great-circle distance to `other` in meters (haversine).
    pub fn haversine_m(&self, other: &LatLon) -> f64 {
        let (lat1, lon1) = (self.lat.to_radians(), self.lon.to_radians());
        let (lat2, lon2) = (other.lat.to_radians(), other.lon.to_radians());
        let dlat = lat2 - lat1;
        let dlon = lon2 - lon1;
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_M * a.sqrt().asin()
    }
}

/// A point in a local planar frame, meters east (`x`) and north (`y`) of
/// the projection origin.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct XY {
    /// Meters east of the origin.
    pub x: f64,
    /// Meters north of the origin.
    pub y: f64,
}

impl XY {
    /// Construct from meters.
    pub fn new(x: f64, y: f64) -> Self {
        XY { x, y }
    }

    /// Euclidean distance to `other` in meters.
    pub fn dist(&self, other: &XY) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }

    /// Bearing from this point to `other` in degrees clockwise from north,
    /// in `[0, 360)`.
    pub fn bearing_deg_to(&self, other: &XY) -> f64 {
        let ang = (other.x - self.x).atan2(other.y - self.y).to_degrees();
        (ang + 360.0) % 360.0
    }

    /// Linear interpolation between two points.
    pub fn lerp(&self, other: &XY, t: f64) -> XY {
        XY {
            x: self.x + (other.x - self.x) * t,
            y: self.y + (other.y - self.y) * t,
        }
    }
}

/// Equirectangular projection anchored at an origin latitude/longitude.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Projection {
    /// Origin of the local frame.
    pub origin: LatLon,
    cos_lat0: f64,
}

impl Projection {
    /// Projection centered at `origin`.
    pub fn new(origin: LatLon) -> Self {
        Projection {
            origin,
            cos_lat0: origin.lat.to_radians().cos(),
        }
    }

    /// Project a lat/lon into the local frame.
    pub fn to_xy(&self, p: LatLon) -> XY {
        let x = (p.lon - self.origin.lon).to_radians() * self.cos_lat0 * EARTH_RADIUS_M;
        let y = (p.lat - self.origin.lat).to_radians() * EARTH_RADIUS_M;
        XY { x, y }
    }

    /// Unproject a local point back to lat/lon.
    pub fn to_latlon(&self, p: XY) -> LatLon {
        let lat = self.origin.lat + (p.y / EARTH_RADIUS_M).to_degrees();
        let lon = self.origin.lon + (p.x / (EARTH_RADIUS_M * self.cos_lat0)).to_degrees();
        LatLon { lat, lon }
    }
}

/// Smallest absolute angular difference between two bearings in degrees,
/// in `[0, 180]`.
pub fn bearing_diff_deg(a: f64, b: f64) -> f64 {
    let d = (a - b).rem_euclid(360.0);
    if d > 180.0 {
        360.0 - d
    } else {
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn haversine_known_distance() {
        // ~111.19 km per degree of latitude at the equator.
        let a = LatLon::new(0.0, 0.0);
        let b = LatLon::new(1.0, 0.0);
        let d = a.haversine_m(&b);
        assert!((d - 111_195.0).abs() < 100.0, "got {d}");
    }

    #[test]
    fn projection_roundtrip() {
        let proj = Projection::new(LatLon::new(51.5, 7.46)); // Dortmund-ish
        let p = LatLon::new(51.52, 7.49);
        let xy = proj.to_xy(p);
        let back = proj.to_latlon(xy);
        assert!((back.lat - p.lat).abs() < 1e-9);
        assert!((back.lon - p.lon).abs() < 1e-9);
    }

    #[test]
    fn projection_matches_haversine_locally() {
        let proj = Projection::new(LatLon::new(51.5, 7.46));
        let p = LatLon::new(51.53, 7.50);
        let xy = proj.to_xy(p);
        let planar = (xy.x.powi(2) + xy.y.powi(2)).sqrt();
        let true_d = proj.origin.haversine_m(&p);
        assert!(
            (planar - true_d).abs() / true_d < 1e-3,
            "planar {planar} vs {true_d}"
        );
    }

    #[test]
    fn bearing_cardinal_directions() {
        let o = XY::new(0.0, 0.0);
        assert!((o.bearing_deg_to(&XY::new(0.0, 1.0)) - 0.0).abs() < 1e-9); // north
        assert!((o.bearing_deg_to(&XY::new(1.0, 0.0)) - 90.0).abs() < 1e-9); // east
        assert!((o.bearing_deg_to(&XY::new(0.0, -1.0)) - 180.0).abs() < 1e-9); // south
        assert!((o.bearing_deg_to(&XY::new(-1.0, 0.0)) - 270.0).abs() < 1e-9); // west
    }

    #[test]
    fn bearing_diff_wraps() {
        assert!((bearing_diff_deg(350.0, 10.0) - 20.0).abs() < 1e-9);
        assert!((bearing_diff_deg(10.0, 350.0) - 20.0).abs() < 1e-9);
        assert!((bearing_diff_deg(0.0, 180.0) - 180.0).abs() < 1e-9);
    }

    #[test]
    fn lerp_endpoints() {
        let a = XY::new(0.0, 0.0);
        let b = XY::new(10.0, 20.0);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        assert_eq!(a.lerp(&b, 0.5), XY::new(5.0, 10.0));
    }
}
