//! Procedural world generation.
//!
//! The paper's datasets come with real-world context: a cell database
//! (CellMapper), Urban Atlas land-use polygons, and OSM points of interest.
//! This module generates a synthetic but structurally equivalent world —
//! districts of different character, a land-use raster, PoI scatter, and a
//! cell-site plan whose density varies by district (paper Fig. 4) — from a
//! single seed, so the whole data pipeline downstream of "context lookup"
//! is exercised exactly as it would be with the real sources.

use crate::coords::{LatLon, Projection, XY};
use crate::landuse::{LandUse, PoiKind};
use gendt_rng::Rng;
use serde::{Deserialize, Serialize};

/// Character of a district; drives land use, PoI intensity, and cell
/// density.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DistrictKind {
    /// Dense city core: continuous urban fabric, many PoIs, dense cells.
    CityCenter,
    /// General urban fabric.
    Urban,
    /// Residential suburbs.
    Suburban,
    /// Industrial / commercial zones.
    Industrial,
    /// Parks and green areas.
    Park,
    /// Open rural land, crossed by highways.
    Rural,
}

impl DistrictKind {
    /// All district kinds.
    pub const ALL: [DistrictKind; 6] = [
        DistrictKind::CityCenter,
        DistrictKind::Urban,
        DistrictKind::Suburban,
        DistrictKind::Industrial,
        DistrictKind::Park,
        DistrictKind::Rural,
    ];

    /// Cell-site density in sites per km² (before sectorization).
    /// Calibrated so scenario-level cell densities match the shape of
    /// paper Fig. 4 (city center ~15-30/km², highway ~2-8/km²).
    pub fn site_density_per_km2(self) -> f64 {
        match self {
            DistrictKind::CityCenter => 9.0,
            DistrictKind::Urban => 5.0,
            DistrictKind::Suburban => 2.5,
            DistrictKind::Industrial => 3.5,
            DistrictKind::Park => 1.2,
            DistrictKind::Rural => 0.7,
        }
    }

    /// Land-use mixture for this district: `(class, weight)` pairs.
    fn land_use_mix(self) -> &'static [(LandUse, f64)] {
        match self {
            DistrictKind::CityCenter => &[
                (LandUse::ContinuousUrban, 0.55),
                (LandUse::HighDenseUrban, 0.25),
                (LandUse::IndustrialCommercial, 0.08),
                (LandUse::GreenUrban, 0.07),
                (LandUse::LeisureFacilities, 0.05),
            ],
            DistrictKind::Urban => &[
                (LandUse::HighDenseUrban, 0.35),
                (LandUse::MediumDenseUrban, 0.35),
                (LandUse::ContinuousUrban, 0.10),
                (LandUse::GreenUrban, 0.10),
                (LandUse::IndustrialCommercial, 0.10),
            ],
            DistrictKind::Suburban => &[
                (LandUse::MediumDenseUrban, 0.25),
                (LandUse::LowDenseUrban, 0.40),
                (LandUse::VeryLowDenseUrban, 0.20),
                (LandUse::GreenUrban, 0.10),
                (LandUse::LeisureFacilities, 0.05),
            ],
            DistrictKind::Industrial => &[
                (LandUse::IndustrialCommercial, 0.65),
                (LandUse::AirSeaPorts, 0.10),
                (LandUse::BarrenLands, 0.10),
                (LandUse::LowDenseUrban, 0.10),
                (LandUse::MediumDenseUrban, 0.05),
            ],
            DistrictKind::Park => &[
                (LandUse::GreenUrban, 0.60),
                (LandUse::LeisureFacilities, 0.15),
                (LandUse::Sea, 0.10),
                (LandUse::VeryLowDenseUrban, 0.10),
                (LandUse::IsolatedStructures, 0.05),
            ],
            DistrictKind::Rural => &[
                (LandUse::BarrenLands, 0.40),
                (LandUse::VeryLowDenseUrban, 0.20),
                (LandUse::IsolatedStructures, 0.20),
                (LandUse::GreenUrban, 0.15),
                (LandUse::LowDenseUrban, 0.05),
            ],
        }
    }

    /// PoI intensity per km² for each PoI kind.
    fn poi_intensity_per_km2(self, kind: PoiKind) -> f64 {
        use DistrictKind::*;
        use PoiKind::*;
        let base = match kind {
            Tourism => 3.0,
            Cafe => 8.0,
            Parking => 10.0,
            Restaurant => 12.0,
            PostPolice => 1.5,
            TrafficSignal => 15.0,
            Office => 10.0,
            PublicTransport => 12.0,
            Shop => 20.0,
            PrimaryRoads => 14.0,
            SecondaryRoads => 20.0,
            Motorways => 2.0,
            RailwayStations => 0.6,
            TramStops => 4.0,
        };
        let factor = match self {
            CityCenter => match kind {
                Motorways => 0.2,
                _ => 2.5,
            },
            Urban => 1.2,
            Suburban => match kind {
                Shop | Office | Cafe | Restaurant => 0.4,
                _ => 0.7,
            },
            Industrial => match kind {
                Office | Parking => 1.5,
                Shop | Cafe | Restaurant | Tourism => 0.3,
                _ => 0.6,
            },
            Park => match kind {
                Tourism => 1.0,
                _ => 0.2,
            },
            Rural => match kind {
                Motorways => 2.5,
                PrimaryRoads => 0.8,
                _ => 0.08,
            },
        };
        base * factor
    }
}

/// A point of interest.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Poi {
    /// Location in the local frame.
    pub pos: XY,
    /// What kind of PoI this is.
    pub kind: PoiKind,
}

/// A planned cell-site position (sectorization happens in `gendt-radio`).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SitePlan {
    /// Site location in the local frame.
    pub pos: XY,
    /// District the site serves (drives power/height defaults).
    pub district: DistrictKind,
}

/// A district seed: everything within the world is assigned to the nearest
/// seed (a Voronoi partition).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct District {
    /// Seed point of the Voronoi cell.
    pub center: XY,
    /// Character of the district.
    pub kind: DistrictKind,
}

/// World-generation configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WorldCfg {
    /// World half-extent in meters; the world covers
    /// `[-extent, extent] x [-extent, extent]`.
    pub extent_m: f64,
    /// Land-use raster cell size in meters.
    pub grid_m: f64,
    /// Number of district seeds of each kind: `(kind, count)`.
    pub districts: Vec<(DistrictKind, usize)>,
    /// Geographic anchor of the local frame.
    pub origin: LatLon,
    /// Seed for all procedural generation in the world.
    pub seed: u64,
}

impl WorldCfg {
    /// A compact single-city world (used for Dataset A): ~8 x 8 km.
    pub fn city(seed: u64) -> Self {
        WorldCfg {
            extent_m: 4_000.0,
            grid_m: 100.0,
            districts: vec![
                (DistrictKind::CityCenter, 2),
                (DistrictKind::Urban, 4),
                (DistrictKind::Suburban, 4),
                (DistrictKind::Industrial, 1),
                (DistrictKind::Park, 2),
            ],
            origin: LatLon::new(55.95, -3.19), // Edinburgh-like anchor
            seed,
        }
    }

    /// A wide multi-city region (used for Dataset B): ~40 x 40 km with
    /// rural corridors between urban pockets.
    pub fn region(seed: u64) -> Self {
        WorldCfg {
            extent_m: 20_000.0,
            grid_m: 250.0,
            districts: vec![
                (DistrictKind::CityCenter, 3),
                (DistrictKind::Urban, 6),
                (DistrictKind::Suburban, 8),
                (DistrictKind::Industrial, 3),
                (DistrictKind::Park, 4),
                (DistrictKind::Rural, 14),
            ],
            origin: LatLon::new(51.51, 7.47), // Dortmund-like anchor
            seed,
        }
    }
}

/// A generated world: districts, land-use raster, PoIs, and cell-site plan.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct World {
    /// The configuration the world was generated from.
    pub cfg: WorldCfg,
    /// Projection anchoring the local frame to lat/lon.
    pub projection: Projection,
    /// District seeds.
    pub districts: Vec<District>,
    /// Points of interest.
    pub pois: Vec<Poi>,
    /// Planned cell sites.
    pub sites: Vec<SitePlan>,
    grid_side: usize,
    land_use: Vec<LandUse>,
    poi_buckets: Vec<Vec<u32>>,
    bucket_m: f64,
    bucket_side: usize,
}

impl World {
    /// Generate a world from a configuration. Deterministic in `cfg.seed`.
    pub fn generate(cfg: WorldCfg) -> World {
        let mut rng = Rng::seed_from(cfg.seed);
        let projection = Projection::new(cfg.origin);

        // District seeds: uniformly scattered; city centers biased to the
        // middle so "downtown" sits near the origin.
        let mut districts = Vec::new();
        for &(kind, count) in &cfg.districts {
            for _ in 0..count {
                let spread = match kind {
                    DistrictKind::CityCenter => 0.35,
                    DistrictKind::Urban => 0.6,
                    _ => 1.0,
                };
                let x = rng.uniform(-cfg.extent_m * spread, cfg.extent_m * spread);
                let y = rng.uniform(-cfg.extent_m * spread, cfg.extent_m * spread);
                districts.push(District {
                    center: XY::new(x, y),
                    kind,
                });
            }
        }
        if districts.is_empty() {
            districts.push(District {
                center: XY::new(0.0, 0.0),
                kind: DistrictKind::Urban,
            });
        }

        // Land-use raster: each cell takes the mix of its district.
        let grid_side = ((2.0 * cfg.extent_m / cfg.grid_m).ceil() as usize).max(1);
        let mut land_use = Vec::with_capacity(grid_side * grid_side);
        for gy in 0..grid_side {
            for gx in 0..grid_side {
                let x = -cfg.extent_m + (gx as f64 + 0.5) * cfg.grid_m;
                let y = -cfg.extent_m + (gy as f64 + 0.5) * cfg.grid_m;
                let kind = nearest_district(&districts, XY::new(x, y)).kind;
                land_use.push(sample_mix(kind.land_use_mix(), &mut rng));
            }
        }

        // PoIs: Poisson scatter per district kind intensity, evaluated per
        // raster cell (so intensity follows the Voronoi partition).
        let cell_km2 = (cfg.grid_m / 1000.0).powi(2);
        let mut pois = Vec::new();
        for gy in 0..grid_side {
            for gx in 0..grid_side {
                let x0 = -cfg.extent_m + gx as f64 * cfg.grid_m;
                let y0 = -cfg.extent_m + gy as f64 * cfg.grid_m;
                let kind = nearest_district(
                    &districts,
                    XY::new(x0 + cfg.grid_m / 2.0, y0 + cfg.grid_m / 2.0),
                )
                .kind;
                for pk in PoiKind::ALL {
                    let lambda = kind.poi_intensity_per_km2(pk) * cell_km2;
                    let n = poisson(lambda, &mut rng);
                    for _ in 0..n {
                        let pos = XY::new(
                            x0 + rng.uniform01() * cfg.grid_m,
                            y0 + rng.uniform01() * cfg.grid_m,
                        );
                        pois.push(Poi { pos, kind: pk });
                    }
                }
            }
        }

        // Cell sites: Poisson per raster cell with a minimum separation to
        // avoid stacked sites.
        let mut sites: Vec<SitePlan> = Vec::new();
        let min_sep = cfg.grid_m * 0.8;
        for gy in 0..grid_side {
            for gx in 0..grid_side {
                let x0 = -cfg.extent_m + gx as f64 * cfg.grid_m;
                let y0 = -cfg.extent_m + gy as f64 * cfg.grid_m;
                let kind = nearest_district(
                    &districts,
                    XY::new(x0 + cfg.grid_m / 2.0, y0 + cfg.grid_m / 2.0),
                )
                .kind;
                let lambda = kind.site_density_per_km2() * cell_km2;
                let n = poisson(lambda, &mut rng);
                for _ in 0..n {
                    let pos = XY::new(
                        x0 + rng.uniform01() * cfg.grid_m,
                        y0 + rng.uniform01() * cfg.grid_m,
                    );
                    let too_close = sites
                        .iter()
                        .rev()
                        .take(64)
                        .any(|s| s.pos.dist(&pos) < min_sep);
                    if !too_close {
                        sites.push(SitePlan {
                            pos,
                            district: kind,
                        });
                    }
                }
            }
        }

        // Spatial index for PoI counting.
        let bucket_m = 500.0;
        let bucket_side = ((2.0 * cfg.extent_m / bucket_m).ceil() as usize).max(1);
        let mut poi_buckets = vec![Vec::new(); bucket_side * bucket_side];
        for (i, poi) in pois.iter().enumerate() {
            if let Some(b) = bucket_of(poi.pos, cfg.extent_m, bucket_m, bucket_side) {
                poi_buckets[b].push(i as u32);
            }
        }

        World {
            cfg,
            projection,
            districts,
            pois,
            sites,
            grid_side,
            land_use,
            poi_buckets,
            bucket_m,
            bucket_side,
        }
    }

    /// Land use at a point (clamped to the world bounds).
    pub fn land_use_at(&self, p: XY) -> LandUse {
        let gx = (((p.x + self.cfg.extent_m) / self.cfg.grid_m) as isize)
            .clamp(0, self.grid_side as isize - 1) as usize;
        let gy = (((p.y + self.cfg.extent_m) / self.cfg.grid_m) as isize)
            .clamp(0, self.grid_side as isize - 1) as usize;
        self.land_use[gy * self.grid_side + gx]
    }

    /// District kind at a point.
    pub fn district_kind_at(&self, p: XY) -> DistrictKind {
        nearest_district(&self.districts, p).kind
    }

    /// Environment-context vector at a point: 12 land-use area fractions
    /// followed by 14 PoI counts, all within `radius_m` (paper uses 500 m).
    pub fn env_context(&self, p: XY, radius_m: f64) -> Vec<f64> {
        let mut out = vec![0.0; LandUse::COUNT + PoiKind::COUNT];
        // Land-use fractions: sample raster cells whose centers fall in
        // the disc.
        let r_cells = (radius_m / self.cfg.grid_m).ceil() as isize + 1;
        let cgx = ((p.x + self.cfg.extent_m) / self.cfg.grid_m) as isize;
        let cgy = ((p.y + self.cfg.extent_m) / self.cfg.grid_m) as isize;
        let mut total = 0usize;
        for dy in -r_cells..=r_cells {
            for dx in -r_cells..=r_cells {
                let gx = cgx + dx;
                let gy = cgy + dy;
                if gx < 0
                    || gy < 0
                    || gx >= self.grid_side as isize
                    || gy >= self.grid_side as isize
                {
                    continue;
                }
                let cx = -self.cfg.extent_m + (gx as f64 + 0.5) * self.cfg.grid_m;
                let cy = -self.cfg.extent_m + (gy as f64 + 0.5) * self.cfg.grid_m;
                if p.dist(&XY::new(cx, cy)) <= radius_m {
                    let lu = self.land_use[gy as usize * self.grid_side + gx as usize];
                    out[lu.index()] += 1.0;
                    total += 1;
                }
            }
        }
        if total > 0 {
            for v in out.iter_mut().take(LandUse::COUNT) {
                *v /= total as f64;
            }
        }
        // PoI counts via the bucket index.
        let br = (radius_m / self.bucket_m).ceil() as isize + 1;
        let bx = ((p.x + self.cfg.extent_m) / self.bucket_m) as isize;
        let by = ((p.y + self.cfg.extent_m) / self.bucket_m) as isize;
        for dy in -br..=br {
            for dx in -br..=br {
                let gx = bx + dx;
                let gy = by + dy;
                if gx < 0
                    || gy < 0
                    || gx >= self.bucket_side as isize
                    || gy >= self.bucket_side as isize
                {
                    continue;
                }
                for &pi in &self.poi_buckets[gy as usize * self.bucket_side + gx as usize] {
                    let poi = self.pois[pi as usize];
                    if poi.pos.dist(&p) <= radius_m {
                        out[LandUse::COUNT + poi.kind.index()] += 1.0;
                    }
                }
            }
        }
        out
    }

    /// Number of planned sites within `radius_m` of a point.
    pub fn sites_within(&self, p: XY, radius_m: f64) -> usize {
        self.sites
            .iter()
            .filter(|s| s.pos.dist(&p) <= radius_m)
            .count()
    }

    /// Cell-site density (sites/km²) within `radius_m` of a point.
    pub fn site_density_at(&self, p: XY, radius_m: f64) -> f64 {
        let n = self.sites_within(p, radius_m);
        let area_km2 = std::f64::consts::PI * (radius_m / 1000.0).powi(2);
        n as f64 / area_km2
    }

    /// Convert a local point to lat/lon.
    pub fn to_latlon(&self, p: XY) -> LatLon {
        self.projection.to_latlon(p)
    }
}

fn nearest_district(districts: &[District], p: XY) -> District {
    *districts
        .iter()
        .min_by(|a, b| {
            a.center
                .dist(&p)
                .partial_cmp(&b.center.dist(&p))
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .expect("world has at least one district")
}

fn sample_mix(mix: &[(LandUse, f64)], rng: &mut Rng) -> LandUse {
    let total: f64 = mix.iter().map(|&(_, w)| w).sum();
    let mut r = rng.uniform01() * total;
    for &(lu, w) in mix {
        if r < w {
            return lu;
        }
        r -= w;
    }
    mix.last()
        .map(|&(lu, _)| lu)
        .unwrap_or(LandUse::BarrenLands)
}

/// Knuth Poisson sampler (lambda is always small here: per-raster-cell).
fn poisson(lambda: f64, rng: &mut Rng) -> usize {
    if lambda <= 0.0 {
        return 0;
    }
    let l = (-lambda).exp();
    let mut k = 0usize;
    let mut p = 1.0;
    loop {
        p *= rng.uniform01();
        if p <= l {
            return k;
        }
        k += 1;
        if k > 1000 {
            return k; // safety valve; unreachable for our lambdas
        }
    }
}

fn bucket_of(p: XY, extent: f64, bucket_m: f64, side: usize) -> Option<usize> {
    let gx = ((p.x + extent) / bucket_m) as isize;
    let gy = ((p.y + extent) / bucket_m) as isize;
    if gx < 0 || gy < 0 || gx >= side as isize || gy >= side as isize {
        return None;
    }
    Some(gy as usize * side + gx as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = World::generate(WorldCfg::city(7));
        let b = World::generate(WorldCfg::city(7));
        assert_eq!(a.sites.len(), b.sites.len());
        assert_eq!(a.pois.len(), b.pois.len());
        assert_eq!(
            a.land_use_at(XY::new(100.0, -250.0)),
            b.land_use_at(XY::new(100.0, -250.0))
        );
    }

    #[test]
    fn different_seeds_differ() {
        let a = World::generate(WorldCfg::city(1));
        let b = World::generate(WorldCfg::city(2));
        assert_ne!(a.pois.len(), b.pois.len());
    }

    #[test]
    fn city_has_reasonable_site_count() {
        let w = World::generate(WorldCfg::city(42));
        // 8x8 km = 64 km², densities 0.7..9 per km² -> expect hundreds.
        assert!(w.sites.len() > 50, "only {} sites", w.sites.len());
        assert!(w.sites.len() < 3000, "too many sites: {}", w.sites.len());
    }

    #[test]
    fn env_context_shape_and_landuse_fractions_sum_to_one() {
        let w = World::generate(WorldCfg::city(42));
        let ctx = w.env_context(XY::new(0.0, 0.0), 500.0);
        assert_eq!(ctx.len(), 26);
        let lu_sum: f64 = ctx[..12].iter().sum();
        assert!(
            (lu_sum - 1.0).abs() < 1e-9,
            "land-use fractions sum to {lu_sum}"
        );
        assert!(
            ctx[12..].iter().all(|&c| c >= 0.0 && c.fract() == 0.0),
            "PoI counts are counts"
        );
    }

    #[test]
    fn city_center_denser_than_rural() {
        let w = World::generate(WorldCfg::region(42));
        // Find one district center of each kind and compare local density.
        let cc = w
            .districts
            .iter()
            .find(|d| d.kind == DistrictKind::CityCenter)
            .unwrap()
            .center;
        let ru = w
            .districts
            .iter()
            .find(|d| d.kind == DistrictKind::Rural)
            .unwrap()
            .center;
        let d_cc = w.site_density_at(cc, 1500.0);
        let d_ru = w.site_density_at(ru, 1500.0);
        assert!(
            d_cc > d_ru,
            "city-center density {d_cc} should exceed rural {d_ru}"
        );
    }

    #[test]
    fn poi_counts_increase_with_radius() {
        let w = World::generate(WorldCfg::city(42));
        let small = w.env_context(XY::new(0.0, 0.0), 250.0);
        let large = w.env_context(XY::new(0.0, 0.0), 1000.0);
        let n_small: f64 = small[12..].iter().sum();
        let n_large: f64 = large[12..].iter().sum();
        assert!(n_large >= n_small);
    }

    #[test]
    fn sites_respect_min_separation_locally() {
        let w = World::generate(WorldCfg::city(3));
        // Spot-check consecutive site pairs (separation enforced within a
        // sliding window during generation).
        for pair in w.sites.windows(2) {
            assert!(pair[0].pos.dist(&pair[1].pos) >= 1.0);
        }
    }

    #[test]
    fn latlon_conversion_is_consistent() {
        let w = World::generate(WorldCfg::city(5));
        let p = XY::new(1234.0, -987.0);
        let ll = w.to_latlon(p);
        let back = w.projection.to_xy(ll);
        assert!(back.dist(&p) < 0.01);
    }
}
