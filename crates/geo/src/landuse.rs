//! Land-use classes and point-of-interest kinds making up the GenDT
//! environment context (paper §2.3.4, Table 11: 12 land-use attributes
//! from the Copernicus Urban Atlas plus 14 PoI attributes from OSM,
//! 26 attributes total).

use serde::{Deserialize, Serialize};

/// Urban-Atlas-style land-use classes (12, matching paper Table 11).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum LandUse {
    /// Continuous urban fabric (dense city core).
    ContinuousUrban = 0,
    /// High-density discontinuous urban fabric.
    HighDenseUrban = 1,
    /// Medium-density discontinuous urban fabric.
    MediumDenseUrban = 2,
    /// Low-density discontinuous urban fabric.
    LowDenseUrban = 3,
    /// Very-low-density urban fabric.
    VeryLowDenseUrban = 4,
    /// Isolated structures.
    IsolatedStructures = 5,
    /// Urban green areas (parks).
    GreenUrban = 6,
    /// Industrial, commercial, public and military units.
    IndustrialCommercial = 7,
    /// Airports and ports.
    AirSeaPorts = 8,
    /// Sports and leisure facilities.
    LeisureFacilities = 9,
    /// Barren / bare land.
    BarrenLands = 10,
    /// Water bodies.
    Sea = 11,
}

impl LandUse {
    /// All land-use classes in attribute order.
    pub const ALL: [LandUse; 12] = [
        LandUse::ContinuousUrban,
        LandUse::HighDenseUrban,
        LandUse::MediumDenseUrban,
        LandUse::LowDenseUrban,
        LandUse::VeryLowDenseUrban,
        LandUse::IsolatedStructures,
        LandUse::GreenUrban,
        LandUse::IndustrialCommercial,
        LandUse::AirSeaPorts,
        LandUse::LeisureFacilities,
        LandUse::BarrenLands,
        LandUse::Sea,
    ];

    /// Number of land-use classes.
    pub const COUNT: usize = 12;

    /// Stable attribute index of this class.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            LandUse::ContinuousUrban => "Continuous Urban",
            LandUse::HighDenseUrban => "High Dense Urban",
            LandUse::MediumDenseUrban => "Medium Dense Urban",
            LandUse::LowDenseUrban => "Low Dense Urban",
            LandUse::VeryLowDenseUrban => "Very-Low Dense Urban",
            LandUse::IsolatedStructures => "Isolated Structures",
            LandUse::GreenUrban => "Green Urban",
            LandUse::IndustrialCommercial => "Industrial/Commercial",
            LandUse::AirSeaPorts => "Air/Sea Ports",
            LandUse::LeisureFacilities => "Leisure Facilities",
            LandUse::BarrenLands => "Barren Lands",
            LandUse::Sea => "Sea",
        }
    }

    /// Typical excess pathloss character of this land use: a clutter factor
    /// in dB added on top of free-space-like propagation. Dense urban
    /// clutter attenuates more than open land.
    pub fn clutter_db(self) -> f64 {
        match self {
            LandUse::ContinuousUrban => 18.0,
            LandUse::HighDenseUrban => 14.0,
            LandUse::MediumDenseUrban => 10.0,
            LandUse::LowDenseUrban => 7.0,
            LandUse::VeryLowDenseUrban => 5.0,
            LandUse::IsolatedStructures => 3.0,
            LandUse::GreenUrban => 4.0,
            LandUse::IndustrialCommercial => 12.0,
            LandUse::AirSeaPorts => 2.0,
            LandUse::LeisureFacilities => 4.0,
            LandUse::BarrenLands => 0.0,
            LandUse::Sea => -2.0,
        }
    }
}

/// OSM-style point-of-interest kinds (14, matching paper Table 11).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum PoiKind {
    /// Tourist attractions.
    Tourism = 0,
    /// Cafes.
    Cafe = 1,
    /// Parking facilities.
    Parking = 2,
    /// Restaurants.
    Restaurant = 3,
    /// Post offices and police stations.
    PostPolice = 4,
    /// Traffic signals.
    TrafficSignal = 5,
    /// Offices.
    Office = 6,
    /// Public-transport stops.
    PublicTransport = 7,
    /// Shops.
    Shop = 8,
    /// Primary roads (represented as sampled points along the way).
    PrimaryRoads = 9,
    /// Secondary roads (sampled points).
    SecondaryRoads = 10,
    /// Motorways (sampled points).
    Motorways = 11,
    /// Railway stations.
    RailwayStations = 12,
    /// Tram stops.
    TramStops = 13,
}

impl PoiKind {
    /// All PoI kinds in attribute order.
    pub const ALL: [PoiKind; 14] = [
        PoiKind::Tourism,
        PoiKind::Cafe,
        PoiKind::Parking,
        PoiKind::Restaurant,
        PoiKind::PostPolice,
        PoiKind::TrafficSignal,
        PoiKind::Office,
        PoiKind::PublicTransport,
        PoiKind::Shop,
        PoiKind::PrimaryRoads,
        PoiKind::SecondaryRoads,
        PoiKind::Motorways,
        PoiKind::RailwayStations,
        PoiKind::TramStops,
    ];

    /// Number of PoI kinds.
    pub const COUNT: usize = 14;

    /// Stable attribute index of this kind (offset after land-use attrs in
    /// the 26-dim environment vector).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            PoiKind::Tourism => "Tourism",
            PoiKind::Cafe => "Cafe",
            PoiKind::Parking => "Parking",
            PoiKind::Restaurant => "Restaurant",
            PoiKind::PostPolice => "Post/Police",
            PoiKind::TrafficSignal => "Traffic Signal",
            PoiKind::Office => "Office",
            PoiKind::PublicTransport => "Public Transport",
            PoiKind::Shop => "Shop",
            PoiKind::PrimaryRoads => "Primary Roads",
            PoiKind::SecondaryRoads => "Secondary Roads",
            PoiKind::Motorways => "Motorways",
            PoiKind::RailwayStations => "Railway Stations",
            PoiKind::TramStops => "Tram Stops",
        }
    }
}

/// Total number of environment-context attributes (`N_g` in the paper).
pub const ENV_ATTRS: usize = LandUse::COUNT + PoiKind::COUNT;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribute_counts_match_paper() {
        assert_eq!(LandUse::COUNT, 12);
        assert_eq!(PoiKind::COUNT, 14);
        assert_eq!(ENV_ATTRS, 26);
    }

    #[test]
    fn indices_are_dense_and_stable() {
        for (i, lu) in LandUse::ALL.iter().enumerate() {
            assert_eq!(lu.index(), i);
        }
        for (i, pk) in PoiKind::ALL.iter().enumerate() {
            assert_eq!(pk.index(), i);
        }
    }

    #[test]
    fn dense_urban_clutters_more_than_open() {
        assert!(LandUse::ContinuousUrban.clutter_db() > LandUse::BarrenLands.clutter_db());
        assert!(LandUse::HighDenseUrban.clutter_db() > LandUse::GreenUrban.clutter_db());
    }
}
