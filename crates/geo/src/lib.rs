//! # gendt-geo — geography, procedural world, and trajectories
//!
//! Geographic substrate for the GenDT reproduction:
//!
//! * [`coords`] — WGS-84 lat/lon, a local east-north planar frame, and an
//!   equirectangular [`coords::Projection`] between them.
//! * [`landuse`] — the 26 environment-context attributes of the paper
//!   (12 Urban-Atlas land-use classes + 14 OSM PoI kinds).
//! * [`world`] — procedural world generation: districts, a land-use
//!   raster, PoI scatter, and a cell-site plan with district-dependent
//!   density (the synthetic stand-in for CellMapper / Urban Atlas / OSM).
//! * [`trajectory`] — drive-test route synthesis per measurement scenario
//!   (walk, bus, tram, city driving, highway) with OU speed dynamics.
//!
//! Everything is deterministic in an explicit `u64` seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coords;
pub mod landuse;
pub mod trajectory;
pub mod world;

pub use coords::{bearing_diff_deg, LatLon, Projection, XY};
pub use landuse::{LandUse, PoiKind, ENV_ATTRS};
pub use trajectory::{generate, generate_complex, Scenario, TrackPoint, Trajectory, TrajectoryCfg};
pub use world::{District, DistrictKind, Poi, SitePlan, World, WorldCfg};
