//! Drive-test trajectories.
//!
//! A trajectory is a timestamped sequence of device locations — exactly the
//! "input" of the GenDT pipeline (paper Fig. 5). This module synthesizes
//! realistic routes per measurement scenario (walk / bus / tram / city
//! driving / highway) with speed dynamics modeled as an Ornstein–Uhlenbeck
//! process around the scenario's mean speed, plus stop-and-go behaviour for
//! street-bound modes.

use crate::coords::XY;
use crate::world::World;
use gendt_rng::Rng;
use serde::{Deserialize, Serialize};

/// Measurement scenario, matching the cases of paper Tables 1–2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scenario {
    /// Pedestrian walk (Dataset A, ~1.4 m/s).
    Walk,
    /// Bus ride (Dataset A, ~5.6 m/s).
    Bus,
    /// Tram ride (Dataset A, ~11.5 m/s).
    Tram,
    /// Inner-city driving (Dataset B, ~9–10 m/s).
    CityDrive,
    /// Highway driving (Dataset B, ~27–31 m/s).
    Highway,
}

impl Scenario {
    /// All scenarios.
    pub const ALL: [Scenario; 5] = [
        Scenario::Walk,
        Scenario::Bus,
        Scenario::Tram,
        Scenario::CityDrive,
        Scenario::Highway,
    ];

    /// Mean speed in m/s (paper Tables 1–2).
    pub fn mean_speed(self) -> f64 {
        match self {
            Scenario::Walk => 1.4,
            Scenario::Bus => 5.6,
            Scenario::Tram => 11.5,
            Scenario::CityDrive => 9.5,
            Scenario::Highway => 29.0,
        }
    }

    /// Native measurement period in seconds. Dataset A tools sample at a
    /// consistent 1 s; Dataset B's Android Telephony API is coarser and
    /// varies by chipset (2.1–3.8 s in the paper).
    pub fn sample_period(self) -> f64 {
        match self {
            Scenario::Walk | Scenario::Bus | Scenario::Tram => 1.0,
            Scenario::CityDrive => 3.6,
            Scenario::Highway => 2.2,
        }
    }

    /// Probability per leg of a stop (traffic light / bus stop).
    fn stop_prob(self) -> f64 {
        match self {
            Scenario::Walk => 0.15,
            Scenario::Bus => 0.5,
            Scenario::Tram => 0.4,
            Scenario::CityDrive => 0.35,
            Scenario::Highway => 0.0,
        }
    }

    /// Typical leg length in meters between heading changes.
    fn leg_length(self) -> f64 {
        match self {
            Scenario::Walk => 120.0,
            Scenario::Bus => 300.0,
            Scenario::Tram => 500.0,
            Scenario::CityDrive => 250.0,
            Scenario::Highway => 2500.0,
        }
    }

    /// Maximum heading change per leg, degrees.
    fn turn_spread(self) -> f64 {
        match self {
            Scenario::Walk => 90.0,
            Scenario::Bus => 80.0,
            Scenario::Tram => 45.0,
            Scenario::CityDrive => 85.0,
            Scenario::Highway => 15.0,
        }
    }
}

/// A single trajectory point: time since trajectory start and location.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TrackPoint {
    /// Seconds since the start of the trajectory.
    pub t: f64,
    /// Location in the world's local frame.
    pub pos: XY,
    /// Instantaneous speed in m/s.
    pub speed: f64,
}

/// A timestamped route through the world.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Trajectory {
    /// The scenario the route was generated for.
    pub scenario: Scenario,
    /// Ordered track points at the scenario's sampling period.
    pub points: Vec<TrackPoint>,
}

impl Trajectory {
    /// Duration in seconds (0 for fewer than 2 points).
    pub fn duration(&self) -> f64 {
        match (self.points.first(), self.points.last()) {
            (Some(a), Some(b)) => b.t - a.t,
            _ => 0.0,
        }
    }

    /// Path length in meters.
    pub fn length_m(&self) -> f64 {
        self.points
            .windows(2)
            .map(|w| w[0].pos.dist(&w[1].pos))
            .sum()
    }

    /// Average speed over the trajectory, m/s.
    pub fn avg_speed(&self) -> f64 {
        let d = self.duration();
        if d <= 0.0 {
            0.0
        } else {
            self.length_m() / d
        }
    }

    /// Concatenate another trajectory after this one, shifting its
    /// timestamps to continue seamlessly. Used to build the paper's "long
    /// and complex" multi-scenario routes (§6.1.3).
    pub fn append(&mut self, other: &Trajectory) {
        let t0 = self.points.last().map(|p| p.t + 1.0).unwrap_or(0.0);
        let o0 = other.points.first().map(|p| p.t).unwrap_or(0.0);
        for p in &other.points {
            self.points.push(TrackPoint {
                t: t0 + (p.t - o0),
                pos: p.pos,
                speed: p.speed,
            });
        }
    }
}

/// Configuration for trajectory synthesis.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TrajectoryCfg {
    /// Scenario to generate.
    pub scenario: Scenario,
    /// Target duration in seconds.
    pub duration_s: f64,
    /// Starting location.
    pub start: XY,
    /// Initial heading in degrees (clockwise from north); randomized if
    /// `None`.
    pub heading_deg: Option<f64>,
    /// Jitter the sampling period by up to this fraction (Dataset B's
    /// Telephony API timing is irregular).
    pub period_jitter: f64,
    /// RNG seed.
    pub seed: u64,
}

impl TrajectoryCfg {
    /// Sensible defaults for a scenario starting at a point.
    pub fn new(scenario: Scenario, duration_s: f64, start: XY, seed: u64) -> Self {
        let period_jitter = match scenario {
            Scenario::CityDrive | Scenario::Highway => 0.2,
            _ => 0.0,
        };
        TrajectoryCfg {
            scenario,
            duration_s,
            start,
            heading_deg: None,
            period_jitter,
            seed,
        }
    }
}

/// Generate a trajectory inside `world` (soft-bounded: headings steer back
/// toward the interior when the route approaches the world edge).
pub fn generate(world: &World, cfg: &TrajectoryCfg) -> Trajectory {
    let mut rng = Rng::seed_from(cfg.seed);
    let sc = cfg.scenario;
    let mut heading = cfg.heading_deg.unwrap_or_else(|| rng.uniform(0.0, 360.0));
    let mut pos = cfg.start;
    let mut t = 0.0;
    let mut speed = sc.mean_speed();
    let mut leg_remaining = sc.leg_length() * (0.5 + rng.uniform01());
    let mut stop_remaining = 0.0f64;
    let mut points = Vec::new();
    let extent = world.cfg.extent_m;

    // OU speed process parameters: mean reversion over ~20 s, std ~15 % of
    // the mean speed.
    let theta = 0.05f64;
    let sigma = 0.15 * sc.mean_speed();

    while t <= cfg.duration_s {
        points.push(TrackPoint {
            t,
            pos,
            speed: if stop_remaining > 0.0 { 0.0 } else { speed },
        });

        let mut dt = sc.sample_period();
        if cfg.period_jitter > 0.0 {
            dt *= 1.0 + rng.uniform(-cfg.period_jitter, cfg.period_jitter);
        }

        if stop_remaining > 0.0 {
            stop_remaining -= dt;
            t += dt;
            continue;
        }

        // OU update on speed, floored at 10 % of mean speed.
        speed += theta * (sc.mean_speed() - speed) * dt + sigma * (dt.sqrt()) * rng.normal();
        speed = speed.clamp(0.1 * sc.mean_speed(), 1.5 * sc.mean_speed());

        // Advance along the heading.
        let dist = speed * dt;
        let rad = heading.to_radians();
        pos = XY::new(pos.x + dist * rad.sin(), pos.y + dist * rad.cos());
        leg_remaining -= dist;

        // Steer back toward the interior near the boundary.
        let margin = 0.92 * extent;
        if pos.x.abs() > margin || pos.y.abs() > margin {
            heading = pos.bearing_deg_to(&XY::new(0.0, 0.0)) + rng.uniform(-30.0, 30.0);
            leg_remaining = sc.leg_length();
        } else if leg_remaining <= 0.0 {
            // Turn at the end of a leg; street modes may stop.
            heading += rng.uniform(-sc.turn_spread(), sc.turn_spread());
            heading = heading.rem_euclid(360.0);
            leg_remaining = sc.leg_length() * (0.5 + rng.uniform01());
            if rng.bernoulli(sc.stop_prob()) {
                stop_remaining = rng.uniform(5.0, 30.0);
            }
        }

        t += dt;
    }

    Trajectory {
        scenario: sc,
        points,
    }
}

/// Generate a long route that chains several scenarios (city driving and
/// highway legs), reproducing the paper's §6.1.3 "long and complex"
/// trajectory spanning multiple cities.
pub fn generate_complex(
    world: &World,
    legs: &[(Scenario, f64)],
    start: XY,
    seed: u64,
) -> Trajectory {
    let mut rng = Rng::seed_from(seed);
    let mut out = Trajectory {
        scenario: legs.first().map(|l| l.0).unwrap_or(Scenario::CityDrive),
        points: Vec::new(),
    };
    let mut cur = start;
    for (i, &(sc, dur)) in legs.iter().enumerate() {
        let leg_seed = seed ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ rng.next_u64();
        let cfg = TrajectoryCfg::new(sc, dur, cur, leg_seed);
        let leg = generate(world, &cfg);
        cur = leg.points.last().map(|p| p.pos).unwrap_or(cur);
        if out.points.is_empty() {
            out = leg;
        } else {
            out.append(&leg);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{World, WorldCfg};

    fn test_world() -> World {
        World::generate(WorldCfg::city(1))
    }

    #[test]
    fn walk_speed_matches_scenario() {
        let w = test_world();
        let cfg = TrajectoryCfg::new(Scenario::Walk, 600.0, XY::new(0.0, 0.0), 42);
        let tr = generate(&w, &cfg);
        let v = tr.avg_speed();
        // Stops drag the average below the instantaneous mean.
        assert!(v > 0.6 && v < 1.8, "walk avg speed {v}");
    }

    #[test]
    fn highway_is_much_faster_than_walk() {
        let w = test_world();
        let walk = generate(
            &w,
            &TrajectoryCfg::new(Scenario::Walk, 300.0, XY::new(0.0, 0.0), 1),
        );
        let hwy = generate(
            &w,
            &TrajectoryCfg::new(Scenario::Highway, 300.0, XY::new(0.0, 0.0), 1),
        );
        assert!(hwy.avg_speed() > 5.0 * walk.avg_speed());
    }

    #[test]
    fn sample_period_respected_for_dataset_a() {
        let w = test_world();
        let tr = generate(
            &w,
            &TrajectoryCfg::new(Scenario::Tram, 120.0, XY::new(0.0, 0.0), 3),
        );
        for pair in tr.points.windows(2) {
            let dt = pair[1].t - pair[0].t;
            assert!((dt - 1.0).abs() < 1e-9, "tram dt {dt}");
        }
    }

    #[test]
    fn dataset_b_periods_are_jittered() {
        let w = test_world();
        let tr = generate(
            &w,
            &TrajectoryCfg::new(Scenario::Highway, 300.0, XY::new(0.0, 0.0), 3),
        );
        let dts: Vec<f64> = tr.points.windows(2).map(|p| p[1].t - p[0].t).collect();
        let min = dts.iter().cloned().fold(f64::MAX, f64::min);
        let max = dts.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max - min > 0.05, "expected jitter, got {min}..{max}");
    }

    #[test]
    fn trajectory_stays_inside_world() {
        let w = test_world();
        let tr = generate(
            &w,
            &TrajectoryCfg::new(Scenario::Highway, 2000.0, XY::new(3000.0, 3000.0), 9),
        );
        for p in &tr.points {
            assert!(
                p.pos.x.abs() <= w.cfg.extent_m * 1.05,
                "x escaped: {}",
                p.pos.x
            );
            assert!(
                p.pos.y.abs() <= w.cfg.extent_m * 1.05,
                "y escaped: {}",
                p.pos.y
            );
        }
    }

    #[test]
    fn determinism_per_seed() {
        let w = test_world();
        let cfg = TrajectoryCfg::new(Scenario::Bus, 200.0, XY::new(10.0, 10.0), 77);
        let a = generate(&w, &cfg);
        let b = generate(&w, &cfg);
        assert_eq!(a.points.len(), b.points.len());
        for (pa, pb) in a.points.iter().zip(b.points.iter()) {
            assert_eq!(pa.pos, pb.pos);
        }
    }

    #[test]
    fn complex_route_is_continuous() {
        let w = test_world();
        let tr = generate_complex(
            &w,
            &[
                (Scenario::CityDrive, 200.0),
                (Scenario::Highway, 300.0),
                (Scenario::CityDrive, 200.0),
            ],
            XY::new(0.0, 0.0),
            5,
        );
        assert!(tr.duration() >= 690.0, "duration {}", tr.duration());
        // Time strictly increases and positions don't jump unreasonably.
        for pair in tr.points.windows(2) {
            assert!(pair[1].t > pair[0].t);
            let dt = pair[1].t - pair[0].t;
            let jump = pair[0].pos.dist(&pair[1].pos);
            assert!(jump <= 45.0 * dt + 1.0, "jump {jump} m in {dt} s");
        }
    }

    #[test]
    fn append_shifts_time() {
        let mut a = Trajectory {
            scenario: Scenario::Walk,
            points: vec![TrackPoint {
                t: 0.0,
                pos: XY::new(0.0, 0.0),
                speed: 1.0,
            }],
        };
        let b = Trajectory {
            scenario: Scenario::Walk,
            points: vec![
                TrackPoint {
                    t: 10.0,
                    pos: XY::new(5.0, 0.0),
                    speed: 1.0,
                },
                TrackPoint {
                    t: 11.0,
                    pos: XY::new(6.0, 0.0),
                    speed: 1.0,
                },
            ],
        };
        a.append(&b);
        assert_eq!(a.points.len(), 3);
        assert!((a.points[1].t - 1.0).abs() < 1e-9);
        assert!((a.points[2].t - 2.0).abs() < 1e-9);
    }
}
