//! Deterministic random-number generation for the NN substrate.
//!
//! Every stochastic component in the workspace takes an explicit `u64` seed
//! so experiments are reproducible bit-for-bit. This wrapper fixes the
//! algorithm (xoshiro256**-style splitmix-seeded generator) rather than
//! depending on `StdRng`'s unspecified algorithm, so checkpoints and
//! regression baselines stay stable across `rand` upgrades.

#![forbid(unsafe_code)]

/// A small, fast, deterministic RNG.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Create an RNG from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        Rng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Derive an independent child RNG; useful for giving each model
    /// component its own stream.
    pub fn fork(&mut self, stream: u64) -> Rng {
        Rng::seed_from(self.next_u64() ^ stream.wrapping_mul(0xA24B_AED4_963E_E407))
    }

    /// Next raw 64-bit value (xoshiro256**).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)`.
    pub fn uniform01(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform01()
    }

    /// Standard normal via Box–Muller.
    pub fn normal(&mut self) -> f64 {
        // Reject u1 == 0 so ln() stays finite.
        let mut u1 = self.uniform01();
        while u1 <= f64::MIN_POSITIVE {
            u1 = self.uniform01();
        }
        let u2 = self.uniform01();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Normal with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, std: f64) -> f64 {
        mean + std * self.normal()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn gen_range(&mut self, n: usize) -> usize {
        assert!(n > 0, "gen_range(0)");
        (self.uniform01() * n as f64) as usize % n
    }

    /// Bernoulli draw with probability `p`.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.uniform01() < p
    }

    /// Snapshot the full generator state (for checkpoint/resume).
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuild a generator from a [`state`](Self::state) snapshot; the
    /// restored stream continues bit-for-bit where the snapshot was taken.
    pub fn from_state(s: [u64; 4]) -> Rng {
        Rng { s }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_range(i + 1);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Rng::seed_from(42);
        let mut b = Rng::seed_from(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from(1);
        let mut b = Rng::seed_from(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniform01_in_range_and_spread() {
        let mut rng = Rng::seed_from(7);
        let xs: Vec<f64> = (0..10_000).map(|_| rng.uniform01()).collect();
        assert!(xs.iter().all(|&x| (0.0..1.0).contains(&x)));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng::seed_from(11);
        let xs: Vec<f64> = (0..20_000).map(|_| rng.normal()).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn gen_range_covers_all_buckets() {
        let mut rng = Rng::seed_from(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::seed_from(5);
        let mut xs: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn state_roundtrip_resumes_bitwise() {
        let mut a = Rng::seed_from(21);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = Rng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn fork_gives_independent_stream() {
        let mut a = Rng::seed_from(9);
        let mut child = a.fork(1);
        // Parent continues its own sequence, child differs from it.
        assert_ne!(a.next_u64(), child.next_u64());
    }
}
