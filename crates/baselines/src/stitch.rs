//! Short-trajectory stitching baseline (paper Table 8 / Fig. 10).
//!
//! Generates data for a long trajectory by cutting it into short segments
//! (50 s / 100 s in the paper), generating each segment *independently*
//! (fresh carry state, fresh noise), and concatenating. The stitch points
//! break long-term temporal correlation and introduce the visible
//! artifacts the paper highlights, which is exactly what the comparison
//! against GenDT's carried-state generation measures.

use gendt::generate::{generate_series, GeneratedSeries};
use gendt::trainer::GenDt;
use gendt_data::context::RunContext;
use gendt_data::kpi_types::Kpi;

/// Generate a long series by independent short-segment generation.
///
/// `segment_steps` is the segment length in *samples* (the paper's 50 s /
/// 100 s at 1 Hz ≈ 50 / 100 samples). Each segment gets an independent
/// seed; within a segment GenDT still carries state normally.
pub fn generate_stitched(
    model: &mut GenDt,
    ctx: &RunContext,
    kpis: &[Kpi],
    segment_steps: usize,
    seed: u64,
) -> GeneratedSeries {
    assert!(segment_steps > 0, "segment length must be positive");
    let n = ctx.steps.len();
    let mut series: Vec<Vec<f64>> = vec![Vec::new(); kpis.len()];
    let mut start = 0usize;
    let mut k = 0u64;
    while start + segment_steps <= n {
        let sub = RunContext {
            steps: ctx.steps[start..start + segment_steps].to_vec(),
        };
        let out = generate_series(model, &sub, kpis, false, seed ^ ((k + 1) << 24));
        for (ch, s) in out.series.into_iter().enumerate() {
            series[ch].extend(s);
        }
        start += segment_steps;
        k += 1;
    }
    GeneratedSeries {
        kpis: kpis.to_vec(),
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gendt::cfg::GenDtCfg;
    use gendt_data::builders::{dataset_a, BuildCfg};
    use gendt_data::context::{extract, ContextCfg};
    use gendt_data::windows::windows as make_windows;

    #[test]
    fn stitched_series_covers_segments() {
        let mut cfg = GenDtCfg::fast(4, 5);
        cfg.hidden = 8;
        cfg.resgen_hidden = 8;
        cfg.disc_hidden = 4;
        cfg.window.len = 10;
        cfg.window.stride = 10;
        cfg.window.max_cells = 2;
        cfg.steps = 2;
        cfg.batch_size = 4;
        let ds = dataset_a(&BuildCfg::quick(73));
        let run = &ds.runs[0];
        let ctx = extract(
            &ds.world,
            &ds.deployment,
            &run.traj,
            &ContextCfg {
                max_cells: 2,
                ..ContextCfg::default()
            },
        );
        let pool = make_windows(run, &ctx, &Kpi::DATASET_A, &cfg.window);
        let mut model = GenDt::new(cfg);
        model.train(&pool);
        let out = generate_stitched(&mut model, &ctx, &Kpi::DATASET_A, 20, 3);
        // 20-step segments, each yielding 2 windows of 10.
        let expected = (ctx.steps.len() / 20) * 20;
        assert_eq!(out.len(), expected);
        assert!(out
            .channel(Kpi::Rsrp)
            .unwrap()
            .iter()
            .all(|v| v.is_finite()));
    }
}
