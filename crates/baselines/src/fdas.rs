//! Fit-Distribution-and-Sample (FDaS) baseline (paper §5.2).
//!
//! Fits the empirical distribution of each KPI over the training data
//! (ignoring time and context entirely) and generates series by i.i.d.
//! sampling from it. Competitive on the HWD metric when the test
//! distribution matches training, poor on MAE/DTW, and collapses when the
//! target trajectory's distribution differs from the training one
//! (paper §6.1.3).

use gendt_data::kpi_types::Kpi;
use gendt_rng::Rng;

/// The fitted per-KPI empirical distribution.
#[derive(Clone, Debug)]
pub struct Fdas {
    kpis: Vec<Kpi>,
    /// Sorted sample pool per KPI (inverse-CDF sampling).
    pools: Vec<Vec<f64>>,
}

impl Fdas {
    /// Fit on physical-unit training series, one `Vec<f64>` per KPI.
    ///
    /// # Panics
    /// Panics if a KPI's training series is empty.
    pub fn fit(kpis: &[Kpi], training: &[Vec<f64>]) -> Self {
        assert_eq!(kpis.len(), training.len(), "KPI/series count mismatch");
        let pools = training
            .iter()
            .map(|s| {
                assert!(!s.is_empty(), "FDaS needs non-empty training data");
                let mut v = s.clone();
                v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
                v
            })
            .collect();
        Fdas {
            kpis: kpis.to_vec(),
            pools,
        }
    }

    /// Generate `len` i.i.d. samples per KPI by inverse-CDF draws with
    /// linear interpolation between order statistics.
    pub fn generate(&self, len: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = Rng::seed_from(seed);
        self.pools
            .iter()
            .map(|pool| {
                (0..len)
                    .map(|_| gendt_metrics::quantile_sorted(pool, rng.uniform01()))
                    .collect()
            })
            .collect()
    }

    /// KPI channels in order.
    pub fn kpis(&self) -> &[Kpi] {
        &self.kpis
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_distribution_matches_training() {
        let train: Vec<f64> = (0..5000).map(|i| -100.0 + (i % 50) as f64).collect();
        let f = Fdas::fit(&[Kpi::Rsrp], std::slice::from_ref(&train));
        let gen = &f.generate(5000, 3)[0];
        let d = gendt_metrics::hwd(&train, gen);
        assert!(d < 1.0, "FDaS HWD {d}");
    }

    #[test]
    fn generated_series_has_no_temporal_structure() {
        // Autocorrelation of iid samples should be near zero even when the
        // training series was a smooth ramp.
        let train: Vec<f64> = (0..2000).map(|i| i as f64 / 20.0).collect();
        let f = Fdas::fit(&[Kpi::Sinr], &[train]);
        let gen = &f.generate(2000, 5)[0];
        let m = gendt_metrics::mean(gen);
        let var: f64 = gen.iter().map(|x| (x - m).powi(2)).sum::<f64>() / gen.len() as f64;
        let cov: f64 =
            gen.windows(2).map(|w| (w[0] - m) * (w[1] - m)).sum::<f64>() / (gen.len() - 1) as f64;
        assert!(
            (cov / var).abs() < 0.1,
            "unexpected autocorrelation {}",
            cov / var
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let f = Fdas::fit(&[Kpi::Rsrq], &[vec![-10.0, -12.0, -9.0, -15.0]]);
        assert_eq!(f.generate(10, 1), f.generate(10, 1));
        assert_ne!(f.generate(10, 1), f.generate(10, 2));
    }
}
