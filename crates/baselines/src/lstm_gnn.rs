//! LSTM-GNN prediction baseline (paper §5.2, after Tong et al. /
//! GraphSAGE-style GNN time-series models).
//!
//! Architecturally this is GenDT's first two components — the per-cell
//! LSTM and the aggregation LSTM — used as a deterministic *prediction*
//! model: no ResGen, no stochastic layers, no adversarial loss, no input
//! noise, and no overlapping-batch training. The reuse is deliberate: the
//! paper positions LSTM-GNN as "an alternative approach especially with
//! respect to the first two neural network components of GenDT".

use gendt::cfg::{Ablation, GenDtCfg};
use gendt::generate::{generate_series, GeneratedSeries};
use gendt::trainer::GenDt;
use gendt_data::context::RunContext;
use gendt_data::kpi_types::Kpi;
use gendt_data::windows::Window;

/// The LSTM-GNN baseline: a GenDT core with every GenDT innovation
/// disabled.
pub struct LstmGnn {
    model: GenDt,
}

impl LstmGnn {
    /// Build from a GenDT configuration template; the ablation switches
    /// and noise dimensions are overridden to the prediction-model form.
    pub fn new(template: &GenDtCfg) -> Self {
        let mut cfg = template.clone();
        cfg.ablation = Ablation {
            resgen: false,
            srnn: false,
            gan_loss: false,
            overlap_batching: false,
        };
        cfg.n_z0 = 0; // purely deterministic input
        LstmGnn {
            model: GenDt::new(cfg),
        }
    }

    /// Train on the window pool (MSE only).
    pub fn train(&mut self, pool: &[Window]) {
        self.model.train(pool);
    }

    /// Predict KPI series for a trajectory context.
    pub fn generate(&mut self, ctx: &RunContext, kpis: &[Kpi], seed: u64) -> GeneratedSeries {
        generate_series(&mut self.model, ctx, kpis, false, seed)
    }

    /// Access the inner model (tests, diagnostics).
    pub fn inner(&self) -> &GenDt {
        &self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gendt_data::builders::{dataset_a, BuildCfg};
    use gendt_data::context::{extract, ContextCfg};
    use gendt_data::windows::windows as make_windows;

    #[test]
    fn lstm_gnn_is_deterministic_given_seed() {
        let mut cfg = GenDtCfg::fast(4, 3);
        cfg.hidden = 8;
        cfg.resgen_hidden = 8;
        cfg.disc_hidden = 4;
        cfg.window.len = 10;
        cfg.window.stride = 10;
        cfg.window.max_cells = 2;
        cfg.steps = 3;
        cfg.batch_size = 4;
        let ds = dataset_a(&BuildCfg::quick(67));
        let ctx_cfg = ContextCfg {
            max_cells: 2,
            ..ContextCfg::default()
        };
        let run = &ds.runs[0];
        let ctx = extract(&ds.world, &ds.deployment, &run.traj, &ctx_cfg);
        let pool = make_windows(run, &ctx, &Kpi::DATASET_A, &cfg.training_window());
        let mut m = LstmGnn::new(&cfg);
        m.train(&pool);
        // No stochastic path: repeated generation with different seeds is
        // identical (the seeds only feed noise sources that are disabled).
        let a = m.generate(&ctx, &Kpi::DATASET_A, 1);
        let b = m.generate(&ctx, &Kpi::DATASET_A, 2);
        assert_eq!(a.series[0], b.series[0], "LSTM-GNN should be deterministic");
    }

    #[test]
    fn ablations_are_applied() {
        let cfg = GenDtCfg::fast(2, 1);
        let m = LstmGnn::new(&cfg);
        let a = m.inner().cfg().ablation;
        assert!(!a.resgen && !a.srnn && !a.gan_loss && !a.overlap_batching);
        assert_eq!(m.inner().cfg().n_z0, 0);
    }
}
