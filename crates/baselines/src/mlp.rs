//! Per-step MLP regression baseline (paper §5.2).
//!
//! Infers each KPI independently at each time step from the step's context
//! (environment attributes plus a fixed-size summary of the nearest
//! cells). No temporal model, no stochasticity — exactly the baseline's
//! documented weaknesses (poor HWD, intermediate MAE/DTW).

use gendt_data::context::{RunContext, StepContext, CELL_FEATS};
use gendt_data::kpi_types::Kpi;
use gendt_geo::landuse::ENV_ATTRS;
use gendt_nn::{Adam, Graph, Matrix, Mlp, ParamStore, Rng};

/// Number of nearest cells summarized in the feature vector.
const K_CELLS: usize = 3;

/// Feature dimension: environment + K nearest cells + visible count.
pub const MLP_FEATS: usize = ENV_ATTRS + K_CELLS * CELL_FEATS + 1;

/// The trained regression baseline.
pub struct MlpBaseline {
    kpis: Vec<Kpi>,
    store: ParamStore,
    net: Mlp,
    /// Training configuration: epochs over the pooled steps.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch: usize,
    rng: Rng,
}

/// Flatten a step context into the MLP feature vector.
pub fn step_features(step: &StepContext) -> Vec<f32> {
    let mut f = Vec::with_capacity(MLP_FEATS);
    f.extend_from_slice(&step.env);
    for k in 0..K_CELLS {
        match step.cells.get(k) {
            Some((_, feats)) => f.extend_from_slice(feats),
            None => f.extend_from_slice(&[0.0, 0.0, 0.0, 0.0, 1.0]),
        }
    }
    f.push((step.cells.len() as f32 / 10.0).min(2.0));
    f
}

impl MlpBaseline {
    /// Initialize with a `[features, 64, 64, n_kpis]` network.
    pub fn new(kpis: &[Kpi], hidden: usize, seed: u64) -> Self {
        let mut rng = Rng::seed_from(seed);
        let mut store = ParamStore::new();
        let net = Mlp::new(
            &mut store,
            "mlp",
            &[MLP_FEATS, hidden, hidden, kpis.len()],
            &mut rng,
        );
        MlpBaseline {
            kpis: kpis.to_vec(),
            store,
            net,
            epochs: 30,
            batch: 64,
            rng,
        }
    }

    /// Fit on pooled `(step context, physical KPI values)` pairs from the
    /// training runs.
    pub fn fit(&mut self, contexts: &[&RunContext], targets: &[Vec<Vec<f64>>]) {
        assert_eq!(
            contexts.len(),
            targets.len(),
            "context/target run count mismatch"
        );
        // Pool all steps.
        let mut xs: Vec<Vec<f32>> = Vec::new();
        let mut ys: Vec<Vec<f32>> = Vec::new();
        for (ctx, t) in contexts.iter().zip(targets.iter()) {
            assert_eq!(t.len(), self.kpis.len(), "target channel count mismatch");
            let n = ctx.steps.len();
            for (i, step) in ctx.steps.iter().enumerate() {
                if t.iter().any(|ch| ch.len() != n) {
                    continue;
                }
                xs.push(step_features(step));
                ys.push(
                    self.kpis
                        .iter()
                        .enumerate()
                        .map(|(ch, &k)| k.normalize(t[ch][i]))
                        .collect(),
                );
            }
        }
        if xs.is_empty() {
            return;
        }
        let mut opt = Adam::new(2e-3);
        let steps = self.epochs * xs.len().div_ceil(self.batch);
        for _ in 0..steps {
            let bsz = self.batch.min(xs.len());
            let mut xm = Matrix::zeros(bsz, MLP_FEATS);
            let mut ym = Matrix::zeros(bsz, self.kpis.len());
            for bi in 0..bsz {
                let idx = self.rng.gen_range(xs.len());
                xm.data[bi * MLP_FEATS..(bi + 1) * MLP_FEATS].copy_from_slice(&xs[idx]);
                ym.data[bi * self.kpis.len()..(bi + 1) * self.kpis.len()].copy_from_slice(&ys[idx]);
            }
            self.store.zero_grad();
            let mut g = Graph::new();
            let x = g.input(xm);
            let pred = self.net.forward(&mut g, &self.store, x);
            let target = g.input(ym);
            let loss = g.mse_loss(pred, target);
            g.backward(loss, &mut self.store);
            self.store.clip_grad_norm(5.0);
            opt.step(&mut self.store);
        }
    }

    /// Predict (deterministically) the KPI series for a trajectory
    /// context, in physical units: `[n_kpis][T]`.
    pub fn generate(&self, ctx: &RunContext) -> Vec<Vec<f64>> {
        let n = ctx.steps.len();
        let mut out = vec![Vec::with_capacity(n); self.kpis.len()];
        for step in &ctx.steps {
            let f = step_features(step);
            let mut g = Graph::new();
            let x = g.input(Matrix::from_vec(1, MLP_FEATS, f));
            let pred = self.net.forward(&mut g, &self.store, x);
            let v = g.value(pred);
            for (ch, &k) in self.kpis.iter().enumerate() {
                out[ch].push(k.denormalize(v.data[ch]));
            }
        }
        out
    }

    /// KPI channels in order.
    pub fn kpis(&self) -> &[Kpi] {
        &self.kpis
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gendt_data::builders::{dataset_a, BuildCfg};
    use gendt_data::context::{extract, ContextCfg};

    #[test]
    fn mlp_fits_context_dependent_signal() {
        let ds = dataset_a(&BuildCfg::quick(61));
        let ctx_cfg = ContextCfg::default();
        let ctxs: Vec<RunContext> = ds
            .runs
            .iter()
            .take(2)
            .map(|r| extract(&ds.world, &ds.deployment, &r.traj, &ctx_cfg))
            .collect();
        let ctx_refs: Vec<&RunContext> = ctxs.iter().collect();
        let targets: Vec<Vec<Vec<f64>>> = ds
            .runs
            .iter()
            .take(2)
            .map(|r| vec![r.series(Kpi::Rsrp), r.series(Kpi::Rsrq)])
            .collect();
        let mut mlp = MlpBaseline::new(&[Kpi::Rsrp, Kpi::Rsrq], 16, 3);
        mlp.epochs = 8;
        mlp.fit(&ctx_refs, &targets);
        let pred = mlp.generate(&ctxs[0]);
        assert_eq!(pred.len(), 2);
        assert_eq!(pred[0].len(), ctxs[0].steps.len());
        // Should beat a constant-at-midrange predictor on training data.
        let real = &targets[0][0];
        let mae_pred = gendt_metrics::mae(real, &pred[0]);
        let midrange = vec![-92.0; real.len()];
        let mae_mid = gendt_metrics::mae(real, &midrange);
        assert!(
            mae_pred < mae_mid,
            "MLP MAE {mae_pred} vs midrange {mae_mid}"
        );
    }

    #[test]
    fn prediction_is_deterministic() {
        let ds = dataset_a(&BuildCfg::quick(61));
        let ctx = extract(
            &ds.world,
            &ds.deployment,
            &ds.runs[0].traj,
            &ContextCfg::default(),
        );
        let mlp = MlpBaseline::new(&[Kpi::Rsrp], 8, 5);
        assert_eq!(mlp.generate(&ctx), mlp.generate(&ctx));
    }
}
