//! # gendt-baselines — comparison methods from the GenDT evaluation
//!
//! The baselines of paper §5.2, each implemented against the same data
//! pipeline as GenDT:
//!
//! * [`fdas::Fdas`] — fit-distribution-and-sample.
//! * [`mlp::MlpBaseline`] — per-step context→KPI regression.
//! * [`lstm_gnn::LstmGnn`] — GNN+LSTM *prediction* model (GenDT's first
//!   two components with every GenDT innovation disabled).
//! * [`dg::DoppelGanger`] — DoppelGANger, in both the original two-stage
//!   form and the paper's optimized "Real Context DG" variant.
//! * [`stitch::generate_stitched`] — independent short-segment generation
//!   (the Table-8 comparison).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dg;
pub mod fdas;
pub mod lstm_gnn;
pub mod mlp;
pub mod stitch;

pub use dg::{window_metadata, DgCfg, DgMode, DoppelGanger, META_DIM};
pub use fdas::Fdas;
pub use lstm_gnn::LstmGnn;
pub use mlp::{step_features, MlpBaseline, MLP_FEATS};
pub use stitch::generate_stitched;
