//! DoppelGANger (DG) baseline (paper §5.2 and Appendix B; after Lin et
//! al., IMC 2020) — a two-stage multivariate time-series GAN:
//!
//! 1. A **context (metadata) generator** maps noise to a static per-window
//!    metadata vector; an MLP discriminator trains it against real
//!    metadata (original DG only).
//! 2. A **time-series generator** — an LSTM conditioned on the (static)
//!    metadata plus per-step noise — produces the KPI window.
//!
//! Two operating modes mirror the paper's comparison:
//!
//! * [`DgMode::Original`] — generation uses *generated* metadata, so the
//!   output is unaligned with the target trajectory (poor MAE/DTW).
//! * [`DgMode::RealContext`] — the paper's optimized variant: stage 1 is
//!   bypassed and the real window metadata conditions stage 2 directly.
//!
//! Deviations from the original DG (documented in DESIGN.md): training
//! adds an MSE anchor alongside the adversarial loss — pure-GAN training
//! at the tiny scale used here diverges — and metadata is the window mean
//! of the environment context plus a 3-value cell summary rather than DG's
//! dataset-specific attributes. Neither changes DG's defining limitations
//! relative to GenDT: static per-window context and no dynamic cell set.

use gendt_data::context::RunContext;
use gendt_data::kpi_types::Kpi;
use gendt_data::windows::{Window, WindowCfg};
use gendt_geo::landuse::ENV_ATTRS;
use gendt_nn::{Adam, Graph, Linear, Lstm, LstmNodeState, Matrix, Mlp, NodeId, ParamStore, Rng};
use serde::{Deserialize, Serialize};

/// Metadata dimension: mean environment context + cell-count summary +
/// mean cell distance + mean cell power.
pub const META_DIM: usize = ENV_ATTRS + 3;

/// DG operating mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DgMode {
    /// Two-stage: metadata is generated from noise.
    Original,
    /// Metadata comes from the real context ("Real Context DG").
    RealContext,
}

/// DG configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DgCfg {
    /// Operating mode.
    pub mode: DgMode,
    /// KPI channels.
    pub n_ch: usize,
    /// LSTM hidden size.
    pub hidden: usize,
    /// Per-step noise dimension.
    pub n_z: usize,
    /// Window length (must match the windows used for training).
    pub window: WindowCfg,
    /// Training steps.
    pub steps: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adversarial weight on the generator loss.
    pub lambda_gan: f32,
    /// Seed.
    pub seed: u64,
}

impl DgCfg {
    /// Defaults sized like the `GenDtCfg::fast` models.
    pub fn fast(mode: DgMode, n_ch: usize, seed: u64) -> Self {
        DgCfg {
            mode,
            n_ch,
            hidden: 32,
            n_z: 4,
            window: WindowCfg {
                len: 30,
                stride: 30,
                max_cells: 6,
                ar_context: 4,
            },
            steps: 120,
            batch_size: 8,
            lambda_gan: 0.1,
            seed,
        }
    }
}

/// Compute a window's metadata vector: mean env context, mean cell count,
/// mean nearest-cell distance, mean cell power feature.
pub fn window_metadata(w: &Window) -> Vec<f32> {
    let l = w.env.len().max(1);
    let mut meta = vec![0.0f32; META_DIM];
    for step in &w.env {
        for (i, &v) in step.iter().enumerate() {
            meta[i] += v / l as f32;
        }
    }
    let n_cells = w.cells.len();
    meta[ENV_ATTRS] = n_cells as f32 / 10.0;
    if n_cells > 0 {
        let mut dist = 0.0;
        let mut pow = 0.0;
        for cell in &w.cells {
            for f in cell {
                dist += f[4] / (n_cells * l) as f32;
                pow += f[2] / (n_cells * l) as f32;
            }
        }
        meta[ENV_ATTRS + 1] = dist;
        meta[ENV_ATTRS + 2] = pow;
    }
    meta
}

/// Metadata for a slice of context steps (generation path).
fn ctx_metadata(ctx: &RunContext, start: usize, len: usize) -> Vec<f32> {
    let mut meta = vec![0.0f32; META_DIM];
    let steps = &ctx.steps[start..start + len];
    for s in steps {
        for (i, &v) in s.env.iter().enumerate() {
            meta[i] += v / len as f32;
        }
        meta[ENV_ATTRS] += s.cells.len() as f32 / (10.0 * len as f32);
        if !s.cells.is_empty() {
            let n = s.cells.len() as f32;
            meta[ENV_ATTRS + 1] +=
                s.cells.iter().map(|(_, f)| f[4]).sum::<f32>() / (n * len as f32);
            meta[ENV_ATTRS + 2] +=
                s.cells.iter().map(|(_, f)| f[2]).sum::<f32>() / (n * len as f32);
        }
    }
    meta
}

/// The DoppelGANger model.
pub struct DoppelGanger {
    /// Configuration.
    pub cfg: DgCfg,
    g_store: ParamStore,
    d_store: ParamStore,
    m_store: ParamStore,
    md_store: ParamStore,
    ts_lstm: Lstm,
    ts_head: Linear,
    ts_disc_lstm: Lstm,
    ts_disc_head: Linear,
    meta_gen: Mlp,
    meta_disc: Mlp,
    rng: Rng,
    /// Pool of real metadata (kept for the Original mode's stage-1
    /// training diagnostics).
    real_meta_seen: usize,
}

const META_NOISE: usize = 8;

impl DoppelGanger {
    /// Initialize an untrained DG.
    pub fn new(cfg: DgCfg) -> Self {
        let mut rng = Rng::seed_from(cfg.seed);
        let mut g_store = ParamStore::new();
        let ts_in = META_DIM + cfg.n_z;
        let ts_lstm = Lstm::new(&mut g_store, "dg_ts", ts_in, cfg.hidden, &mut rng);
        let ts_head = Linear::new(&mut g_store, "dg_head", cfg.hidden, cfg.n_ch, &mut rng);
        let mut d_store = ParamStore::new();
        let ts_disc_lstm = Lstm::new(&mut d_store, "dg_disc", cfg.n_ch + META_DIM, 16, &mut rng);
        let ts_disc_head = Linear::new(&mut d_store, "dg_disc_head", 16, 1, &mut rng);
        let mut m_store = ParamStore::new();
        let meta_gen = Mlp::new(
            &mut m_store,
            "dg_meta",
            &[META_NOISE, 32, META_DIM],
            &mut rng,
        );
        let mut md_store = ParamStore::new();
        let meta_disc = Mlp::new(&mut md_store, "dg_meta_disc", &[META_DIM, 32, 1], &mut rng);
        DoppelGanger {
            cfg,
            g_store,
            d_store,
            m_store,
            md_store,
            ts_lstm,
            ts_head,
            ts_disc_lstm,
            ts_disc_head,
            meta_gen,
            meta_disc,
            rng,
            real_meta_seen: 0,
        }
    }

    fn ts_forward(&self, g: &mut Graph, meta: &Matrix, len: usize, rng: &mut Rng) -> Vec<NodeId> {
        let b = meta.rows;
        let meta_node = g.input(meta.clone());
        let mut st = LstmNodeState {
            h: g.input(Matrix::zeros(b, self.cfg.hidden)),
            c: g.input(Matrix::zeros(b, self.cfg.hidden)),
        };
        let mut outs = Vec::with_capacity(len);
        for _ in 0..len {
            let mut z = Matrix::zeros(b, self.cfg.n_z);
            for v in z.data.iter_mut() {
                *v = rng.normal() as f32;
            }
            let zn = g.input(z);
            let inp = g.concat_cols(meta_node, zn);
            st = self.ts_lstm.step(g, &self.g_store, inp, st);
            outs.push(self.ts_head.forward(g, &self.g_store, st.h));
        }
        outs
    }

    fn ts_disc(&self, g: &mut Graph, xs: &[NodeId], meta: &Matrix, frozen: bool) -> NodeId {
        let b = meta.rows;
        let meta_node = g.input(meta.clone());
        let mut st = LstmNodeState {
            h: g.input(Matrix::zeros(b, 16)),
            c: g.input(Matrix::zeros(b, 16)),
        };
        for &x in xs {
            let inp = g.concat_cols(x, meta_node);
            st = self
                .ts_disc_lstm
                .step_mode(g, &self.d_store, inp, st, frozen);
        }
        self.ts_disc_head
            .forward_mode(g, &self.d_store, st.h, frozen)
    }

    /// Train on a pool of windows.
    pub fn train(&mut self, pool: &[Window]) {
        assert!(!pool.is_empty(), "empty DG training pool");
        let metas: Vec<Vec<f32>> = pool.iter().map(window_metadata).collect();
        self.real_meta_seen = metas.len();
        let mut opt_g = Adam::new(2e-3);
        let mut opt_d = Adam::new(1e-3);
        let mut opt_m = Adam::new(2e-3);
        let mut opt_md = Adam::new(1e-3);
        let l = pool[0].env.len();
        for _ in 0..self.cfg.steps {
            let bsz = self.cfg.batch_size.min(pool.len());
            let idxs: Vec<usize> = (0..bsz).map(|_| self.rng.gen_range(pool.len())).collect();
            let mut meta = Matrix::zeros(bsz, META_DIM);
            for (bi, &i) in idxs.iter().enumerate() {
                meta.data[bi * META_DIM..(bi + 1) * META_DIM].copy_from_slice(&metas[i]);
            }
            let real_steps: Vec<Matrix> = (0..l)
                .map(|t| {
                    let mut m = Matrix::zeros(bsz, self.cfg.n_ch);
                    for (bi, &i) in idxs.iter().enumerate() {
                        for ch in 0..self.cfg.n_ch {
                            m.data[bi * self.cfg.n_ch + ch] = pool[i].targets[ch][t];
                        }
                    }
                    m
                })
                .collect();

            // --- Time-series generator step (MSE anchor + GAN) ---
            self.g_store.zero_grad();
            let mut g = Graph::new();
            let mut rng2 = self.rng.fork(1);
            let outs = self.ts_forward(&mut g, &meta, l, &mut rng2);
            let mut terms: Vec<(NodeId, f32)> = Vec::new();
            for (t, &o) in outs.iter().enumerate() {
                let target = g.input(real_steps[t].clone());
                let mse = g.mse_loss(o, target);
                terms.push((mse, 1.0 / l as f32));
            }
            let mse_node = g.weighted_sum(terms);
            let logit = self.ts_disc(&mut g, &outs, &meta, true);
            let gan_g = g.bce_with_logits(logit, Matrix::full(bsz, 1, 1.0));
            let loss = g.weighted_sum(vec![(mse_node, 1.0), (gan_g, self.cfg.lambda_gan)]);
            g.backward(loss, &mut self.g_store);
            self.g_store.scrub_non_finite_grads();
            self.g_store.clip_grad_norm(5.0);
            opt_g.step(&mut self.g_store);

            // --- Time-series discriminator step ---
            let fake_vals: Vec<Matrix> = outs.iter().map(|&o| g.value(o).clone()).collect();
            drop(g);
            self.d_store.zero_grad();
            let mut gd = Graph::new();
            let real_nodes: Vec<NodeId> = real_steps.iter().map(|m| gd.input(m.clone())).collect();
            let fake_nodes: Vec<NodeId> = fake_vals.iter().map(|m| gd.input(m.clone())).collect();
            let lr = self.ts_disc(&mut gd, &real_nodes, &meta, false);
            let lf = self.ts_disc(&mut gd, &fake_nodes, &meta, false);
            let loss_r = gd.bce_with_logits(lr, Matrix::full(bsz, 1, 1.0));
            let loss_f = gd.bce_with_logits(lf, Matrix::full(bsz, 1, 0.0));
            let loss_d = gd.weighted_sum(vec![(loss_r, 0.5), (loss_f, 0.5)]);
            gd.backward(loss_d, &mut self.d_store);
            self.d_store.scrub_non_finite_grads();
            self.d_store.clip_grad_norm(5.0);
            opt_d.step(&mut self.d_store);

            // --- Metadata GAN (Original mode only) ---
            if self.cfg.mode == DgMode::Original {
                // Generator step.
                self.m_store.zero_grad();
                let mut gm = Graph::new();
                let mut zm = Matrix::zeros(bsz, META_NOISE);
                for v in zm.data.iter_mut() {
                    *v = self.rng.normal() as f32;
                }
                let z = gm.input(zm.clone());
                let fake_meta = self.meta_gen.forward(&mut gm, &self.m_store, z);
                // Frozen metadata discriminator.
                let logit_m =
                    forward_mlp_frozen(&self.meta_disc, &mut gm, &self.md_store, fake_meta);
                let loss_m = gm.bce_with_logits(logit_m, Matrix::full(bsz, 1, 1.0));
                gm.backward(loss_m, &mut self.m_store);
                self.m_store.scrub_non_finite_grads();
                self.m_store.clip_grad_norm(5.0);
                opt_m.step(&mut self.m_store);
                let fake_meta_vals = gm.value(fake_meta).clone();
                drop(gm);
                // Discriminator step.
                self.md_store.zero_grad();
                let mut gmd = Graph::new();
                let real_m = gmd.input(meta.clone());
                let fake_m = gmd.input(fake_meta_vals);
                let lr = self.meta_disc.forward(&mut gmd, &self.md_store, real_m);
                let lf = self.meta_disc.forward(&mut gmd, &self.md_store, fake_m);
                let loss_r = gmd.bce_with_logits(lr, Matrix::full(bsz, 1, 1.0));
                let loss_f = gmd.bce_with_logits(lf, Matrix::full(bsz, 1, 0.0));
                let loss = gmd.weighted_sum(vec![(loss_r, 0.5), (loss_f, 0.5)]);
                gmd.backward(loss, &mut self.md_store);
                self.md_store.scrub_non_finite_grads();
                self.md_store.clip_grad_norm(5.0);
                opt_md.step(&mut self.md_store);
            }
        }
    }

    /// Generate series for a trajectory context, window by window.
    /// Original mode draws metadata from the metadata generator; real-
    /// context mode computes it from the trajectory's own context.
    pub fn generate(&mut self, ctx: &RunContext, kpis: &[Kpi], seed: u64) -> Vec<Vec<f64>> {
        assert_eq!(kpis.len(), self.cfg.n_ch, "KPI/channel mismatch");
        let l = self.cfg.window.len;
        let n_windows = ctx.steps.len() / l;
        let mut rng = Rng::seed_from(seed);
        let mut out = vec![Vec::new(); self.cfg.n_ch];
        for wi in 0..n_windows {
            let meta_vec = match self.cfg.mode {
                DgMode::RealContext => ctx_metadata(ctx, wi * l, l),
                DgMode::Original => {
                    let mut g = Graph::new();
                    let mut zm = Matrix::zeros(1, META_NOISE);
                    for v in zm.data.iter_mut() {
                        *v = rng.normal() as f32;
                    }
                    let z = g.input(zm);
                    let node = self.meta_gen.forward(&mut g, &self.m_store, z);
                    g.value(node).data.clone()
                }
            };
            let meta = Matrix::from_vec(1, META_DIM, meta_vec);
            let mut g = Graph::new();
            let outs = self.ts_forward(&mut g, &meta, l, &mut rng);
            for &o in &outs {
                let v = g.value(o);
                for (ch, &k) in kpis.iter().enumerate() {
                    out[ch].push(k.denormalize(v.data[ch]));
                }
            }
        }
        out
    }
}

/// Forward an MLP with frozen parameters (gradient flows to the input).
fn forward_mlp_frozen(mlp: &Mlp, g: &mut Graph, store: &ParamStore, x: NodeId) -> NodeId {
    let mut cur = x;
    for (i, layer) in mlp.layers.iter().enumerate() {
        cur = layer.forward_mode(g, store, cur, true);
        if i + 1 < mlp.layers.len() {
            cur = g.leaky_relu(cur, mlp.slope);
        }
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use gendt_data::builders::{dataset_a, BuildCfg};
    use gendt_data::context::{extract, ContextCfg};
    use gendt_data::windows::windows as make_windows;

    fn tiny_cfg(mode: DgMode) -> DgCfg {
        let mut c = DgCfg::fast(mode, 4, 3);
        c.hidden = 8;
        c.window = WindowCfg {
            len: 10,
            stride: 10,
            max_cells: 3,
            ar_context: 4,
        };
        c.steps = 5;
        c.batch_size = 4;
        c
    }

    fn pool_and_ctx(cfg: &DgCfg) -> (Vec<Window>, RunContext) {
        let ds = dataset_a(&BuildCfg::quick(71));
        let run = &ds.runs[0];
        let ctx = extract(
            &ds.world,
            &ds.deployment,
            &run.traj,
            &ContextCfg {
                max_cells: 3,
                ..ContextCfg::default()
            },
        );
        (make_windows(run, &ctx, &Kpi::DATASET_A, &cfg.window), ctx)
    }

    #[test]
    fn real_context_dg_trains_and_generates() {
        let cfg = tiny_cfg(DgMode::RealContext);
        let (pool, ctx) = pool_and_ctx(&cfg);
        let mut dg = DoppelGanger::new(cfg);
        dg.train(&pool);
        let out = dg.generate(&ctx, &Kpi::DATASET_A, 5);
        assert_eq!(out.len(), 4);
        assert_eq!(out[0].len(), (ctx.steps.len() / 10) * 10);
        assert!(out[0].iter().all(|v| v.is_finite()));
    }

    #[test]
    fn original_dg_trains_metadata_generator() {
        let cfg = tiny_cfg(DgMode::Original);
        let (pool, ctx) = pool_and_ctx(&cfg);
        let mut dg = DoppelGanger::new(cfg);
        dg.train(&pool);
        let out = dg.generate(&ctx, &Kpi::DATASET_A, 5);
        assert!(!out[0].is_empty());
        assert!(out[0].iter().all(|v| (-140.0..=-44.0).contains(v)));
    }

    #[test]
    fn metadata_vector_shape_and_env_mean() {
        let cfg = tiny_cfg(DgMode::RealContext);
        let (pool, _) = pool_and_ctx(&cfg);
        let meta = window_metadata(&pool[0]);
        assert_eq!(meta.len(), META_DIM);
        // First 12 entries are mean land-use fractions; sum near 1.
        let lu: f32 = meta[..12].iter().sum();
        assert!((lu - 1.0).abs() < 0.05, "land-use mean sum {lu}");
    }

    #[test]
    fn modes_generate_different_series() {
        let cfg_r = tiny_cfg(DgMode::RealContext);
        let (pool, ctx) = pool_and_ctx(&cfg_r);
        let mut dg_r = DoppelGanger::new(cfg_r);
        dg_r.train(&pool);
        let mut dg_o = DoppelGanger::new(tiny_cfg(DgMode::Original));
        dg_o.train(&pool);
        let a = dg_r.generate(&ctx, &Kpi::DATASET_A, 9);
        let b = dg_o.generate(&ctx, &Kpi::DATASET_A, 9);
        assert_ne!(a[0], b[0]);
    }
}
