//! # gendt-eval — experiment harness regenerating every table and figure
//!
//! One module per experiment group of the GenDT paper's evaluation:
//!
//! | Module | Experiments |
//! |---|---|
//! | [`exp_stats`] | Tables 1–2, Figs. 1/2, 4, 16 (dataset characteristics) |
//! | [`exp_fidelity`] | Tables 3–8, Figs. 9, 10, 18 (fidelity & generalization) |
//! | [`exp_efficiency`] | Fig. 11 (uncertainty-driven measurement selection) |
//! | [`exp_usecases`] | Tables 9–10, Figs. 12–13 (QoE prediction, handovers) |
//! | [`exp_ablation`] | Table 12 (design-choice ablations) |
//! | [`exp_extra`] | Appendix C.2 use cases (cell load, link bandwidth) |
//! | [`exp_coverage`] | Coverage mapping from virtual drives (§2.1 / §6.2) |
//!
//! The [`harness`] module owns the shared datasets, splits, and trained
//! models; [`report`] renders markdown/JSON into `results/`. The
//! `gendt-eval` binary drives everything:
//!
//! ```text
//! gendt-eval --exp all --quick          # fast sanity pass
//! gendt-eval --exp table3               # one experiment, full settings
//! gendt-eval --exp table7 --out results # choose the output directory
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exp_ablation;
pub mod exp_coverage;
pub mod exp_efficiency;
pub mod exp_extra;
pub mod exp_fidelity;
pub mod exp_stats;
pub mod exp_usecases;
pub mod harness;
pub mod report;

pub use harness::{Bundle, EvalCfg, Method};
pub use report::{MdTable, Report};

/// All experiment ids the binary accepts.
pub const EXPERIMENTS: [&str; 17] = [
    "table1",
    "table2",
    "fig1_2",
    "fig4_16",
    "table3",
    "table4",
    "fig18",
    "table5",
    "table6",
    "table7",
    "table8",
    "fig11",
    "table9",
    "table10",
    "table12",
    "extra_usecases",
    "coverage",
];

/// Run a standalone experiment (no shared trained bundle needed) by id.
pub fn run_standalone(id: &str, cfg: &EvalCfg) -> Option<Report> {
    match id {
        "table1" => Some(exp_stats::table1(cfg)),
        "table2" => Some(exp_stats::table2(cfg)),
        "fig1_2" => Some(exp_stats::fig1_2(cfg)),
        "fig4_16" => Some(exp_stats::fig4_16(cfg)),
        _ => None,
    }
}
