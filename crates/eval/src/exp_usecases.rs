//! Downstream use cases: paper §6.3 — QoE prediction (Table 9 / Fig. 12)
//! and handover analysis (Table 10 / Fig. 13).

use crate::harness::{Bundle, EvalCfg, Method};
use crate::report::{f2, MdTable, Report};
use gendt::trainer::GenDt;

use gendt_data::kpi_types::Kpi;
use gendt_data::windows::windows as make_windows;
use gendt_metrics::Fidelity;
use gendt_nn::{Adam, Graph, Matrix, Mlp, ParamStore, Rng};
use serde::{Deserialize, Serialize};

/// Throughput normalization range (Mbps) for the QoE predictor.
const TPUT_RANGE: (f64, f64) = (0.0, 40.0);

/// QoE predictor features per step: RSRP, RSRQ (normalized; optionally
/// zeroed when excluded), position x/y (normalized by world extent), and
/// speed (normalized).
const QOE_FEATS: usize = 5;

/// The MLP-regression QoE model of the paper's use case (after Sliwa &
/// Wietfeld): predicts throughput and PER from radio KPIs + location.
pub struct QoePredictor {
    store: ParamStore,
    net: Mlp,
    rng: Rng,
    /// Zero out the RSRP/RSRQ features (the paper's "RSRP & RSRQ
    /// excluded" control row).
    pub exclude_radio: bool,
}

fn qoe_features(
    rsrp: f64,
    rsrq: f64,
    x: f64,
    y: f64,
    speed: f64,
    extent: f64,
    exclude_radio: bool,
) -> Vec<f32> {
    let (r, q) = if exclude_radio {
        (0.0, 0.0)
    } else {
        (Kpi::Rsrp.normalize(rsrp), Kpi::Rsrq.normalize(rsrq))
    };
    vec![
        r,
        q,
        (x / extent) as f32,
        (y / extent) as f32,
        (speed / 30.0) as f32,
    ]
}

/// Normalize throughput to [-1, 1].
fn norm_tput(v: f64) -> f32 {
    (2.0 * (v - TPUT_RANGE.0) / (TPUT_RANGE.1 - TPUT_RANGE.0) - 1.0) as f32
}

fn denorm_tput(n: f32) -> f64 {
    (TPUT_RANGE.0 + (n as f64 + 1.0) / 2.0 * (TPUT_RANGE.1 - TPUT_RANGE.0)).max(0.0)
}

impl QoePredictor {
    /// New untrained predictor.
    pub fn new(seed: u64, exclude_radio: bool) -> Self {
        let mut rng = Rng::seed_from(seed);
        let mut store = ParamStore::new();
        let net = Mlp::new(&mut store, "qoe", &[QOE_FEATS, 32, 32, 2], &mut rng);
        QoePredictor {
            store,
            net,
            rng,
            exclude_radio,
        }
    }

    /// Train on Dataset-A training runs (which carry QoE ground truth).
    pub fn fit(&mut self, bundle: &Bundle, epochs: usize) {
        let extent = bundle.ds.world.cfg.extent_m;
        let mut xs: Vec<Vec<f32>> = Vec::new();
        let mut ys: Vec<[f32; 2]> = Vec::new();
        for &i in &bundle.train_idx {
            let run = &bundle.ds.runs[i];
            let Some(qoe) = &run.qoe else { continue };
            for (k, s) in run.samples.iter().enumerate() {
                let p = run.traj.points[k];
                xs.push(qoe_features(
                    s.rsrp_dbm,
                    s.rsrq_db,
                    p.pos.x,
                    p.pos.y,
                    p.speed,
                    extent,
                    self.exclude_radio,
                ));
                ys.push([norm_tput(qoe[k].throughput_mbps), qoe[k].per as f32]);
            }
        }
        if xs.is_empty() {
            return;
        }
        let mut opt = Adam::new(2e-3);
        let batch = 64usize;
        let steps = epochs * xs.len().div_ceil(batch);
        for _ in 0..steps {
            let bsz = batch.min(xs.len());
            let mut xm = Matrix::zeros(bsz, QOE_FEATS);
            let mut ym = Matrix::zeros(bsz, 2);
            for bi in 0..bsz {
                let idx = self.rng.gen_range(xs.len());
                xm.data[bi * QOE_FEATS..(bi + 1) * QOE_FEATS].copy_from_slice(&xs[idx]);
                ym.data[bi * 2..(bi + 1) * 2].copy_from_slice(&ys[idx]);
            }
            self.store.zero_grad();
            let mut g = Graph::new();
            let x = g.input(xm);
            let pred = self.net.forward(&mut g, &self.store, x);
            let t = g.input(ym);
            let loss = g.mse_loss(pred, t);
            g.backward(loss, &mut self.store);
            self.store.clip_grad_norm(5.0);
            opt.step(&mut self.store);
        }
    }

    /// Predict throughput (Mbit/s) for a single point — used by planning
    /// tools that evaluate generated KPIs along arbitrary routes.
    pub fn predict_point(
        &self,
        rsrp: f64,
        rsrq: f64,
        x: f64,
        y: f64,
        speed: f64,
        extent: f64,
    ) -> f64 {
        let f = qoe_features(rsrp, rsrq, x, y, speed, extent, self.exclude_radio);
        let mut g = Graph::new();
        let xn = g.input(Matrix::from_vec(1, QOE_FEATS, f));
        let pred = self.net.forward(&mut g, &self.store, xn);
        denorm_tput(g.value(pred).data[0])
    }

    /// Predict `(throughput_mbps, per)` series given RSRP/RSRQ series and
    /// the run's trajectory.
    pub fn predict(
        &self,
        bundle: &Bundle,
        run_idx: usize,
        rsrp: &[f64],
        rsrq: &[f64],
    ) -> (Vec<f64>, Vec<f64>) {
        let extent = bundle.ds.world.cfg.extent_m;
        let run = &bundle.ds.runs[run_idx];
        let n = rsrp.len().min(rsrq.len()).min(run.traj.points.len());
        let mut tput = Vec::with_capacity(n);
        let mut per = Vec::with_capacity(n);
        for k in 0..n {
            let p = run.traj.points[k];
            let f = qoe_features(
                rsrp[k],
                rsrq[k],
                p.pos.x,
                p.pos.y,
                p.speed,
                extent,
                self.exclude_radio,
            );
            let mut g = Graph::new();
            let x = g.input(Matrix::from_vec(1, QOE_FEATS, f));
            let pred = self.net.forward(&mut g, &self.store, x);
            let v = g.value(pred);
            tput.push(denorm_tput(v.data[0]));
            per.push((v.data[1] as f64).clamp(0.0, 1.0));
        }
        (tput, per)
    }
}

/// Result row of the QoE table.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct QoeRow {
    /// Row label.
    pub label: String,
    /// Throughput fidelity vs measured QoE.
    pub tput: Fidelity,
    /// PER fidelity vs measured QoE.
    pub per: Fidelity,
}

/// Table 9 + Fig. 12: QoE prediction with real, excluded, and generated
/// RSRP/RSRQ inputs.
pub fn table9(cfg: &EvalCfg, bundle: &mut Bundle) -> Report {
    let mut report = Report::new(
        "table9",
        "QoE (throughput, PER) prediction from generated RSRP/RSRQ",
    );
    let epochs = if cfg.quick { 4 } else { 20 };
    let mut predictor = QoePredictor::new(cfg.seed ^ 0x90E, false);
    predictor.fit(bundle, epochs);
    let mut predictor_norad = QoePredictor::new(cfg.seed ^ 0x90F, true);
    predictor_norad.fit(bundle, epochs);

    let test_runs: Vec<usize> = bundle
        .test_idx
        .iter()
        .cloned()
        .filter(|&i| bundle.ds.runs[i].qoe.is_some())
        .collect();

    let eval_inputs = |bundle: &mut Bundle,
                       predictor: &QoePredictor,
                       source: Option<Method>,
                       seed: u64|
     -> (Fidelity, Fidelity) {
        let mut tput_f = Vec::new();
        let mut per_f = Vec::new();
        for (j, &i) in test_runs.iter().enumerate() {
            let (rsrp, rsrq) = match source {
                None => (
                    bundle.ds.runs[i].series(Kpi::Rsrp),
                    bundle.ds.runs[i].series(Kpi::Rsrq),
                ),
                Some(m) => {
                    let ctx = bundle.contexts[i].clone();
                    let gen = bundle.generate(m, &ctx, seed ^ ((j as u64 + 1) << 4));
                    let pr = bundle.kpis.iter().position(|&k| k == Kpi::Rsrp).unwrap();
                    let pq = bundle.kpis.iter().position(|&k| k == Kpi::Rsrq).unwrap();
                    (gen[pr].clone(), gen[pq].clone())
                }
            };
            let (pt, pp) = predictor.predict(bundle, i, &rsrp, &rsrq);
            if pt.is_empty() {
                continue;
            }
            let qoe = bundle.ds.runs[i].qoe.as_ref().unwrap();
            let real_t: Vec<f64> = qoe
                .iter()
                .take(pt.len())
                .map(|q| q.throughput_mbps)
                .collect();
            let real_p: Vec<f64> = qoe.iter().take(pp.len()).map(|q| q.per).collect();
            tput_f.push(Fidelity::compute(&real_t, &pt[..real_t.len()]));
            per_f.push(Fidelity::compute(&real_p, &pp[..real_p.len()]));
        }
        (Fidelity::average(&tput_f), Fidelity::average(&per_f))
    };

    let mut rows: Vec<QoeRow> = Vec::new();
    let (t, p) = eval_inputs(bundle, &predictor, None, cfg.seed ^ 1);
    rows.push(QoeRow {
        label: "Real".into(),
        tput: t,
        per: p,
    });
    let (t, p) = eval_inputs(bundle, &predictor_norad, None, cfg.seed ^ 2);
    rows.push(QoeRow {
        label: "RSRP & RSRQ Excluded".into(),
        tput: t,
        per: p,
    });
    for m in Method::ALL {
        let (t, p) = eval_inputs(bundle, &predictor, Some(m), cfg.seed ^ 3);
        rows.push(QoeRow {
            label: m.label().into(),
            tput: t,
            per: p,
        });
    }

    let mut t = MdTable::new(
        "QoE prediction fidelity (paper Table 9 analogue)",
        &[
            "Input", "Tput MAE", "Tput DTW", "Tput HWD", "PER MAE", "PER DTW", "PER HWD",
        ],
    );
    for r in &rows {
        t.row(vec![
            r.label.clone(),
            f2(r.tput.mae),
            f2(r.tput.dtw),
            f2(r.tput.hwd),
            format!("{:.3}", r.per.mae),
            format!("{:.3}", r.per.dtw),
            format!("{:.3}", r.per.hwd),
        ]);
    }
    report.tables.push(t);

    // Fig. 12 series: real vs predicted throughput on the first test run,
    // with real and GenDT-generated inputs.
    if let Some(&i) = test_runs.first() {
        let real_rsrp = bundle.ds.runs[i].series(Kpi::Rsrp);
        let real_rsrq = bundle.ds.runs[i].series(Kpi::Rsrq);
        let (pt_real, _) = predictor.predict(bundle, i, &real_rsrp, &real_rsrq);
        let ctx = bundle.contexts[i].clone();
        let gen = bundle.generate(Method::GenDt, &ctx, cfg.seed ^ 0x12);
        let pr = bundle.kpis.iter().position(|&k| k == Kpi::Rsrp).unwrap();
        let pq = bundle.kpis.iter().position(|&k| k == Kpi::Rsrq).unwrap();
        let (pt_gen, _) = predictor.predict(bundle, i, &gen[pr], &gen[pq]);
        let qoe = bundle.ds.runs[i].qoe.as_ref().unwrap();
        report.series.push((
            "real_tput".into(),
            qoe.iter().map(|q| q.throughput_mbps).collect(),
        ));
        report
            .series
            .push(("pred_tput_real_inputs".into(), pt_real));
        report
            .series
            .push(("pred_tput_gendt_inputs".into(), pt_gen));
    }
    report.notes.push(
        "Expected shape (paper Table 9 / Fig. 12): dropping RSRP/RSRQ hurts badly; predictions \
         from GenDT-generated KPIs come close to those from real KPIs and beat all baselines."
            .into(),
    );
    report
}

/// Extract handover events from a generated serving-rank channel: an
/// event fires when the rank changes by more than `threshold`.
pub fn handovers_from_serving(series: &[f64], times: &[f64], threshold: f64) -> Vec<f64> {
    let mut events = Vec::new();
    for k in 1..series.len().min(times.len()) {
        if (series[k] - series[k - 1]).abs() > threshold {
            events.push(times[k]);
        }
    }
    events
}

/// Calibrate the handover-detection threshold on training runs: the value
/// separating the serving-channel step sizes observed *at* real handovers
/// from those between them (geometric mean of the two levels).
pub fn calibrate_handover_threshold(runs: &[&gendt_data::run::Run]) -> f64 {
    let mut at_ho: Vec<f64> = Vec::new();
    let mut between: Vec<f64> = Vec::new();
    for r in runs {
        let serv = r.series(Kpi::Serving);
        let ids = r.serving_ids();
        for k in 1..serv.len() {
            let step = (serv[k] - serv[k - 1]).abs();
            if ids[k] != ids[k - 1] {
                at_ho.push(step);
            } else {
                between.push(step);
            }
        }
    }
    if at_ho.is_empty() || between.is_empty() {
        return 0.03;
    }
    at_ho.sort_by(|a, b| a.partial_cmp(b).unwrap());
    between.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let lo = gendt_metrics::quantile_sorted(&at_ho, 0.5).max(1e-6);
    let hi = gendt_metrics::quantile_sorted(&between, 0.9).max(1e-6);
    (lo * hi).sqrt()
}

/// Inter-event times from a sorted event-time list.
pub fn inter_times(events: &[f64]) -> Vec<f64> {
    events.windows(2).map(|w| w[1] - w[0]).collect()
}

/// Table 10 + Fig. 13: inter-handover time distribution from generated
/// serving-cell data. Retrains GenDT (and baselines) with the serving
/// channel added, on Dataset B (as in the paper).
pub fn table10(cfg: &EvalCfg, bundle_b: &Bundle) -> Report {
    let mut report = Report::new(
        "table10",
        "Inter-handover time distribution from generated serving-cell data",
    );
    // Extended KPI set with the serving channel.
    let kpis: Vec<Kpi> = vec![Kpi::Rsrp, Kpi::Rsrq, Kpi::Serving];
    let mut model_cfg = bundle_b.model_cfg.clone();
    model_cfg.n_ch = kpis.len();
    model_cfg.seed = cfg.seed ^ 0x40;

    // Rebuild the training pool with the extended channel set.
    let mut pool = Vec::new();
    for &i in &bundle_b.train_idx {
        pool.extend(make_windows(
            &bundle_b.ds.runs[i],
            &bundle_b.contexts[i],
            &kpis,
            &model_cfg.training_window(),
        ));
    }
    let mut model = GenDt::new(model_cfg.clone());
    model.train(&pool);

    // Real inter-handover times over the test runs.
    let mut real_iht = Vec::new();
    for &i in &bundle_b.test_idx {
        real_iht.extend(gendt_radio::kpi::inter_handover_times(
            &bundle_b.ds.runs[i].samples,
        ));
    }
    // Detection threshold calibrated on training runs (see
    // [`calibrate_handover_threshold`]): applied identically to every
    // method's generated serving channel.
    let train_runs: Vec<&gendt_data::run::Run> = bundle_b
        .train_idx
        .iter()
        .map(|&i| &bundle_b.ds.runs[i])
        .collect();
    let threshold = calibrate_handover_threshold(&train_runs);

    // Per-method serving-channel generators, all producing the same
    // 3-channel KPI set.
    let mut methods: Vec<(String, Vec<f64>)> = Vec::new();
    let serv_pos = kpis.iter().position(|&k| k == Kpi::Serving).unwrap();
    let mut collect_iht = |label: &str, series_per_run: Vec<Vec<f64>>| {
        let mut iht = Vec::new();
        for (j, &i) in bundle_b.test_idx.iter().enumerate() {
            let serv = &series_per_run[j];
            let times: Vec<f64> = bundle_b.ds.runs[i]
                .samples
                .iter()
                .map(|s| s.t)
                .take(serv.len())
                .collect();
            iht.extend(inter_times(&handovers_from_serving(
                serv, &times, threshold,
            )));
        }
        methods.push((label.to_string(), iht));
    };

    // GenDT.
    {
        let mut per_run = Vec::new();
        for (j, &i) in bundle_b.test_idx.iter().enumerate() {
            let out = gendt::generate::generate_series(
                &mut model,
                &bundle_b.contexts[i],
                &kpis,
                false,
                cfg.seed ^ ((j as u64 + 1) << 6),
            );
            per_run.push(out.channel(Kpi::Serving).unwrap_or(&[]).to_vec());
        }
        collect_iht("GenDT", per_run);
    }
    // FDaS: iid sampling of serving ranks fires events nearly every step.
    {
        let train_serv: Vec<f64> = bundle_b
            .train_idx
            .iter()
            .flat_map(|&i| bundle_b.ds.runs[i].series(Kpi::Serving))
            .collect();
        let fdas = gendt_baselines::Fdas::fit(&[Kpi::Serving], &[train_serv]);
        let mut per_run = Vec::new();
        for (j, &i) in bundle_b.test_idx.iter().enumerate() {
            let n = bundle_b.ds.runs[i].len();
            per_run.push(fdas.generate(n, cfg.seed ^ ((j as u64 + 7) << 3))[0].clone());
        }
        collect_iht("FDaS", per_run);
    }
    // MLP: per-step regression of the serving channel.
    {
        let mut mlp = gendt_baselines::MlpBaseline::new(
            &kpis,
            if cfg.quick { 12 } else { 32 },
            cfg.seed ^ 0x41,
        );
        mlp.epochs = if cfg.quick { 3 } else { 12 };
        let ctx_refs: Vec<&gendt_data::context::RunContext> = bundle_b
            .train_idx
            .iter()
            .map(|&i| &bundle_b.contexts[i])
            .collect();
        let targets: Vec<Vec<Vec<f64>>> = bundle_b
            .train_idx
            .iter()
            .map(|&i| {
                kpis.iter()
                    .map(|&k| bundle_b.ds.runs[i].series(k))
                    .collect()
            })
            .collect();
        mlp.fit(&ctx_refs, &targets);
        let per_run: Vec<Vec<f64>> = bundle_b
            .test_idx
            .iter()
            .map(|&i| mlp.generate(&bundle_b.contexts[i])[serv_pos].clone())
            .collect();
        collect_iht("MLP", per_run);
    }
    // LSTM-GNN.
    {
        let mut lg = gendt_baselines::LstmGnn::new(&model_cfg);
        lg.train(&pool);
        let mut per_run = Vec::new();
        for (j, &i) in bundle_b.test_idx.iter().enumerate() {
            let out = lg.generate(
                &bundle_b.contexts[i],
                &kpis,
                cfg.seed ^ ((j as u64 + 5) << 9),
            );
            per_run.push(out.channel(Kpi::Serving).unwrap_or(&[]).to_vec());
        }
        collect_iht("LSTM-GNN", per_run);
    }
    // DG, both modes.
    for (label, mode) in [
        ("Orig. DG", gendt_baselines::DgMode::Original),
        ("Real Cont. DG", gendt_baselines::DgMode::RealContext),
    ] {
        let mut dg_cfg = gendt_baselines::DgCfg::fast(mode, kpis.len(), cfg.seed ^ 0x42);
        dg_cfg.window = model_cfg.window;
        dg_cfg.hidden = model_cfg.hidden;
        dg_cfg.steps = model_cfg.steps;
        dg_cfg.batch_size = model_cfg.batch_size;
        let mut dg = gendt_baselines::DoppelGanger::new(dg_cfg);
        dg.train(&pool);
        let mut per_run = Vec::new();
        for (j, &i) in bundle_b.test_idx.iter().enumerate() {
            let out = dg.generate(
                &bundle_b.contexts[i],
                &kpis,
                cfg.seed ^ ((j as u64 + 11) << 10),
            );
            per_run.push(out[serv_pos].clone());
        }
        collect_iht(label, per_run);
    }

    let mut t = MdTable::new(
        "Inter-handover time distribution distance to real (paper Table 10 analogue)",
        &["Method", "HWD (s)", "Median IHT (s)", "Events"],
    );
    let mut real_sorted = real_iht.clone();
    real_sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let real_median = if real_sorted.is_empty() {
        0.0
    } else {
        gendt_metrics::quantile_sorted(&real_sorted, 0.5)
    };
    t.row(vec![
        "Real".into(),
        "0.00".into(),
        f2(real_median),
        real_iht.len().to_string(),
    ]);
    for (label, iht) in &methods {
        let hwd = if iht.is_empty() || real_iht.is_empty() {
            f64::NAN
        } else {
            gendt_metrics::hwd(&real_iht, iht)
        };
        let mut s = iht.clone();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = if s.is_empty() {
            0.0
        } else {
            gendt_metrics::quantile_sorted(&s, 0.5)
        };
        t.row(vec![label.clone(), f2(hwd), f2(med), iht.len().to_string()]);
        report.series.push((format!("iht_{label}"), iht.clone()));
    }
    report.series.push(("iht_real".into(), real_iht));
    report.tables.push(t);
    report.notes.push(
        "Expected shape (paper Table 10 / Fig. 13): GenDT's serving-channel changes yield an \
         inter-handover CDF close to real; context-free baselines are far off."
            .into(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handover_extraction_thresholds() {
        let series = [0.1, 0.1, 0.5, 0.5, 0.2];
        let times = [0.0, 1.0, 2.0, 3.0, 4.0];
        let ev = handovers_from_serving(&series, &times, 0.1);
        assert_eq!(ev, vec![2.0, 4.0]);
        assert_eq!(inter_times(&ev), vec![2.0]);
    }

    #[test]
    fn tput_normalization_roundtrip() {
        for v in [0.0, 5.0, 20.0, 39.0] {
            let back = denorm_tput(norm_tput(v));
            assert!((back - v).abs() < 1e-4, "{v} -> {back}");
        }
    }
}
