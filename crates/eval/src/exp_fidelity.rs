//! Fidelity and generalization experiments: paper Tables 3–8 and
//! Figures 9, 10, 18.

use crate::harness::{Bundle, EvalCfg, Method};
use crate::report::{f2, MdTable, Report};
use gendt_baselines::generate_stitched;
use gendt_data::context::extract;
use gendt_data::kpi_types::Kpi;
use gendt_geo::trajectory::{generate_complex, Scenario};
use gendt_geo::XY;
use gendt_metrics::Fidelity;
use gendt_radio::kpi::{KpiCfg, KpiEngine};
use gendt_radio::propagation::PropagationCfg;

fn scenario_runs(b: &Bundle, sc: Scenario, from_test: bool) -> Vec<usize> {
    let idxs = if from_test { &b.test_idx } else { &b.train_idx };
    idxs.iter()
        .cloned()
        .filter(|&i| b.ds.runs[i].scenario == sc)
        .collect()
}

/// Test runs for a scenario, falling back to training runs if the
/// geographic split left a scenario unrepresented in the test set.
fn eval_runs(b: &Bundle, sc: Scenario) -> Vec<usize> {
    let t = scenario_runs(b, sc, true);
    if t.is_empty() {
        scenario_runs(b, sc, false).into_iter().take(2).collect()
    } else {
        t
    }
}

/// Table 3: generated RSRP fidelity per scenario in Dataset A.
pub fn table3(cfg: &EvalCfg, bundle: &mut Bundle) -> Report {
    let mut report = Report::new("table3", "Generated RSRP fidelity per scenario, Dataset A");
    let scenarios = [Scenario::Walk, Scenario::Bus, Scenario::Tram];
    let mut t = MdTable::new(
        "RSRP fidelity (paper Table 3 analogue)",
        &[
            "Method", "MAE Walk", "MAE Bus", "MAE Tram", "DTW Walk", "DTW Bus", "DTW Tram",
            "HWD Walk", "HWD Bus", "HWD Tram",
        ],
    );
    for m in Method::ALL {
        let mut maes = Vec::new();
        let mut dtws = Vec::new();
        let mut hwds = Vec::new();
        for &sc in &scenarios {
            let runs = eval_runs(bundle, sc);
            let f = bundle.avg_fidelity(m, &runs, Kpi::Rsrp, cfg.seed ^ 0x7AB3);
            maes.push(f2(f.mae));
            dtws.push(f2(f.dtw));
            hwds.push(f2(f.hwd));
        }
        let mut row = vec![m.label().to_string()];
        row.extend(maes);
        row.extend(dtws);
        row.extend(hwds);
        t.row(row);
    }
    report.tables.push(t);
    report.notes.push(
        "Expected shape (paper Table 3): GenDT best on MAE/DTW; FDaS competitive only on HWD; \
         MLP/LSTM-GNN poor on HWD; original DG worst of the DG pair."
            .into(),
    );
    report
}

/// Table 4: average fidelity across scenarios for all Dataset-A KPIs.
pub fn table4(cfg: &EvalCfg, bundle: &mut Bundle) -> Report {
    let mut report = Report::new(
        "table4",
        "Average fidelity across Dataset-A scenarios for RSRP/RSRQ/SINR/CQI",
    );
    let mut t = MdTable::new(
        "All-KPI average fidelity (paper Table 4 analogue)",
        &[
            "Method", "RSRP MAE", "RSRP DTW", "RSRP HWD", "RSRQ MAE", "RSRQ DTW", "RSRQ HWD",
            "SINR MAE", "SINR DTW", "SINR HWD", "CQI MAE", "CQI DTW", "CQI HWD",
        ],
    );
    let test_runs: Vec<usize> = bundle.test_idx.clone();
    for m in Method::ALL {
        let mut row = vec![m.label().to_string()];
        for kpi in [Kpi::Rsrp, Kpi::Rsrq, Kpi::Sinr, Kpi::Cqi] {
            let f = bundle.avg_fidelity(m, &test_runs, kpi, cfg.seed ^ 0x7AB4);
            row.push(f2(f.mae));
            row.push(f2(f.dtw));
            row.push(f2(f.hwd));
        }
        t.row(row);
    }
    report.tables.push(t);
    report.notes.push(
        "Expected shape (paper Table 4): GenDT leads broadly; CQI gains are marginal because \
         CQI is a 15-level discrete channel."
            .into(),
    );
    report
}

/// Table 5: RSRP fidelity per sub-scenario in Dataset B.
pub fn table5(cfg: &EvalCfg, bundle: &mut Bundle) -> Report {
    let mut report = Report::new("table5", "Generated RSRP fidelity per scenario, Dataset B");
    // Sub-scenarios are 6-run blocks in emission order.
    let labels = gendt_data::builders::dataset_b_scenario_labels();
    let mut t = MdTable::new(
        "RSRP fidelity per Dataset-B scenario (paper Table 5 analogue)",
        &[
            "Method", "MAE CC1", "MAE CC2", "MAE H1", "MAE H2", "DTW CC1", "DTW CC2", "DTW H1",
            "DTW H2", "HWD CC1", "HWD CC2", "HWD H1", "HWD H2",
        ],
    );
    // For each sub-scenario block, prefer test runs within the block.
    let blocks: Vec<Vec<usize>> = (0..4)
        .map(|bi| {
            let lo = bi * 6;
            let hi = lo + 6;
            let in_block: Vec<usize> = bundle
                .test_idx
                .iter()
                .cloned()
                .filter(|&i| i >= lo && i < hi)
                .collect();
            if in_block.is_empty() {
                (lo..hi).take(2).collect()
            } else {
                in_block
            }
        })
        .collect();
    for m in Method::ALL {
        let fs: Vec<Fidelity> = blocks
            .iter()
            .map(|runs| bundle.avg_fidelity(m, runs, Kpi::Rsrp, cfg.seed ^ 0x7AB5))
            .collect();
        let mut row = vec![m.label().to_string()];
        row.extend(fs.iter().map(|f| f2(f.mae)));
        row.extend(fs.iter().map(|f| f2(f.dtw)));
        row.extend(fs.iter().map(|f| f2(f.hwd)));
        t.row(row);
    }
    report.tables.push(t);
    let _ = labels;
    report.notes.push(
        "Expected shape (paper Table 5): GenDT generally best; LSTM-GNN and original DG \
         trail across scenarios."
            .into(),
    );
    report
}

/// Table 6: Dataset-B average fidelity for RSRP and RSRQ.
pub fn table6(cfg: &EvalCfg, bundle: &mut Bundle) -> Report {
    let mut report = Report::new(
        "table6",
        "Average fidelity across Dataset-B scenarios (RSRP, RSRQ)",
    );
    let mut t = MdTable::new(
        "Dataset-B averages (paper Table 6 analogue)",
        &[
            "Method", "RSRP MAE", "RSRP DTW", "RSRP HWD", "RSRQ MAE", "RSRQ DTW", "RSRQ HWD",
        ],
    );
    let runs = bundle.test_idx.clone();
    for m in Method::ALL {
        let fr = bundle.avg_fidelity(m, &runs, Kpi::Rsrp, cfg.seed ^ 0x7AB6);
        let fq = bundle.avg_fidelity(m, &runs, Kpi::Rsrq, cfg.seed ^ 0x7AB7);
        t.row(vec![
            m.label().to_string(),
            f2(fr.mae),
            f2(fr.dtw),
            f2(fr.hwd),
            f2(fq.mae),
            f2(fq.dtw),
            f2(fq.hwd),
        ]);
    }
    report.tables.push(t);
    report.notes.push(
        "Expected shape (paper Table 6): RSRQ gains are smaller than RSRP — RSRQ varies over \
         a much narrower range."
            .into(),
    );
    report
}

/// Build the held-out long complex trajectory of §6.1.3 and its
/// measured ground truth, using the bundle's world/deployment.
pub fn long_trajectory(
    cfg: &EvalCfg,
    bundle: &Bundle,
) -> (gendt_data::context::RunContext, Vec<Vec<f64>>) {
    // City driving -> highway -> city driving across the region,
    // 2230 s in the paper; scaled in quick mode.
    let dur_scale = if cfg.quick { 0.25 } else { 1.0 };
    let traj = generate_complex(
        &bundle.ds.world,
        &[
            (Scenario::CityDrive, 600.0 * dur_scale),
            (Scenario::Highway, 1000.0 * dur_scale),
            (Scenario::CityDrive, 630.0 * dur_scale),
        ],
        XY::new(
            -bundle.ds.world.cfg.extent_m * 0.5,
            -bundle.ds.world.cfg.extent_m * 0.5,
        ),
        cfg.seed ^ 0x10AD,
    );
    let engine = KpiEngine::new(
        &bundle.ds.world,
        &bundle.ds.deployment,
        PropagationCfg::default(),
        KpiCfg::default(),
    );
    let samples = engine.measure(&traj, cfg.seed ^ 0x10AE);
    let run = gendt_data::run::Run {
        scenario: Scenario::CityDrive,
        traj,
        samples,
        qoe: None,
    };
    let ctx_cfg = cfg.ctx_cfg(&bundle.model_cfg);
    let ctx = extract(&bundle.ds.world, &bundle.ds.deployment, &run.traj, &ctx_cfg);
    let real: Vec<Vec<f64>> = bundle.kpis.iter().map(|&k| run.series(k)).collect();
    (ctx, real)
}

/// Table 7 + Fig. 9: long complex trajectory fidelity.
pub fn table7(cfg: &EvalCfg, bundle: &mut Bundle) -> Report {
    let (ctx, real) = long_trajectory(cfg, bundle);
    let mut report = Report::new(
        "table7",
        "Long and complex trajectory (city+highway+city), Dataset B",
    );
    let mut t = MdTable::new(
        "Long-trajectory fidelity (paper Table 7 analogue)",
        &[
            "Method", "RSRP MAE", "RSRP DTW", "RSRP HWD", "RSRQ MAE", "RSRQ DTW", "RSRQ HWD",
        ],
    );
    for m in Method::ALL {
        let gen = bundle.generate(m, &ctx, cfg.seed ^ 0x7AB8);
        let mut row = vec![m.label().to_string()];
        for (ch, kpi) in [Kpi::Rsrp, Kpi::Rsrq].iter().enumerate() {
            let pos = bundle.kpis.iter().position(|k| k == kpi).unwrap();
            let n = real[pos].len().min(gen[pos].len());
            let f = if n > 0 {
                Fidelity::compute(&real[pos][..n], &gen[pos][..n])
            } else {
                Fidelity::default()
            };
            row.push(f2(f.mae));
            row.push(f2(f.dtw));
            row.push(f2(f.hwd));
            let _ = ch;
        }
        t.row(row);
        if m == Method::GenDt {
            let pos = bundle.kpis.iter().position(|&k| k == Kpi::Rsrp).unwrap();
            report.series.push(("gendt_rsrp".into(), gen[pos].clone()));
        }
    }
    let pos = bundle.kpis.iter().position(|&k| k == Kpi::Rsrp).unwrap();
    report.series.push(("real_rsrp".into(), real[pos].clone()));
    report.tables.push(t);
    report.notes.push(
        "Expected shape (paper Table 7 / Fig. 9): GenDT wins on all metrics; FDaS collapses \
         even on HWD because the long route's distribution differs from training; only \
         Real-Context DG comes close."
            .into(),
    );
    report
}

/// Table 8 + Fig. 10: GenDT vs stitched short-trajectory generation.
pub fn table8(cfg: &EvalCfg, bundle: &mut Bundle) -> Report {
    let (ctx, real) = long_trajectory(cfg, bundle);
    let pos = bundle.kpis.iter().position(|&k| k == Kpi::Rsrp).unwrap();
    let real_rsrp = &real[pos];
    let kpis = bundle.kpis.clone();
    let mut report = Report::new(
        "table8",
        "GenDT vs independently generated short trajectories (stitching)",
    );
    let mut t = MdTable::new(
        "Long-trajectory RSRP: GenDT vs stitching (paper Table 8 analogue)",
        &["Method", "MAE", "DTW", "HWD"],
    );
    let l = bundle.model_cfg.window.len;
    // GenDT with full carry-over.
    let gen = bundle.generate(Method::GenDt, &ctx, cfg.seed ^ 0x7AB9);
    let n = real_rsrp.len().min(gen[pos].len());
    let f = Fidelity::compute(&real_rsrp[..n], &gen[pos][..n]);
    t.row(vec!["GenDT".into(), f2(f.mae), f2(f.dtw), f2(f.hwd)]);
    report.series.push(("gendt".into(), gen[pos].clone()));
    // Stitched variants: segments of ~50 s and ~100 s expressed in steps
    // (multiples of the window length).
    for (label, seg) in [("50s Trajectory", l), ("100s Trajectory", 2 * l)] {
        let out = generate_stitched(&mut bundle.gendt, &ctx, &kpis, seg, cfg.seed ^ 0x7ABA);
        let n = real_rsrp.len().min(out.series[pos].len());
        let f = if n > 0 {
            Fidelity::compute(&real_rsrp[..n], &out.series[pos][..n])
        } else {
            Fidelity::default()
        };
        t.row(vec![label.into(), f2(f.mae), f2(f.dtw), f2(f.hwd)]);
        report
            .series
            .push((label.replace(' ', "_"), out.series[pos].clone()));
    }
    report.series.push(("real".into(), real_rsrp.clone()));
    report.tables.push(t);
    report.notes.push(
        "Expected shape (paper Table 8 / Fig. 10): stitched short generations do worse than \
         carried-state GenDT, especially on HWD, with artifacts at stitch points."
            .into(),
    );
    report
}

/// Fig. 18: qualitative sample series, GenDT vs Real-Context DG (walk).
pub fn fig18(cfg: &EvalCfg, bundle: &mut Bundle) -> Report {
    let mut report = Report::new(
        "fig18",
        "Sample generated RSRP series: GenDT vs Real-Context DG (Walk)",
    );
    let runs = eval_runs(bundle, Scenario::Walk);
    let run = runs.first().cloned().unwrap_or(0);
    let ctx = bundle.contexts[run].clone();
    let real = bundle.ds.runs[run].series(Kpi::Rsrp);
    let pos = bundle.kpis.iter().position(|&k| k == Kpi::Rsrp).unwrap();
    let g1 = bundle.generate(Method::GenDt, &ctx, cfg.seed ^ 0x718);
    let g2 = bundle.generate(Method::RealCtxDg, &ctx, cfg.seed ^ 0x719);
    let mut t = MdTable::new(
        "Tracking error over the sample walk run",
        &["Method", "MAE", "DTW"],
    );
    for (label, gen) in [("GenDT", &g1[pos]), ("Real Cont. DG", &g2[pos])] {
        let n = real.len().min(gen.len());
        let f = Fidelity::compute(&real[..n], &gen[..n]);
        t.row(vec![label.into(), f2(f.mae), f2(f.dtw)]);
    }
    report.tables.push(t);
    report.series.push(("real".into(), real));
    report.series.push(("gendt".into(), g1[pos].clone()));
    report.series.push(("real_ctx_dg".into(), g2[pos].clone()));
    report.notes.push(
        "Paper Fig. 18: GenDT tracks the real series closely; Real-Context DG wanders — it \
         cannot exploit the dynamic per-cell context."
            .into(),
    );
    report
}
