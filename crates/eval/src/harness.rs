//! Shared experiment harness: dataset builds, train/test splits, per-run
//! context extraction, and one trained instance of each method per
//! dataset. Every table/figure module draws from this bundle so the whole
//! evaluation uses consistent models and splits.

use gendt::cfg::GenDtCfg;
use gendt::generate::generate_series;
use gendt::trainer::GenDt;
use gendt_baselines::{DgCfg, DgMode, DoppelGanger, Fdas, LstmGnn, MlpBaseline};
use gendt_data::builders::{dataset_a, dataset_b, BuildCfg};
use gendt_data::context::{extract, ContextCfg, RunContext};
use gendt_data::kpi_types::Kpi;
use gendt_data::run::Dataset;
use gendt_data::windows::{windows as make_windows, Window};
use gendt_metrics::Fidelity;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;

/// Global evaluation configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EvalCfg {
    /// Quick mode: smaller datasets and fewer training steps. Used by
    /// tests and CI; full mode produces the EXPERIMENTS.md numbers.
    pub quick: bool,
    /// Master seed.
    pub seed: u64,
    /// Output directory for reports.
    pub out_dir: PathBuf,
}

impl EvalCfg {
    /// Quick-mode configuration.
    pub fn quick(seed: u64) -> Self {
        EvalCfg {
            quick: true,
            seed,
            out_dir: PathBuf::from("results"),
        }
    }

    /// Full-mode configuration.
    pub fn full(seed: u64) -> Self {
        EvalCfg {
            quick: false,
            seed,
            out_dir: PathBuf::from("results"),
        }
    }

    /// Dataset build config for this mode.
    pub fn build_cfg(&self) -> BuildCfg {
        let mut b = BuildCfg::full(self.seed);
        b.scale = if self.quick { 0.08 } else { 0.30 };
        b
    }

    /// GenDT model config for this mode.
    pub fn gendt_cfg(&self, n_ch: usize) -> GenDtCfg {
        let mut c = GenDtCfg::fast(n_ch, self.seed);
        if self.quick {
            c.hidden = 16;
            c.resgen_hidden = 16;
            c.disc_hidden = 8;
            c.window.len = 20;
            c.window.stride = 5;
            c.window.max_cells = 4;
            c.steps = 40;
            c.batch_size = 6;
        } else {
            c.hidden = 48;
            c.steps = 1200;
        }
        c
    }

    /// Context-extraction config matched to the model config.
    pub fn ctx_cfg(&self, model: &GenDtCfg) -> ContextCfg {
        ContextCfg {
            max_cells: model.window.max_cells,
            ..ContextCfg::default()
        }
    }
}

/// The method column of the fidelity tables.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Method {
    /// The full GenDT model.
    GenDt,
    /// Fit-distribution-and-sample.
    Fdas,
    /// Per-step MLP regression.
    Mlp,
    /// LSTM-GNN prediction model.
    LstmGnn,
    /// Original two-stage DoppelGANger.
    OrigDg,
    /// Real-context DoppelGANger.
    RealCtxDg,
}

impl Method {
    /// All methods in table order.
    pub const ALL: [Method; 6] = [
        Method::GenDt,
        Method::Fdas,
        Method::Mlp,
        Method::LstmGnn,
        Method::OrigDg,
        Method::RealCtxDg,
    ];

    /// Table label.
    pub fn label(self) -> &'static str {
        match self {
            Method::GenDt => "GenDT",
            Method::Fdas => "FDaS",
            Method::Mlp => "MLP",
            Method::LstmGnn => "LSTM-GNN",
            Method::OrigDg => "Orig. DG",
            Method::RealCtxDg => "Real Cont. DG",
        }
    }
}

/// A dataset with split indices, per-run contexts, and trained models.
pub struct Bundle {
    /// The underlying dataset.
    pub ds: Dataset,
    /// Indices of training runs.
    pub train_idx: Vec<usize>,
    /// Indices of held-out test runs.
    pub test_idx: Vec<usize>,
    /// Context per run (aligned with `ds.runs`).
    pub contexts: Vec<RunContext>,
    /// Pooled training windows (training runs only).
    pub train_pool: Vec<Window>,
    /// KPI channels of this dataset.
    pub kpis: Vec<Kpi>,
    /// Trained GenDT.
    pub gendt: GenDt,
    /// Fitted FDaS.
    pub fdas: Fdas,
    /// Trained MLP baseline.
    pub mlp: MlpBaseline,
    /// Trained LSTM-GNN baseline.
    pub lstm_gnn: LstmGnn,
    /// Trained original DG.
    pub dg_orig: DoppelGanger,
    /// Trained real-context DG.
    pub dg_real: DoppelGanger,
    /// The GenDT config used.
    pub model_cfg: GenDtCfg,
}

impl Bundle {
    /// Build and train everything for one dataset.
    pub fn build(cfg: &EvalCfg, ds: Dataset) -> Bundle {
        let kpis = ds.kpis.clone();
        let model_cfg = cfg.gendt_cfg(kpis.len());
        let mut ctx_cfg = cfg.ctx_cfg(&model_cfg);
        ctx_cfg.coord_scale_m = ds.world.cfg.extent_m;

        // Geographic split: 25 % of runs held out, 800 m separation.
        let split = gendt_data::split::geographic_split(&ds.runs, 0.25, 800.0);
        // Convert references back to indices.
        let idx_of = |r: &gendt_data::run::Run| -> usize {
            ds.runs
                .iter()
                .position(|q| std::ptr::eq(q, r))
                .expect("run belongs to dataset")
        };
        let train_idx: Vec<usize> = split.train.iter().map(|r| idx_of(r)).collect();
        let test_idx: Vec<usize> = split.test.iter().map(|r| idx_of(r)).collect();

        let contexts: Vec<RunContext> = ds
            .runs
            .iter()
            .map(|r| extract(&ds.world, &ds.deployment, &r.traj, &ctx_cfg))
            .collect();

        let mut train_pool = Vec::new();
        for &i in &train_idx {
            train_pool.extend(make_windows(
                &ds.runs[i],
                &contexts[i],
                &kpis,
                &model_cfg.training_window(),
            ));
        }

        // --- GenDT ---
        let mut gendt = GenDt::new(model_cfg.clone());
        gendt.train(&train_pool);

        // --- FDaS ---
        let training_series: Vec<Vec<f64>> = kpis
            .iter()
            .map(|&k| {
                train_idx
                    .iter()
                    .flat_map(|&i| ds.runs[i].series(k))
                    .collect()
            })
            .collect();
        let fdas = Fdas::fit(&kpis, &training_series);

        // --- MLP ---
        let mut mlp = MlpBaseline::new(&kpis, if cfg.quick { 16 } else { 48 }, cfg.seed ^ 2);
        mlp.epochs = if cfg.quick { 4 } else { 20 };
        {
            let ctx_refs: Vec<&RunContext> = train_idx.iter().map(|&i| &contexts[i]).collect();
            let targets: Vec<Vec<Vec<f64>>> = train_idx
                .iter()
                .map(|&i| kpis.iter().map(|&k| ds.runs[i].series(k)).collect())
                .collect();
            mlp.fit(&ctx_refs, &targets);
        }

        // --- LSTM-GNN ---
        let mut lg_cfg = model_cfg.clone();
        lg_cfg.seed = cfg.seed ^ 3;
        let mut lstm_gnn = LstmGnn::new(&lg_cfg);
        // LSTM-GNN trains on non-overlapping windows (its own ablation
        // regenerates them internally via training_window()); reuse the
        // pool for simplicity — overlap only adds data, the model ignores
        // the stride.
        lstm_gnn.train(&train_pool);

        // --- DG (both modes) ---
        let mut dg_cfg = DgCfg::fast(DgMode::Original, kpis.len(), cfg.seed ^ 4);
        dg_cfg.window = model_cfg.window;
        dg_cfg.hidden = model_cfg.hidden;
        dg_cfg.steps = model_cfg.steps;
        dg_cfg.batch_size = model_cfg.batch_size;
        let mut dg_orig = DoppelGanger::new(dg_cfg.clone());
        dg_orig.train(&train_pool);
        let mut dg_real_cfg = dg_cfg.clone();
        dg_real_cfg.mode = DgMode::RealContext;
        dg_real_cfg.seed = cfg.seed ^ 5;
        let mut dg_real = DoppelGanger::new(dg_real_cfg);
        dg_real.train(&train_pool);

        Bundle {
            ds,
            train_idx,
            test_idx,
            contexts,
            train_pool,
            kpis,
            gendt,
            fdas,
            mlp,
            lstm_gnn,
            dg_orig,
            dg_real,
            model_cfg,
        }
    }

    /// Build the Dataset-A bundle.
    pub fn dataset_a(cfg: &EvalCfg) -> Bundle {
        Self::build(cfg, dataset_a(&cfg.build_cfg()))
    }

    /// Build the Dataset-B bundle.
    pub fn dataset_b(cfg: &EvalCfg) -> Bundle {
        Self::build(cfg, dataset_b(&cfg.build_cfg()))
    }

    /// Generate a method's series for a run context, in physical units,
    /// `[n_kpis][T']`. Series lengths differ per method (GenDT-family
    /// methods emit `⌊T/L⌋·L` samples); callers truncate to align.
    pub fn generate(&mut self, method: Method, ctx: &RunContext, seed: u64) -> Vec<Vec<f64>> {
        match method {
            Method::GenDt => generate_series(&mut self.gendt, ctx, &self.kpis, false, seed).series,
            Method::Fdas => self.fdas.generate(ctx.steps.len(), seed),
            Method::Mlp => self.mlp.generate(ctx),
            Method::LstmGnn => self.lstm_gnn.generate(ctx, &self.kpis, seed).series,
            Method::OrigDg => self.dg_orig.generate(ctx, &self.kpis, seed),
            Method::RealCtxDg => self.dg_real.generate(ctx, &self.kpis, seed),
        }
    }

    /// Fidelity of a method on one test run and KPI.
    pub fn fidelity(
        &mut self,
        method: Method,
        run_idx: usize,
        kpi: Kpi,
        seed: u64,
    ) -> Option<Fidelity> {
        let ctx = self.contexts[run_idx].clone();
        let gen = self.generate(method, &ctx, seed);
        let ch = self.kpis.iter().position(|&k| k == kpi)?;
        let gen_series = &gen[ch];
        if gen_series.is_empty() {
            return None;
        }
        let real = self.ds.runs[run_idx].series(kpi);
        let n = real.len().min(gen_series.len());
        Some(Fidelity::compute(&real[..n], &gen_series[..n]))
    }

    /// Average fidelity of a method over a set of runs for one KPI.
    pub fn avg_fidelity(
        &mut self,
        method: Method,
        run_idxs: &[usize],
        kpi: Kpi,
        seed: u64,
    ) -> Fidelity {
        let items: Vec<Fidelity> = run_idxs
            .iter()
            .enumerate()
            .filter_map(|(k, &i)| self.fidelity(method, i, kpi, seed ^ ((k as u64 + 1) << 8)))
            .collect();
        Fidelity::average(&items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_eval_cfg() -> EvalCfg {
        let mut c = EvalCfg::quick(101);
        c.out_dir = std::env::temp_dir().join("gendt-harness-test");
        c
    }

    #[test]
    fn bundle_builds_and_generates_all_methods() {
        let cfg = tiny_eval_cfg();
        let mut b = Bundle::dataset_a(&cfg);
        assert!(!b.train_idx.is_empty());
        assert!(!b.test_idx.is_empty());
        assert!(!b.train_pool.is_empty());
        let test_run = b.test_idx[0];
        for m in Method::ALL {
            let f = b.fidelity(m, test_run, Kpi::Rsrp, 7);
            let f = f.expect("method produced output");
            assert!(f.mae.is_finite() && f.mae > 0.0, "{m:?} MAE {}", f.mae);
            assert!(f.hwd.is_finite());
        }
    }
}
