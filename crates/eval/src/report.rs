//! Experiment reporting: markdown tables and JSON result dumps.

use serde::Serialize;
use std::fmt::Write as _;
use std::path::Path;

/// A simple markdown table under construction.
#[derive(Clone, Debug, Serialize)]
pub struct MdTable {
    /// Table caption.
    pub caption: String,
    /// Header cells.
    pub header: Vec<String>,
    /// Body rows.
    pub rows: Vec<Vec<String>>,
}

impl MdTable {
    /// New table with a caption and header.
    pub fn new(caption: &str, header: &[&str]) -> Self {
        MdTable {
            caption: caption.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render as GitHub-flavored markdown.
    pub fn to_markdown(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "**{}**\n", self.caption);
        let _ = writeln!(s, "| {} |", self.header.join(" | "));
        let _ = writeln!(s, "|{}|", vec!["---"; self.header.len()].join("|"));
        for r in &self.rows {
            let _ = writeln!(s, "| {} |", r.join(" | "));
        }
        s
    }
}

/// One experiment's full report.
#[derive(Clone, Debug, Serialize)]
pub struct Report {
    /// Experiment id (e.g. "table3").
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Tables produced.
    pub tables: Vec<MdTable>,
    /// Free-form notes (observed vs expected shape, caveats).
    pub notes: Vec<String>,
    /// Optional raw data series for figures: `(label, series)`.
    pub series: Vec<(String, Vec<f64>)>,
}

impl Report {
    /// New empty report.
    pub fn new(id: &str, title: &str) -> Self {
        Report {
            id: id.to_string(),
            title: title.to_string(),
            tables: Vec::new(),
            notes: Vec::new(),
            series: Vec::new(),
        }
    }

    /// Render the whole report as markdown, including ASCII sparklines
    /// for any attached figure series.
    pub fn to_markdown(&self) -> String {
        let mut s = format!("## {} — {}\n\n", self.id, self.title);
        for t in &self.tables {
            s.push_str(&t.to_markdown());
            s.push('\n');
        }
        if !self.series.is_empty() {
            s.push_str("```text\n");
            for (label, data) in &self.series {
                if data.is_empty() {
                    continue;
                }
                s.push_str(&format!("{label:<26} {}\n", sparkline(data, 60)));
            }
            s.push_str("```\n\n");
        }
        for n in &self.notes {
            s.push_str(&format!("> {n}\n"));
        }
        s
    }

    /// Write markdown and JSON into `dir` as `<id>.md` / `<id>.json`.
    pub fn write_to(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join(format!("{}.md", self.id)), self.to_markdown())?;
        let json = serde_json::to_string_pretty(self).unwrap_or_default();
        std::fs::write(dir.join(format!("{}.json", self.id)), json)?;
        Ok(())
    }
}

/// Format a float with 2 decimals for table cells.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Render a series as a fixed-width ASCII sparkline (unicode block
/// characters), downsampling by bucket means.
pub fn sparkline(data: &[f64], width: usize) -> String {
    const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if data.is_empty() || width == 0 {
        return String::new();
    }
    // Bucket means.
    let w = width.min(data.len());
    let mut buckets = Vec::with_capacity(w);
    for b in 0..w {
        let lo = b * data.len() / w;
        let hi = ((b + 1) * data.len() / w).max(lo + 1);
        let m: f64 = data[lo..hi].iter().sum::<f64>() / (hi - lo) as f64;
        buckets.push(m);
    }
    let min = buckets.iter().cloned().fold(f64::MAX, f64::min);
    let max = buckets.iter().cloned().fold(f64::MIN, f64::max);
    let span = (max - min).max(1e-12);
    buckets
        .into_iter()
        .map(|v| {
            let idx = (((v - min) / span) * 7.0).round() as usize;
            BLOCKS[idx.min(7)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_markdown() {
        let mut t = MdTable::new("Demo", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
        assert!(md.contains("**Demo**"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = MdTable::new("Demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn sparkline_shape() {
        let s = sparkline(&[0.0, 1.0, 2.0, 3.0], 4);
        assert_eq!(s.chars().count(), 4);
        let first = s.chars().next().unwrap();
        let last = s.chars().last().unwrap();
        assert_eq!(first, '▁');
        assert_eq!(last, '█');
    }

    #[test]
    fn sparkline_handles_constant_and_empty() {
        assert_eq!(sparkline(&[], 10), "");
        let s = sparkline(&[5.0; 100], 10);
        assert_eq!(s.chars().count(), 10);
    }

    #[test]
    fn report_roundtrip_to_disk() {
        let mut r = Report::new("test_exp", "A test");
        let mut t = MdTable::new("T", &["x"]);
        t.row(vec!["1".into()]);
        r.tables.push(t);
        r.notes.push("note".into());
        let dir = std::env::temp_dir().join("gendt-eval-report-test");
        r.write_to(&dir).unwrap();
        assert!(dir.join("test_exp.md").exists());
        assert!(dir.join("test_exp.json").exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
