//! Ablation study: paper Table 12 — disable one GenDT design element at a
//! time (ResGen, SRNN stochastic layers, GAN loss, overlapping batching)
//! and measure RSRP/RSRQ fidelity on Dataset B.

use crate::harness::{Bundle, EvalCfg};
use crate::report::{f2, MdTable, Report};
use gendt::cfg::{Ablation, GenDtCfg};
use gendt::generate::generate_series;
use gendt::trainer::GenDt;
use gendt_data::kpi_types::Kpi;
use gendt_data::windows::windows as make_windows;
use gendt_metrics::Fidelity;

/// One ablation variant.
fn variants() -> Vec<(&'static str, Ablation)> {
    let full = Ablation::default();
    vec![
        ("GenDT", full),
        (
            "No ResGen",
            Ablation {
                resgen: false,
                ..full
            },
        ),
        (
            "No SRNN",
            Ablation {
                srnn: false,
                ..full
            },
        ),
        (
            "No GAN loss",
            Ablation {
                gan_loss: false,
                ..full
            },
        ),
        (
            "No batch",
            Ablation {
                overlap_batching: false,
                ..full
            },
        ),
    ]
}

/// Table 12: train each ablated variant on the Dataset-B training pool and
/// evaluate RSRP/RSRQ fidelity on the test runs.
pub fn table12(cfg: &EvalCfg, bundle: &mut Bundle) -> Report {
    let mut report = Report::new("table12", "Ablation study on Dataset B (RSRP, RSRQ)");
    let mut t = MdTable::new(
        "Ablation results (paper Table 12 analogue)",
        &[
            "Variant", "RSRP MAE", "RSRP DTW", "RSRP HWD", "RSRQ MAE", "RSRQ DTW", "RSRQ HWD",
        ],
    );
    let test_idx = bundle.test_idx.clone();
    for (label, ablation) in variants() {
        let mut model_cfg: GenDtCfg = bundle.model_cfg.clone();
        model_cfg.ablation = ablation;
        model_cfg.seed = cfg.seed ^ 0xAB1;
        // Rebuild the pool under the variant's windowing (the batching
        // ablation changes the stride).
        let mut pool = Vec::new();
        for &i in &bundle.train_idx {
            pool.extend(make_windows(
                &bundle.ds.runs[i],
                &bundle.contexts[i],
                &bundle.kpis,
                &model_cfg.training_window(),
            ));
        }
        let mut model = GenDt::new(model_cfg);
        model.train(&pool);

        let mut frs = Vec::new();
        let mut fqs = Vec::new();
        for (j, &i) in test_idx.iter().enumerate() {
            let ctx = &bundle.contexts[i];
            let out = generate_series(
                &mut model,
                ctx,
                &bundle.kpis,
                false,
                cfg.seed ^ ((j as u64 + 1) << 5),
            );
            for (kpi, acc) in [(Kpi::Rsrp, &mut frs), (Kpi::Rsrq, &mut fqs)] {
                if let Some(gen) = out.channel(kpi) {
                    if gen.is_empty() {
                        continue;
                    }
                    let real = bundle.ds.runs[i].series(kpi);
                    let n = real.len().min(gen.len());
                    acc.push(Fidelity::compute(&real[..n], &gen[..n]));
                }
            }
        }
        let fr = Fidelity::average(&frs);
        let fq = Fidelity::average(&fqs);
        t.row(vec![
            label.to_string(),
            f2(fr.mae),
            f2(fr.dtw),
            f2(fr.hwd),
            f2(fq.mae),
            f2(fq.dtw),
            f2(fq.hwd),
        ]);
    }
    report.tables.push(t);
    report.notes.push(
        "Expected shape (paper Table 12): removing ResGen hurts HWD most; removing SRNN hurts \
         all metrics; dropping the GAN loss degrades the most overall; no-batch hurts MAE/DTW."
            .into(),
    );
    report
}
