//! Extension use cases from paper Appendix C.2 — the ones the authors
//! list as "readily supported" but could not evaluate for lack of ground
//! truth. Our simulator *has* the ground truth (cell load is a simulator
//! state; link bandwidth follows from the QoE model), so these close the
//! loop the paper left open.
//!
//! * **Cell-load estimation** (after Chang & Wicaksono / Raida et al.):
//!   regress the serving cell's load from RSRQ and SINR, then test how
//!   well GenDT-generated KPIs substitute for real ones.
//! * **Link-bandwidth prediction** (after Yue et al., LinkForecast):
//!   predict the achievable link bandwidth from the KPI set.

use crate::harness::{Bundle, EvalCfg, Method};
use crate::report::{f2, MdTable, Report};
use gendt_data::kpi_types::Kpi;
use gendt_metrics::Fidelity;
use gendt_nn::{Adam, Graph, Matrix, Mlp, ParamStore, Rng};

/// A small regression head trained on `(features -> target)` step pairs.
struct Regressor {
    store: ParamStore,
    net: Mlp,
    rng: Rng,
    in_dim: usize,
}

impl Regressor {
    fn new(in_dim: usize, hidden: usize, seed: u64) -> Self {
        let mut rng = Rng::seed_from(seed);
        let mut store = ParamStore::new();
        let net = Mlp::new(&mut store, "reg", &[in_dim, hidden, hidden, 1], &mut rng);
        Regressor {
            store,
            net,
            rng,
            in_dim,
        }
    }

    fn fit(&mut self, xs: &[Vec<f32>], ys: &[f32], steps: usize) {
        if xs.is_empty() {
            return;
        }
        let mut opt = Adam::new(2e-3);
        let batch = 64usize.min(xs.len());
        for _ in 0..steps {
            let mut xm = Matrix::zeros(batch, self.in_dim);
            let mut ym = Matrix::zeros(batch, 1);
            for bi in 0..batch {
                let i = self.rng.gen_range(xs.len());
                xm.data[bi * self.in_dim..(bi + 1) * self.in_dim].copy_from_slice(&xs[i]);
                ym.data[bi] = ys[i];
            }
            self.store.zero_grad();
            let mut g = Graph::new();
            let x = g.input(xm);
            let pred = self.net.forward(&mut g, &self.store, x);
            let t = g.input(ym);
            let loss = g.mse_loss(pred, t);
            g.backward(loss, &mut self.store);
            self.store.clip_grad_norm(5.0);
            opt.step(&mut self.store);
        }
    }

    fn predict(&self, x: &[f32]) -> f64 {
        let mut g = Graph::new();
        let xn = g.input(Matrix::from_vec(1, self.in_dim, x.to_vec()));
        let pred = self.net.forward(&mut g, &self.store, xn);
        g.value(pred).data[0] as f64
    }
}

fn load_features(rsrq: f64, sinr: f64) -> Vec<f32> {
    vec![Kpi::Rsrq.normalize(rsrq), Kpi::Sinr.normalize(sinr)]
}

fn bw_features(rsrp: f64, rsrq: f64, sinr: f64, cqi: f64) -> Vec<f32> {
    vec![
        Kpi::Rsrp.normalize(rsrp),
        Kpi::Rsrq.normalize(rsrq),
        Kpi::Sinr.normalize(sinr),
        Kpi::Cqi.normalize(cqi),
    ]
}

/// Link bandwidth ground truth (Mbit/s) from the simulator's QoE model
/// inputs: Shannon-style spectral efficiency at full cell share.
fn link_bandwidth_mbps(sinr_db: f64) -> f64 {
    let sinr = 10f64.powf(sinr_db / 10.0);
    (9e6 * 0.65 * (1.0 + sinr).log2() / 1e6).min(50.0)
}

/// Extra use cases: cell-load estimation and link-bandwidth prediction
/// from generated vs real KPIs (paper Appendix C.2, evaluated here thanks
/// to simulator ground truth).
pub fn extra_usecases(cfg: &EvalCfg, bundle: &mut Bundle) -> Report {
    let mut report = Report::new(
        "extra_usecases",
        "Appendix-C.2 use cases: cell-load estimation and link-bandwidth prediction",
    );
    let steps = if cfg.quick { 150 } else { 800 };

    // ---- train regressors on the training runs' real KPIs ----
    let mut load_x = Vec::new();
    let mut load_y = Vec::new();
    let mut bw_x = Vec::new();
    let mut bw_y = Vec::new();
    for &i in &bundle.train_idx {
        for s in &bundle.ds.runs[i].samples {
            load_x.push(load_features(s.rsrq_db, s.sinr_db));
            load_y.push(s.serving_load as f32);
            bw_x.push(bw_features(s.rsrp_dbm, s.rsrq_db, s.sinr_db, s.cqi as f64));
            bw_y.push((link_bandwidth_mbps(s.sinr_db) / 50.0) as f32);
        }
    }
    let mut load_reg = Regressor::new(2, 16, cfg.seed ^ 0xC2);
    load_reg.fit(&load_x, &load_y, steps);
    let mut bw_reg = Regressor::new(4, 16, cfg.seed ^ 0xC3);
    bw_reg.fit(&bw_x, &bw_y, steps);

    // ---- evaluate with real vs generated KPI inputs ----
    let test_runs = bundle.test_idx.clone();
    let sources: Vec<(String, Option<Method>)> = vec![
        ("Real".into(), None),
        ("GenDT".into(), Some(Method::GenDt)),
        ("FDaS".into(), Some(Method::Fdas)),
        ("MLP".into(), Some(Method::Mlp)),
        ("Real Cont. DG".into(), Some(Method::RealCtxDg)),
    ];
    let mut t = MdTable::new(
        "Use-case fidelity vs simulator ground truth (lower is better)",
        &[
            "KPI source",
            "Cell-load MAE",
            "Cell-load HWD",
            "Bandwidth MAE (Mbps)",
            "Bandwidth DTW",
        ],
    );
    for (label, source) in sources {
        let mut load_fs = Vec::new();
        let mut bw_fs = Vec::new();
        for (j, &i) in test_runs.iter().enumerate() {
            // KPI inputs for the regressors.
            let (rsrp, rsrq, sinr, cqi) = match source {
                None => {
                    let r = &bundle.ds.runs[i];
                    (
                        r.series(Kpi::Rsrp),
                        r.series(Kpi::Rsrq),
                        r.series(Kpi::Sinr),
                        r.series(Kpi::Cqi),
                    )
                }
                Some(m) => {
                    let ctx = bundle.contexts[i].clone();
                    let gen = bundle.generate(m, &ctx, cfg.seed ^ ((j as u64 + 3) << 7));
                    let pos = |k: Kpi| bundle.kpis.iter().position(|&q| q == k).unwrap();
                    (
                        gen[pos(Kpi::Rsrp)].clone(),
                        gen[pos(Kpi::Rsrq)].clone(),
                        gen[pos(Kpi::Sinr)].clone(),
                        gen[pos(Kpi::Cqi)].clone(),
                    )
                }
            };
            let run = &bundle.ds.runs[i];
            let n = rsrq.len().min(run.samples.len());
            if n == 0 {
                continue;
            }
            // Predict and compare against ground truth.
            let mut pred_load = Vec::with_capacity(n);
            let mut true_load = Vec::with_capacity(n);
            let mut pred_bw = Vec::with_capacity(n);
            let mut true_bw = Vec::with_capacity(n);
            for k in 0..n {
                pred_load.push(
                    load_reg
                        .predict(&load_features(rsrq[k], sinr[k]))
                        .clamp(0.0, 1.0),
                );
                true_load.push(run.samples[k].serving_load);
                pred_bw.push(
                    (bw_reg.predict(&bw_features(rsrp[k], rsrq[k], sinr[k], cqi[k])) * 50.0)
                        .max(0.0),
                );
                true_bw.push(link_bandwidth_mbps(run.samples[k].sinr_db));
            }
            load_fs.push(Fidelity::compute(&true_load, &pred_load));
            bw_fs.push(Fidelity::compute(&true_bw, &pred_bw));
        }
        let lf = Fidelity::average(&load_fs);
        let bf = Fidelity::average(&bw_fs);
        t.row(vec![
            label,
            format!("{:.3}", lf.mae),
            format!("{:.3}", lf.hwd),
            f2(bf.mae),
            f2(bf.dtw),
        ]);
    }
    report.tables.push(t);
    report.notes.push(
        "Expected shape: GenDT-generated KPIs support both estimators nearly as well as real \
         KPIs; context-free baselines degrade markedly. The paper lists these use cases in \
         Appendix C.2 but could not evaluate them without ground truth — the simulator \
         substrate provides it."
            .into(),
    );
    report
}
