//! Experiment-runner binary for the GenDT reproduction.
//!
//! ```text
//! gendt-eval --exp all [--quick] [--seed N] [--out DIR]
//! gendt-eval --exp table3,table4
//! gendt-eval --list
//! ```

#![forbid(unsafe_code)]

use gendt_eval::{
    exp_ablation, exp_coverage, exp_efficiency, exp_extra, exp_fidelity, exp_usecases,
    run_standalone, Bundle, EvalCfg, Report, EXPERIMENTS,
};
use gendt_faults::GendtError;
use std::path::PathBuf;
use std::time::Instant;

struct Args {
    exps: Vec<String>,
    quick: bool,
    seed: u64,
    out: PathBuf,
    list: bool,
}

fn parse_args() -> Result<Args, GendtError> {
    let mut exps = Vec::new();
    let mut quick = false;
    let mut seed = 42u64;
    let mut out = PathBuf::from("results");
    let mut list = false;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--exp" => {
                i += 1;
                let v = argv
                    .get(i)
                    .ok_or_else(|| GendtError::config("--exp needs a value"))?;
                exps.extend(v.split(',').map(|s| s.trim().to_string()));
            }
            "--quick" => quick = true,
            "--seed" => {
                i += 1;
                seed = argv
                    .get(i)
                    .ok_or_else(|| GendtError::config("--seed needs a value"))?
                    .parse()
                    .map_err(|e| GendtError::config(format!("bad seed: {e}")))?;
            }
            "--out" => {
                i += 1;
                out = PathBuf::from(
                    argv.get(i)
                        .ok_or_else(|| GendtError::config("--out needs a value"))?,
                );
            }
            "--list" => list = true,
            "--help" | "-h" => {
                gendt_trace::out!(
                    "gendt-eval — regenerate the GenDT paper's tables and figures\n\n\
                     USAGE:\n  gendt-eval --exp <id[,id...]|all> [--quick] [--seed N] [--out DIR]\n  \
                     gendt-eval --list\n\nEXPERIMENTS:\n  {}",
                    EXPERIMENTS.join(", ")
                );
                std::process::exit(0);
            }
            other => {
                return Err(GendtError::config(format!(
                    "unknown argument {other:?} (try --help)"
                )))
            }
        }
        i += 1;
    }
    Ok(Args {
        exps,
        quick,
        seed,
        out,
        list,
    })
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            gendt_trace::error!("error: {e}");
            std::process::exit(e.exit_code() as i32);
        }
    };
    if args.list {
        for e in EXPERIMENTS {
            gendt_trace::out!("{e}");
        }
        return;
    }
    let mut exps: Vec<String> = if args.exps.iter().any(|e| e == "all") || args.exps.is_empty() {
        EXPERIMENTS.iter().map(|s| s.to_string()).collect()
    } else {
        args.exps.clone()
    };
    for e in &exps {
        if !EXPERIMENTS.contains(&e.as_str()) {
            let err = GendtError::config(format!("unknown experiment {e:?}; use --list"));
            gendt_trace::error!("error: {err}");
            std::process::exit(err.exit_code() as i32);
        }
    }
    exps.dedup();

    let cfg = EvalCfg {
        quick: args.quick,
        seed: args.seed,
        out_dir: args.out.clone(),
    };

    // Bundles are expensive (dataset synthesis + training six models);
    // build lazily and share across experiments.
    let mut bundle_a: Option<Bundle> = None;
    let mut bundle_b: Option<Bundle> = None;
    let needs_a = |id: &str| {
        matches!(
            id,
            "table3" | "table4" | "table9" | "fig18" | "extra_usecases" | "coverage"
        )
    };
    let needs_b = |id: &str| {
        matches!(
            id,
            "table5" | "table6" | "table7" | "table8" | "fig11" | "table10" | "table12"
        )
    };

    let total = Instant::now();
    for id in &exps {
        let started = Instant::now();
        gendt_trace::info!(
            "[gendt-eval] running {id} ({} mode)...",
            if cfg.quick { "quick" } else { "full" }
        );
        let report: Report = if let Some(r) = run_standalone(id, &cfg) {
            r
        } else {
            if needs_a(id) && bundle_a.is_none() {
                gendt_trace::info!("[gendt-eval] building & training Dataset A bundle...");
                bundle_a = Some(Bundle::dataset_a(&cfg));
            }
            if needs_b(id) && bundle_b.is_none() {
                gendt_trace::info!("[gendt-eval] building & training Dataset B bundle...");
                bundle_b = Some(Bundle::dataset_b(&cfg));
            }
            match id.as_str() {
                "table3" => exp_fidelity::table3(&cfg, bundle_a.as_mut().unwrap()),
                "table4" => exp_fidelity::table4(&cfg, bundle_a.as_mut().unwrap()),
                "fig18" => exp_fidelity::fig18(&cfg, bundle_a.as_mut().unwrap()),
                "table5" => exp_fidelity::table5(&cfg, bundle_b.as_mut().unwrap()),
                "table6" => exp_fidelity::table6(&cfg, bundle_b.as_mut().unwrap()),
                "table7" => exp_fidelity::table7(&cfg, bundle_b.as_mut().unwrap()),
                "table8" => exp_fidelity::table8(&cfg, bundle_b.as_mut().unwrap()),
                "fig11" => exp_efficiency::fig11(&cfg, bundle_b.as_mut().unwrap()),
                "table9" => exp_usecases::table9(&cfg, bundle_a.as_mut().unwrap()),
                "table10" => exp_usecases::table10(&cfg, bundle_b.as_ref().unwrap()),
                "table12" => exp_ablation::table12(&cfg, bundle_b.as_mut().unwrap()),
                "extra_usecases" => exp_extra::extra_usecases(&cfg, bundle_a.as_mut().unwrap()),
                "coverage" => exp_coverage::coverage_map(&cfg, bundle_a.as_mut().unwrap()),
                other => unreachable!("unhandled experiment {other}"),
            }
        };
        gendt_trace::out!("{}", report.to_markdown());
        if let Err(e) = report.write_to(&cfg.out_dir) {
            gendt_trace::error!("warning: could not write report: {e}");
        }
        gendt_trace::info!(
            "[gendt-eval] {id} done in {:.1}s",
            started.elapsed().as_secs_f64()
        );
    }
    gendt_trace::info!(
        "[gendt-eval] all done in {:.1}s",
        total.elapsed().as_secs_f64()
    );
}
