//! Measurement-efficiency experiment: paper §6.2 / Fig. 11 — uncertainty-
//! driven training-data selection vs random selection, evaluated on the
//! held-out long complex trajectory.

use crate::exp_fidelity::long_trajectory;
use crate::harness::{Bundle, EvalCfg};
use crate::report::{f2, MdTable, Report};
use gendt::active::{run_selection, ActiveConfig, SelectionPolicy};
use gendt_data::kpi_types::Kpi;
use gendt_data::split::regional_subsets;
use gendt_data::windows::windows as make_windows;

/// Fig. 11: selection curves (DTW and HWD vs fraction of data used).
pub fn fig11(cfg: &EvalCfg, bundle: &mut Bundle) -> Report {
    let mut report = Report::new(
        "fig11",
        "Uncertainty-driven vs random training-data selection (measurement efficiency)",
    );
    // Regional subsets over the training runs (paper: 23 subsets; scaled
    // down in quick mode to keep retraining affordable).
    let k = if cfg.quick { 4 } else { 8 };
    let steps = if cfg.quick { 2 } else { k - 1 };
    let train_runs: Vec<gendt_data::run::Run> = bundle
        .train_idx
        .iter()
        .map(|&i| bundle.ds.runs[i].clone())
        .collect();
    let subset_idx = regional_subsets(&train_runs, k, cfg.seed ^ 0xF11);

    let mut model_cfg = bundle.model_cfg.clone();
    // Selection retrains from scratch each step; keep it affordable but
    // large enough that training-set size (not optimization noise)
    // dominates the curve.
    model_cfg.steps = if cfg.quick { 15 } else { 350 };

    let mut subsets = Vec::new();
    let mut subset_ctx = Vec::new();
    for subset in &subset_idx {
        let mut pool = Vec::new();
        for &ri in subset {
            let run = &train_runs[ri];
            let global_idx = bundle.train_idx[ri];
            pool.extend(make_windows(
                run,
                &bundle.contexts[global_idx],
                &bundle.kpis,
                &model_cfg.training_window(),
            ));
        }
        subsets.push(pool);
        // Context of the subset's first run scores its uncertainty.
        let rep_idx = bundle.train_idx[subset[0]];
        subset_ctx.push(bundle.contexts[rep_idx].clone());
    }

    let (eval_ctx, real) = long_trajectory(cfg, bundle);
    let pos = bundle.kpis.iter().position(|&k| k == Kpi::Rsrp).unwrap();
    let eval_real = real[pos].clone();

    let active_cfg = ActiveConfig {
        model_cfg,
        subsets: &subsets,
        subset_ctx: &subset_ctx,
        eval_ctx: &eval_ctx,
        eval_real: &eval_real,
        eval_kpi: Kpi::Rsrp,
        kpis: &bundle.kpis,
        steps,
        mc_samples: if cfg.quick { 2 } else { 4 },
        seed: cfg.seed ^ 0xF11A,
    };
    let unc = run_selection(&active_cfg, SelectionPolicy::Uncertainty);
    let rnd = run_selection(&active_cfg, SelectionPolicy::Random);

    let mut t = MdTable::new(
        "Selection curves (paper Fig. 11 analogue)",
        &[
            "Data used (%)",
            "Uncertainty DTW",
            "Random DTW",
            "Uncertainty HWD",
            "Random HWD",
        ],
    );
    for (u, r) in unc.iter().zip(rnd.iter()) {
        t.row(vec![
            f2(100.0 * u.data_fraction),
            f2(u.eval.dtw),
            f2(r.eval.dtw),
            f2(u.eval.hwd),
            f2(r.eval.hwd),
        ]);
    }
    report.tables.push(t);
    report.series.push((
        "uncertainty_dtw".into(),
        unc.iter().map(|p| p.eval.dtw).collect(),
    ));
    report.series.push((
        "random_dtw".into(),
        rnd.iter().map(|p| p.eval.dtw).collect(),
    ));
    report.series.push((
        "uncertainty_hwd".into(),
        unc.iter().map(|p| p.eval.hwd).collect(),
    ));
    report.series.push((
        "random_hwd".into(),
        rnd.iter().map(|p| p.eval.hwd).collect(),
    ));
    report.notes.push(
        "Expected shape (paper Fig. 11): the uncertainty-selection curve improves faster and \
         plateaus with a small fraction of the data (~10 % in the paper); random selection \
         needs roughly twice as much data for the same fidelity."
            .into(),
    );
    report
}
