//! Coverage mapping with virtual drives (paper §2.1 positions coverage
//! mapping as "a subset of drive testing use cases"; §6.2 notes the model
//! "can generate many more trajectories for which ground truth may not be
//! available").
//!
//! This experiment builds an RSRP coverage map of a region by generating
//! KPI series for a lawnmower sweep of *virtual* drive-test routes with
//! the trained GenDT, then compares the map against (a) simulator ground
//! truth and (b) the map a real-but-sparse drive campaign would produce.

use crate::harness::{Bundle, EvalCfg, Method};
use crate::report::{f2, MdTable, Report};
use gendt_data::context::extract;
use gendt_data::kpi_types::Kpi;
use gendt_geo::trajectory::{Scenario, TrackPoint, Trajectory};
use gendt_geo::XY;
use gendt_metrics as metrics;
use gendt_radio::kpi::{KpiCfg, KpiEngine};
use gendt_radio::propagation::PropagationCfg;
use serde::{Deserialize, Serialize};

/// A rasterized coverage map: mean RSRP per grid cell.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CoverageMap {
    /// Grid cell size, meters.
    pub cell_m: f64,
    /// Half-extent covered, meters.
    pub extent_m: f64,
    /// Cells per side.
    pub side: usize,
    /// Mean RSRP per cell (NaN where no sample fell).
    pub rsrp: Vec<f64>,
    counts: Vec<u32>,
}

impl CoverageMap {
    /// Empty map covering `[-extent, extent]²`.
    pub fn new(extent_m: f64, cell_m: f64) -> Self {
        let side = ((2.0 * extent_m / cell_m).ceil() as usize).max(1);
        CoverageMap {
            cell_m,
            extent_m,
            side,
            rsrp: vec![f64::NAN; side * side],
            counts: vec![0; side * side],
        }
    }

    /// Accumulate one sample.
    pub fn add(&mut self, pos: XY, rsrp_dbm: f64) {
        let gx = (((pos.x + self.extent_m) / self.cell_m) as isize).clamp(0, self.side as isize - 1)
            as usize;
        let gy = (((pos.y + self.extent_m) / self.cell_m) as isize).clamp(0, self.side as isize - 1)
            as usize;
        let idx = gy * self.side + gx;
        let n = self.counts[idx] as f64;
        self.rsrp[idx] = if n == 0.0 {
            rsrp_dbm
        } else {
            (self.rsrp[idx] * n + rsrp_dbm) / (n + 1.0)
        };
        self.counts[idx] += 1;
    }

    /// Fraction of cells with at least one sample.
    pub fn filled_fraction(&self) -> f64 {
        self.counts.iter().filter(|&&c| c > 0).count() as f64 / self.counts.len() as f64
    }

    /// Mean absolute difference over cells filled in both maps.
    pub fn mae_vs(&self, other: &CoverageMap) -> Option<f64> {
        assert_eq!(self.side, other.side, "map grids differ");
        let diffs: Vec<f64> = self
            .rsrp
            .iter()
            .zip(other.rsrp.iter())
            .filter(|(a, b)| a.is_finite() && b.is_finite())
            .map(|(a, b)| (a - b).abs())
            .collect();
        if diffs.is_empty() {
            None
        } else {
            Some(metrics::mean(&diffs))
        }
    }
}

/// Build the lawnmower sweep of virtual routes over the mapped area.
pub fn lawnmower_routes(extent_m: f64, lane_m: f64, speed: f64, period: f64) -> Vec<Trajectory> {
    let mut routes = Vec::new();
    let mut y = -extent_m + lane_m / 2.0;
    let mut flip = false;
    while y < extent_m {
        let mut points = Vec::new();
        let mut t = 0.0;
        let n = (2.0 * extent_m / (speed * period)).ceil() as usize;
        for k in 0..n {
            let frac = k as f64 / n.max(1) as f64;
            let x = -extent_m + 2.0 * extent_m * if flip { 1.0 - frac } else { frac };
            points.push(TrackPoint {
                t,
                pos: XY::new(x, y),
                speed,
            });
            t += period;
        }
        routes.push(Trajectory {
            scenario: Scenario::CityDrive,
            points,
        });
        y += lane_m;
        flip = !flip;
    }
    routes
}

/// Coverage-map experiment on the Dataset-A city.
pub fn coverage_map(cfg: &EvalCfg, bundle: &mut Bundle) -> Report {
    let mut report = Report::new(
        "coverage",
        "RSRP coverage mapping from virtual GenDT drives vs ground truth",
    );
    // Map the central quarter of the city at 250 m resolution.
    let extent = bundle.ds.world.cfg.extent_m * 0.5;
    let cell_m = if cfg.quick { 500.0 } else { 250.0 };
    let lane_m = cell_m;
    let routes = lawnmower_routes(extent, lane_m, 10.0, 1.0);

    // Ground truth: simulator measurement over the same sweep.
    let engine = KpiEngine::new(
        &bundle.ds.world,
        &bundle.ds.deployment,
        PropagationCfg::default(),
        KpiCfg {
            serving_range_m: 2000.0,
            ..KpiCfg::default()
        },
    );
    let mut truth = CoverageMap::new(extent, cell_m);
    for (k, route) in routes.iter().enumerate() {
        // measure() returns one sample per route point, index-aligned.
        let samples = engine.measure(route, cfg.seed ^ ((k as u64 + 1) << 5));
        for (p, s) in route.points.iter().zip(samples.iter()) {
            truth.add(p.pos, s.rsrp_dbm);
        }
    }

    // GenDT virtual drives over the same sweep (no measurement).
    let ctx_cfg = {
        let mut c = cfg.ctx_cfg(&bundle.model_cfg);
        c.coord_scale_m = bundle.ds.world.cfg.extent_m;
        c
    };
    let pos_rsrp = bundle.kpis.iter().position(|&k| k == Kpi::Rsrp).unwrap();
    let mut virt = CoverageMap::new(extent, cell_m);
    for (k, route) in routes.iter().enumerate() {
        let ctx = extract(&bundle.ds.world, &bundle.ds.deployment, route, &ctx_cfg);
        let gen = bundle.generate(Method::GenDt, &ctx, cfg.seed ^ ((k as u64 + 1) << 6));
        for (p, &v) in route.points.iter().zip(gen[pos_rsrp].iter()) {
            virt.add(p.pos, v);
        }
    }

    // Sparse real campaign: only the training runs' samples that fall in
    // the mapped area.
    let mut sparse = CoverageMap::new(extent, cell_m);
    for &i in &bundle.train_idx {
        let run = &bundle.ds.runs[i];
        for (p, s) in run.traj.points.iter().zip(run.samples.iter()) {
            if p.pos.x.abs() <= extent && p.pos.y.abs() <= extent {
                sparse.add(p.pos, s.rsrp_dbm);
            }
        }
    }

    let mut t = MdTable::new(
        "Coverage-map quality (RSRP, mapped central area)",
        &["Map", "Filled cells (%)", "MAE vs ground truth (dB)"],
    );
    t.row(vec![
        "GenDT virtual sweep".into(),
        f2(100.0 * virt.filled_fraction()),
        virt.mae_vs(&truth).map(f2).unwrap_or_else(|| "-".into()),
    ]);
    t.row(vec![
        "Sparse real campaign (training runs only)".into(),
        f2(100.0 * sparse.filled_fraction()),
        sparse.mae_vs(&truth).map(f2).unwrap_or_else(|| "-".into()),
    ]);
    report.tables.push(t);
    report.notes.push(
        "The virtual sweep fills the whole map without any measurement; the sparse real \
         campaign only covers where trucks actually drove. The MAE column quantifies the \
         fidelity price of the generated map."
            .into(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lawnmower_covers_area() {
        let routes = lawnmower_routes(1000.0, 500.0, 10.0, 1.0);
        assert_eq!(routes.len(), 4);
        // Alternating direction.
        let first = &routes[0].points;
        let second = &routes[1].points;
        assert!(first.first().unwrap().pos.x < first.last().unwrap().pos.x);
        assert!(second.first().unwrap().pos.x > second.last().unwrap().pos.x);
    }

    #[test]
    fn map_accumulates_means() {
        let mut m = CoverageMap::new(1000.0, 500.0);
        m.add(XY::new(0.0, 0.0), -80.0);
        m.add(XY::new(10.0, 10.0), -90.0);
        let filled = m.rsrp.iter().filter(|v| v.is_finite()).count();
        assert_eq!(filled, 1);
        let v = m.rsrp.iter().find(|v| v.is_finite()).unwrap();
        assert!((v + 85.0).abs() < 1e-9);
        assert!(m.filled_fraction() > 0.0);
    }

    #[test]
    fn mae_vs_requires_overlap() {
        let mut a = CoverageMap::new(1000.0, 500.0);
        let b = CoverageMap::new(1000.0, 500.0);
        assert!(a.mae_vs(&b).is_none());
        a.add(XY::new(0.0, 0.0), -80.0);
        let mut c = CoverageMap::new(1000.0, 500.0);
        c.add(XY::new(0.0, 0.0), -84.0);
        assert!((a.mae_vs(&c).unwrap() - 4.0).abs() < 1e-9);
    }
}
