//! Dataset-characteristics experiments: paper Tables 1–2 and the §3
//! analysis figures (1, 2, 4, 16).

use crate::harness::EvalCfg;
use crate::report::{f2, MdTable, Report};
use gendt_data::builders::{dataset_a, dataset_b, dataset_b_subscenarios, BuildCfg};
use gendt_data::stats::{cell_densities, dataset_a_stats, scenario_stats, serving_distances};
use gendt_geo::trajectory::{generate, Scenario, TrajectoryCfg};
use gendt_geo::XY;
use gendt_metrics as metrics;
use gendt_radio::kpi::{KpiCfg, KpiEngine};
use gendt_radio::propagation::PropagationCfg;

/// Table 1: statistics of Dataset A per scenario.
pub fn table1(cfg: &EvalCfg) -> Report {
    let ds = dataset_a(&cfg.build_cfg());
    let rows = dataset_a_stats(&ds);
    let mut report = Report::new("table1", "Statistics of Dataset A for different scenarios");
    let mut t = MdTable::new(
        "Dataset A statistics (paper Table 1 analogue)",
        &["Statistic", "Walk", "Bus", "Tram"],
    );
    let col = |f: &dyn Fn(&gendt_data::stats::ScenarioStats) -> String| -> Vec<String> {
        rows.iter().map(f).collect()
    };
    let push = |t: &mut MdTable, name: &str, vals: Vec<String>| {
        let mut row = vec![name.to_string()];
        row.extend(vals);
        t.row(row);
    };
    push(
        &mut t,
        "Time Granularity (s)",
        col(&|r| f2(r.time_granularity_s)),
    );
    push(
        &mut t,
        "Avg. Velocity (m/s)",
        col(&|r| f2(r.avg_velocity_mps)),
    );
    push(
        &mut t,
        "Avg. Duration at each Serving Cell (s)",
        col(&|r| f2(r.avg_serving_dwell_s)),
    );
    push(&mut t, "Avg. RSRP (dBm)", col(&|r| f2(r.avg_rsrp_dbm)));
    push(&mut t, "Std. RSRP (dB)", col(&|r| f2(r.std_rsrp_db)));
    push(&mut t, "Avg. RSRQ (dB)", col(&|r| f2(r.avg_rsrq_db)));
    push(&mut t, "Std. RSRQ (dB)", col(&|r| f2(r.std_rsrq_db)));
    push(
        &mut t,
        "Measurement Samples",
        col(&|r| r.samples.to_string()),
    );
    report.tables.push(t);
    report.notes.push(
        "Paper reference: velocities 1.4/5.6/11.5 m/s, RSRP means -86.6/-87.3/-85.6 dBm \
         (std ~10 dB), RSRQ means -14.4/-12.9/-13.3 dB, dwell 80.5/49.5/43.4 s."
            .into(),
    );
    report
}

/// Table 2: statistics of Dataset B per sub-scenario.
pub fn table2(cfg: &EvalCfg) -> Report {
    let ds = dataset_b(&cfg.build_cfg());
    let subs = dataset_b_subscenarios(&ds);
    let rows: Vec<_> = subs
        .iter()
        .map(|(label, runs)| scenario_stats(label, runs))
        .collect();
    let mut report = Report::new("table2", "Statistics of Dataset B for different scenarios");
    let mut t = MdTable::new(
        "Dataset B statistics (paper Table 2 analogue)",
        &[
            "Statistic",
            "City Driving 1",
            "City Driving 2",
            "Highway 1",
            "Highway 2",
        ],
    );
    let col = |f: &dyn Fn(&gendt_data::stats::ScenarioStats) -> String| -> Vec<String> {
        rows.iter().map(f).collect()
    };
    let push = |t: &mut MdTable, name: &str, vals: Vec<String>| {
        let mut row = vec![name.to_string()];
        row.extend(vals);
        t.row(row);
    };
    push(
        &mut t,
        "Time Granularity (s)",
        col(&|r| f2(r.time_granularity_s)),
    );
    push(
        &mut t,
        "Avg. Velocity (m/s)",
        col(&|r| f2(r.avg_velocity_mps)),
    );
    push(
        &mut t,
        "Avg. Duration at each Serving Cell (s)",
        col(&|r| f2(r.avg_serving_dwell_s)),
    );
    push(&mut t, "Avg. RSRP (dBm)", col(&|r| f2(r.avg_rsrp_dbm)));
    push(&mut t, "Std. RSRP (dB)", col(&|r| f2(r.std_rsrp_db)));
    push(&mut t, "ROC RSRP (dB)", col(&|r| f2(r.roc_rsrp_db)));
    push(&mut t, "Avg. RSRQ (dB)", col(&|r| f2(r.avg_rsrq_db)));
    push(&mut t, "Std. RSRQ (dB)", col(&|r| f2(r.std_rsrq_db)));
    push(&mut t, "ROC RSRQ (dB)", col(&|r| f2(r.roc_rsrq_db)));
    push(&mut t, "Sample Num.", col(&|r| r.samples.to_string()));
    report.tables.push(t);
    report.notes.push(
        "Paper reference: city 9.1-9.8 m/s vs highway 26.7-31.1 m/s; RSRP means -84..-87 dBm, \
         ROC RSRP ~1 dB; serving-cell dwell 22-31 s."
            .into(),
    );
    report
}

/// Figures 1–2: RSRP stochasticity and serving-cell churn on a repeated
/// tram trajectory (five measurement passes, locations aligned).
pub fn fig1_2(cfg: &EvalCfg) -> Report {
    let b = cfg.build_cfg();
    let world = gendt_geo::world::World::generate(gendt_geo::world::WorldCfg::city(b.seed));
    let deployment = gendt_radio::cells::Deployment::from_world(&world);
    let engine = KpiEngine::new(
        &world,
        &deployment,
        PropagationCfg::default(),
        KpiCfg {
            serving_range_m: 2000.0,
            ..KpiCfg::default()
        },
    );
    let dur = if cfg.quick { 300.0 } else { 700.0 };
    let traj = generate(
        &world,
        &TrajectoryCfg::new(Scenario::Tram, dur, XY::new(0.0, 0.0), b.seed ^ 9),
    );

    let mut report = Report::new(
        "fig1_2",
        "RSRP variability and serving-cell changes over a repeated trajectory",
    );
    let mut per_location_std = Vec::new();
    let mut passes: Vec<Vec<f64>> = Vec::new();
    let mut serving: Vec<Vec<u32>> = Vec::new();
    for pass in 0..5 {
        let samples = engine.measure(&traj, 1000 + pass);
        passes.push(samples.iter().map(|s| s.rsrp_dbm).collect());
        serving.push(samples.iter().map(|s| s.serving).collect());
    }
    let n = passes[0].len();
    for t in 0..n {
        let vals: Vec<f64> = passes.iter().map(|p| p[t]).collect();
        per_location_std.push(metrics::std_dev(&vals));
    }
    let mean_std = metrics::mean(&per_location_std);
    // Serving-cell diversity: distinct serving cells seen at each aligned
    // location across the 5 passes.
    let distinct: Vec<f64> = (0..n)
        .map(|t| {
            let mut ids: Vec<u32> = serving.iter().map(|s| s[t]).collect();
            ids.sort_unstable();
            ids.dedup();
            ids.len() as f64
        })
        .collect();
    let mut t = MdTable::new(
        "Pass-to-pass variability (5 passes over the same tram route)",
        &["Quantity", "Value"],
    );
    t.row(vec![
        "Mean per-location RSRP std across passes (dB)".into(),
        f2(mean_std),
    ]);
    t.row(vec![
        "Max per-location RSRP std (dB)".into(),
        f2(per_location_std.iter().cloned().fold(0.0, f64::max)),
    ]);
    t.row(vec![
        "Mean distinct serving cells per location".into(),
        f2(metrics::mean(&distinct)),
    ]);
    t.row(vec![
        "Locations with >1 distinct serving cell (%)".into(),
        f2(100.0 * distinct.iter().filter(|&&d| d > 1.0).count() as f64 / n as f64),
    ]);
    report.tables.push(t);
    for (i, p) in passes.iter().enumerate() {
        report.series.push((format!("rsrp_pass_{i}"), p.clone()));
    }
    report
        .series
        .push(("per_location_std".into(), per_location_std));
    report.notes.push(
        "Paper Fig. 1 shows significant pass-to-pass variation at most locations, co-located \
         with serving-cell diversity (Fig. 2): radio KPIs are stochastic, not deterministic."
            .into(),
    );
    report
}

/// Figure 4: cell density per scenario case, and Figure 16: distance to
/// serving cell CDFs.
pub fn fig4_16(cfg: &EvalCfg) -> Report {
    let b = cfg.build_cfg();
    let ds_a = dataset_a(&b);
    let ds_b = dataset_b(&b);
    let mut report = Report::new(
        "fig4_16",
        "Cell density and distance to serving cell per scenario",
    );

    let mut t = MdTable::new(
        "Cell density (cells/km² within 1 km, sampled along runs) — paper Fig. 4",
        &["Case", "Mean", "P25", "P75"],
    );
    let mut t2 = MdTable::new(
        "Distance to serving cell (m) — paper Fig. 16",
        &["Case", "Median", "P90"],
    );
    let mut cases: Vec<(String, Vec<f64>, Vec<f64>)> = Vec::new();
    for sc in [Scenario::Walk, Scenario::Bus, Scenario::Tram] {
        let runs = ds_a.runs_for(sc);
        cases.push((
            format!("{sc:?}"),
            cell_densities(&ds_a, &runs),
            serving_distances(&runs),
        ));
    }
    for (label, runs) in dataset_b_subscenarios(&ds_b) {
        cases.push((
            label.to_string(),
            cell_densities(&ds_b, &runs),
            serving_distances(&runs),
        ));
    }
    for (label, dens, dist) in &cases {
        let mut d = dens.clone();
        d.sort_by(|a, b| a.partial_cmp(b).unwrap());
        t.row(vec![
            label.clone(),
            f2(metrics::mean(&d)),
            f2(metrics::quantile_sorted(&d, 0.25)),
            f2(metrics::quantile_sorted(&d, 0.75)),
        ]);
        let mut s = dist.clone();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        t2.row(vec![
            label.clone(),
            f2(metrics::quantile_sorted(&s, 0.5)),
            f2(metrics::quantile_sorted(&s, 0.9)),
        ]);
        report.series.push((format!("density_{label}"), d));
        report.series.push((format!("serving_dist_{label}"), s));
    }
    report.tables.push(t);
    report.tables.push(t2);
    report.notes.push(
        "Expected shape (paper Figs. 4 & 16): slow/city cases see higher cell density and \
         closer serving cells than highway cases."
            .into(),
    );
    report
}

/// Re-export of the dataset build for modules that want raw access.
pub fn build_cfg_of(cfg: &EvalCfg) -> BuildCfg {
    cfg.build_cfg()
}
