//! KPI channel identifiers and physical-range normalization.
//!
//! The model trains and generates in a normalized space (roughly
//! `[-1, 1]`); the mapping is a fixed affine transform per KPI using the
//! KPI's physical range (paper §2.2), so denormalization is stable and
//! independent of the training subset.

use serde::{Deserialize, Serialize};

/// A radio-network KPI channel the generator can produce.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Kpi {
    /// Reference Signal Received Power, dBm (−140 good end −44).
    Rsrp,
    /// Reference Signal Received Quality, dB (−19.5 to −3).
    Rsrq,
    /// Signal to interference-plus-noise ratio, dB.
    Sinr,
    /// Channel Quality Indicator, 1–15 (discrete).
    Cqi,
    /// Serving-cell channel: the distance-rank of the serving cell within
    /// the visible set, normalized to `[0, 1]`. Changes in this channel
    /// are handovers (paper §6.3.2 retrains GenDT with a serving-cell
    /// channel for the handover use case).
    Serving,
}

impl Kpi {
    /// The four KPI channels of Dataset A.
    pub const DATASET_A: [Kpi; 4] = [Kpi::Rsrp, Kpi::Rsrq, Kpi::Sinr, Kpi::Cqi];

    /// The two KPI channels available in Dataset B.
    pub const DATASET_B: [Kpi; 2] = [Kpi::Rsrp, Kpi::Rsrq];

    /// Physical value range used for normalization.
    pub fn range(self) -> (f64, f64) {
        match self {
            Kpi::Rsrp => (-140.0, -44.0),
            Kpi::Rsrq => (-19.5, -3.0),
            Kpi::Sinr => (-15.0, 35.0),
            Kpi::Cqi => (1.0, 15.0),
            Kpi::Serving => (0.0, 1.0),
        }
    }

    /// Short label used in tables.
    pub fn label(self) -> &'static str {
        match self {
            Kpi::Rsrp => "RSRP",
            Kpi::Rsrq => "RSRQ",
            Kpi::Sinr => "SINR",
            Kpi::Cqi => "CQI",
            Kpi::Serving => "Serving",
        }
    }

    /// Normalize a physical value to roughly `[-1, 1]`.
    pub fn normalize(self, v: f64) -> f32 {
        let (lo, hi) = self.range();
        (2.0 * (v - lo) / (hi - lo) - 1.0) as f32
    }

    /// Map a normalized value back to physical units, clamped to range.
    pub fn denormalize(self, n: f32) -> f64 {
        let (lo, hi) = self.range();
        let v = lo + (n as f64 + 1.0) / 2.0 * (hi - lo);
        let out = v.clamp(lo, hi);
        if self == Kpi::Cqi {
            out.round()
        } else {
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_roundtrip_in_range() {
        for kpi in [Kpi::Rsrp, Kpi::Rsrq, Kpi::Sinr, Kpi::Serving] {
            let (lo, hi) = kpi.range();
            for k in 0..=10 {
                let v = lo + (hi - lo) * k as f64 / 10.0;
                let back = kpi.denormalize(kpi.normalize(v));
                assert!((back - v).abs() < 1e-4, "{kpi:?} roundtrip {v} -> {back}");
            }
        }
    }

    #[test]
    fn normalized_midpoint_is_zero() {
        let mid = (-140.0 + -44.0) / 2.0;
        assert!(Kpi::Rsrp.normalize(mid).abs() < 1e-6);
    }

    #[test]
    fn denormalize_clamps() {
        assert_eq!(Kpi::Rsrq.denormalize(5.0), -3.0);
        assert_eq!(Kpi::Rsrq.denormalize(-5.0), -19.5);
    }

    #[test]
    fn cqi_denormalizes_to_integers() {
        let v = Kpi::Cqi.denormalize(0.123);
        assert_eq!(v, v.round());
        assert!((1.0..=15.0).contains(&v));
    }
}
