//! Geographic train/test splitting (paper §6.1: training and testing data
//! are non-overlapping *and* geographically separated) and the disjoint
//! regional subsets used by the measurement-efficiency experiment (§6.2).

use crate::run::Run;
use gendt_geo::coords::XY;
use gendt_rng::Rng;

/// A train/test partition of runs (borrowed from the dataset).
#[derive(Debug)]
pub struct Split<'a> {
    /// Training runs.
    pub train: Vec<&'a Run>,
    /// Held-out test runs, geographically separated from training.
    pub test: Vec<&'a Run>,
}

/// Split runs so that test-run centroids are at least `min_sep_m` from
/// every training-run centroid. Greedy: sort runs by an axis projection,
/// take roughly `test_frac` from one geographic side, then drop training
/// runs that violate the separation.
pub fn geographic_split<'a>(runs: &'a [Run], test_frac: f64, min_sep_m: f64) -> Split<'a> {
    assert!((0.0..1.0).contains(&test_frac), "test_frac out of range");
    let mut order: Vec<(f64, &Run)> = runs
        .iter()
        .map(|r| {
            let c = r.centroid();
            (c.x + c.y, r) // diagonal projection
        })
        .collect();
    order.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    let n_test = ((runs.len() as f64 * test_frac).round() as usize).clamp(1, runs.len() - 1);
    let test: Vec<&Run> = order.iter().take(n_test).map(|&(_, r)| r).collect();
    let test_centroids: Vec<XY> = test.iter().map(|r| r.centroid()).collect();
    let train: Vec<&Run> = order
        .iter()
        .skip(n_test)
        .map(|&(_, r)| r)
        .filter(|r| {
            let c = r.centroid();
            test_centroids.iter().all(|tc| tc.dist(&c) >= min_sep_m)
        })
        .collect();
    Split { train, test }
}

/// Partition runs into `k` geographically disjoint subsets by angular
/// sector around the map origin — the "23 subsets with no overlap in
/// geographical region" of §6.2. Subsets are returned non-empty where
/// possible; `k` is reduced when there are fewer runs than sectors.
pub fn regional_subsets(runs: &[Run], k: usize, seed: u64) -> Vec<Vec<usize>> {
    assert!(k > 0, "need at least one subset");
    let k = k.min(runs.len().max(1));
    // Assign by angle of centroid, then balance by splitting the sorted
    // order into k contiguous chunks (contiguous in angle = regional).
    let mut by_angle: Vec<(f64, usize)> = runs
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let c = r.centroid();
            (c.y.atan2(c.x), i)
        })
        .collect();
    by_angle.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    // Random rotation so subset boundaries are not axis-locked.
    let mut rng = Rng::seed_from(seed);
    let rot = rng.gen_range(by_angle.len().max(1));
    by_angle.rotate_left(rot);
    let mut out = vec![Vec::new(); k];
    for (j, (_, idx)) in by_angle.into_iter().enumerate() {
        out[j * k / runs.len().max(1)].push(idx);
    }
    out.retain(|s| !s.is_empty());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{dataset_b, BuildCfg};

    #[test]
    fn split_is_disjoint_and_separated() {
        let ds = dataset_b(&BuildCfg::quick(19));
        let split = geographic_split(&ds.runs, 0.25, 1000.0);
        assert!(!split.train.is_empty());
        assert!(!split.test.is_empty());
        for te in &split.test {
            for tr in &split.train {
                assert!(
                    te.centroid().dist(&tr.centroid()) >= 1000.0,
                    "train/test runs too close"
                );
            }
        }
    }

    #[test]
    fn subsets_cover_all_runs_disjointly() {
        let ds = dataset_b(&BuildCfg::quick(19));
        let subsets = regional_subsets(&ds.runs, 6, 3);
        let mut seen = vec![false; ds.runs.len()];
        for s in &subsets {
            for &i in s {
                assert!(!seen[i], "run {i} in two subsets");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "some run missing from subsets");
    }

    #[test]
    fn split_respects_test_fraction_roughly() {
        let ds = dataset_b(&BuildCfg::quick(19));
        let split = geographic_split(&ds.runs, 0.25, 0.0);
        // With zero separation nothing is dropped from training.
        assert_eq!(split.train.len() + split.test.len(), ds.runs.len());
        let frac = split.test.len() as f64 / ds.runs.len() as f64;
        assert!((0.1..0.45).contains(&frac), "test fraction {frac}");
    }

    #[test]
    fn larger_separation_drops_more_training_runs() {
        let ds = dataset_b(&BuildCfg::quick(19));
        let loose = geographic_split(&ds.runs, 0.25, 100.0);
        let strict = geographic_split(&ds.runs, 0.25, 5000.0);
        assert!(strict.train.len() <= loose.train.len());
    }

    #[test]
    fn subset_count_bounded_by_runs() {
        let ds = dataset_b(&BuildCfg::quick(19));
        let subsets = regional_subsets(&ds.runs, 500, 3);
        assert!(subsets.len() <= ds.runs.len());
    }
}
