//! Drive-test runs and datasets.
//!
//! A [`Run`] is one measurement campaign over one trajectory: the route,
//! the per-sample radio KPIs, and (for Dataset A) the aligned QoE ground
//! truth. A [`Dataset`] bundles the world, deployment, and a collection of
//! runs — the synthetic equivalent of the paper's Dataset A / Dataset B.

use crate::kpi_types::Kpi;
use gendt_geo::trajectory::{Scenario, Trajectory};
use gendt_geo::world::World;
use gendt_radio::cells::Deployment;
use gendt_radio::kpi::KpiSample;
use gendt_radio::qoe::QoeSample;
use serde::{Deserialize, Serialize};

/// One drive-test measurement run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Run {
    /// Scenario the run belongs to.
    pub scenario: Scenario,
    /// The route driven/walked.
    pub traj: Trajectory,
    /// Per-sample KPI measurements, aligned with `traj.points`.
    pub samples: Vec<KpiSample>,
    /// Aligned QoE ground truth, when measured (Dataset A).
    pub qoe: Option<Vec<QoeSample>>,
}

impl Run {
    /// Extract one KPI channel as a physical-unit series.
    ///
    /// For [`Kpi::Serving`] this returns the serving cell's distance-rank
    /// within the visible set, normalized by the visible-cell count — a
    /// continuous representation whose changes are handovers.
    pub fn series(&self, kpi: Kpi) -> Vec<f64> {
        match kpi {
            Kpi::Rsrp => self.samples.iter().map(|s| s.rsrp_dbm).collect(),
            Kpi::Rsrq => self.samples.iter().map(|s| s.rsrq_db).collect(),
            Kpi::Sinr => self.samples.iter().map(|s| s.sinr_db).collect(),
            Kpi::Cqi => self.samples.iter().map(|s| s.cqi as f64).collect(),
            Kpi::Serving => self
                .samples
                .iter()
                .map(|s| {
                    // Rank by distance proxy: serving distance relative to
                    // range gives a stable, continuous channel.
                    (s.serving_dist_m.min(4000.0) / 4000.0).clamp(0.0, 1.0)
                })
                .collect(),
        }
    }

    /// Serving-cell id series (for handover ground truth).
    pub fn serving_ids(&self) -> Vec<u32> {
        self.samples.iter().map(|s| s.serving).collect()
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if the run has no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean position of the run (for geographic splitting).
    pub fn centroid(&self) -> gendt_geo::coords::XY {
        let n = self.traj.points.len().max(1) as f64;
        let (sx, sy) = self
            .traj
            .points
            .iter()
            .fold((0.0, 0.0), |(ax, ay), p| (ax + p.pos.x, ay + p.pos.y));
        gendt_geo::coords::XY::new(sx / n, sy / n)
    }
}

/// A bundle of runs over one world and deployment.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Human-readable dataset name ("A" or "B").
    pub name: String,
    /// The world runs were measured in.
    pub world: World,
    /// The cell deployment.
    pub deployment: Deployment,
    /// All measurement runs.
    pub runs: Vec<Run>,
    /// KPI channels this dataset carries.
    pub kpis: Vec<Kpi>,
}

impl Dataset {
    /// Runs belonging to one scenario.
    pub fn runs_for(&self, scenario: Scenario) -> Vec<&Run> {
        self.runs
            .iter()
            .filter(|r| r.scenario == scenario)
            .collect()
    }

    /// Distinct scenarios present, in stable order.
    pub fn scenarios(&self) -> Vec<Scenario> {
        let mut out = Vec::new();
        for r in &self.runs {
            if !out.contains(&r.scenario) {
                out.push(r.scenario);
            }
        }
        out
    }

    /// Total number of KPI samples across runs.
    pub fn total_samples(&self) -> usize {
        self.runs.iter().map(|r| r.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gendt_geo::coords::XY;
    use gendt_geo::trajectory::TrackPoint;

    fn dummy_run(x: f64) -> Run {
        let samples = vec![KpiSample {
            t: 0.0,
            rsrp_dbm: -80.0,
            rsrq_db: -10.0,
            sinr_db: 5.0,
            cqi: 8,
            rssi_dbm: -55.0,
            serving: 3,
            serving_load: 0.5,
            visible_cells: 4,
            serving_dist_m: 400.0,
        }];
        Run {
            scenario: Scenario::Walk,
            traj: Trajectory {
                scenario: Scenario::Walk,
                points: vec![TrackPoint {
                    t: 0.0,
                    pos: XY::new(x, 0.0),
                    speed: 1.0,
                }],
            },
            samples,
            qoe: None,
        }
    }

    #[test]
    fn series_extracts_channels() {
        let r = dummy_run(0.0);
        assert_eq!(r.series(Kpi::Rsrp), vec![-80.0]);
        assert_eq!(r.series(Kpi::Cqi), vec![8.0]);
        let s = r.series(Kpi::Serving)[0];
        assert!((s - 0.1).abs() < 1e-9);
    }

    #[test]
    fn centroid_averages_positions() {
        let r = dummy_run(10.0);
        assert_eq!(r.centroid(), XY::new(10.0, 0.0));
    }
}
