//! Dataset summary statistics — the rows of the paper's Tables 1–2 and the
//! data-characteristics analysis of §3 (Figs. 4, 16).

use crate::kpi_types::Kpi;
use crate::run::{Dataset, Run};
use gendt_geo::trajectory::Scenario;
use gendt_metrics as metrics;
use gendt_radio::kpi::avg_serving_dwell_s;
use serde::{Deserialize, Serialize};

/// One scenario's summary row (Table 1 / Table 2 column).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScenarioStats {
    /// Scenario label.
    pub label: String,
    /// Mean sampling period, seconds.
    pub time_granularity_s: f64,
    /// Average velocity, m/s.
    pub avg_velocity_mps: f64,
    /// Average dwell time at each serving cell, seconds.
    pub avg_serving_dwell_s: f64,
    /// Mean RSRP, dBm.
    pub avg_rsrp_dbm: f64,
    /// RSRP standard deviation, dB.
    pub std_rsrp_db: f64,
    /// RSRP mean absolute rate of change per sample, dB (Table 2's ROC).
    pub roc_rsrp_db: f64,
    /// Mean RSRQ, dB.
    pub avg_rsrq_db: f64,
    /// RSRQ standard deviation, dB.
    pub std_rsrq_db: f64,
    /// RSRQ rate of change, dB.
    pub roc_rsrq_db: f64,
    /// Total measurement samples.
    pub samples: usize,
}

/// Compute the summary row for a group of runs.
pub fn scenario_stats(label: &str, runs: &[&Run]) -> ScenarioStats {
    let mut periods = Vec::new();
    let mut speeds = Vec::new();
    let mut dwells = Vec::new();
    let mut rsrp = Vec::new();
    let mut rsrq = Vec::new();
    let mut roc_rsrp = Vec::new();
    let mut roc_rsrq = Vec::new();
    let mut samples = 0usize;
    for r in runs {
        for w in r.samples.windows(2) {
            periods.push(w[1].t - w[0].t);
        }
        speeds.push(r.traj.avg_speed());
        dwells.push(avg_serving_dwell_s(&r.samples));
        let sr = r.series(Kpi::Rsrp);
        let sq = r.series(Kpi::Rsrq);
        roc_rsrp.push(metrics::rate_of_change(&sr));
        roc_rsrq.push(metrics::rate_of_change(&sq));
        rsrp.extend(sr);
        rsrq.extend(sq);
        samples += r.len();
    }
    ScenarioStats {
        label: label.to_string(),
        time_granularity_s: metrics::mean(&periods),
        avg_velocity_mps: metrics::mean(&speeds),
        avg_serving_dwell_s: metrics::mean(&dwells),
        avg_rsrp_dbm: metrics::mean(&rsrp),
        std_rsrp_db: metrics::std_dev(&rsrp),
        roc_rsrp_db: metrics::mean(&roc_rsrp),
        avg_rsrq_db: metrics::mean(&rsrq),
        std_rsrq_db: metrics::std_dev(&rsrq),
        roc_rsrq_db: metrics::mean(&roc_rsrq),
        samples,
    }
}

/// Table-1-style rows for Dataset A (walk / bus / tram).
pub fn dataset_a_stats(ds: &Dataset) -> Vec<ScenarioStats> {
    [Scenario::Walk, Scenario::Bus, Scenario::Tram]
        .iter()
        .map(|&sc| {
            let runs = ds.runs_for(sc);
            scenario_stats(&format!("{sc:?}"), &runs)
        })
        .collect()
}

/// Distance to serving cell per scenario group — the data behind the
/// paper's Fig. 16 CDFs.
pub fn serving_distances(runs: &[&Run]) -> Vec<f64> {
    runs.iter()
        .flat_map(|r| r.samples.iter().map(|s| s.serving_dist_m))
        .filter(|d| d.is_finite() && *d < 1e6)
        .collect()
}

/// Cell density (cells within 1 km, per km²) sampled along the runs —
/// the data behind the paper's Fig. 4 box plot.
pub fn cell_densities(ds: &Dataset, runs: &[&Run]) -> Vec<f64> {
    let mut out = Vec::new();
    for r in runs {
        for (i, p) in r.traj.points.iter().enumerate() {
            if i % 20 != 0 {
                continue; // subsample: density varies slowly
            }
            let n = ds.deployment.cells_within(p.pos, 1000.0).len();
            out.push(n as f64 / (std::f64::consts::PI * 1.0f64.powi(2)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{dataset_a, dataset_b, dataset_b_subscenarios, BuildCfg};

    #[test]
    fn dataset_a_rows_ordered_by_speed() {
        let ds = dataset_a(&BuildCfg::quick(23));
        let rows = dataset_a_stats(&ds);
        assert_eq!(rows.len(), 3);
        // Walk < Bus < Tram velocity, as in Table 1.
        assert!(rows[0].avg_velocity_mps < rows[1].avg_velocity_mps);
        assert!(rows[1].avg_velocity_mps < rows[2].avg_velocity_mps);
        // 1 s granularity.
        for r in &rows {
            assert!((r.time_granularity_s - 1.0).abs() < 1e-6);
            assert!(r.samples > 50);
        }
    }

    #[test]
    fn walk_dwell_exceeds_tram_dwell() {
        let ds = dataset_a(&BuildCfg {
            scale: 0.25,
            ..BuildCfg::full(23)
        });
        let rows = dataset_a_stats(&ds);
        assert!(
            rows[0].avg_serving_dwell_s > rows[2].avg_serving_dwell_s,
            "walk dwell {} vs tram dwell {}",
            rows[0].avg_serving_dwell_s,
            rows[2].avg_serving_dwell_s
        );
    }

    #[test]
    fn dataset_b_roc_is_positive_and_small() {
        let ds = dataset_b(&BuildCfg::quick(23));
        for (label, runs) in dataset_b_subscenarios(&ds) {
            let row = scenario_stats(label, &runs);
            assert!(
                row.roc_rsrp_db > 0.0 && row.roc_rsrp_db < 8.0,
                "{label} ROC {}",
                row.roc_rsrp_db
            );
            assert!(row.roc_rsrq_db > 0.0 && row.roc_rsrq_db < 4.0);
        }
    }

    #[test]
    fn serving_distance_shapes() {
        let ds = dataset_b(&BuildCfg::quick(29));
        let subs = dataset_b_subscenarios(&ds);
        let city = serving_distances(&subs[0].1);
        let hwy = serving_distances(&subs[2].1);
        // Highway serving cells are farther on average (paper Fig. 16).
        assert!(metrics::mean(&hwy) > metrics::mean(&city));
    }

    #[test]
    fn cell_density_city_over_highway() {
        let ds = dataset_b(&BuildCfg::quick(29));
        let subs = dataset_b_subscenarios(&ds);
        let city = cell_densities(&ds, &subs[0].1);
        let hwy = cell_densities(&ds, &subs[2].1);
        assert!(
            metrics::mean(&city) > metrics::mean(&hwy),
            "city density {} vs highway {}",
            metrics::mean(&city),
            metrics::mean(&hwy)
        );
    }
}
