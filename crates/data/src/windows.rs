//! Batch windowing for training and generation (paper §4.3.3).
//!
//! The whole KPI series is cut into length-`L` windows: overlapping
//! (stride `Δt < L`) for training, non-overlapping (`Δt = L`) for
//! generation. Each window carries the normalized KPI targets, the window's
//! cell set with per-step features, the per-step environment context, and
//! the last few KPI values preceding the window (seed of the
//! autoregressive ResGen input).

use crate::context::{RunContext, CELL_FEATS};
use crate::kpi_types::Kpi;
use crate::run::Run;
use gendt_radio::cells::CellId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Windowing configuration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct WindowCfg {
    /// Window (batch) length `L` — paper default 50.
    pub len: usize,
    /// Stride `Δt` between window starts — paper default 5 for training.
    pub stride: usize,
    /// Cap on cells per window (union over steps, ranked by presence).
    pub max_cells: usize,
    /// How many trailing KPI values before the window are carried as the
    /// autoregressive seed (`m` in the ResGen input).
    pub ar_context: usize,
}

impl WindowCfg {
    /// Paper-default training windowing: `L = 50`, `Δt = 5`.
    pub fn training() -> Self {
        WindowCfg {
            len: 50,
            stride: 5,
            max_cells: 10,
            ar_context: 4,
        }
    }

    /// Non-overlapping generation windowing: `Δt = L`.
    pub fn generation() -> Self {
        WindowCfg {
            len: 50,
            stride: 50,
            max_cells: 10,
            ar_context: 4,
        }
    }
}

/// One training/generation window.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Window {
    /// Normalized KPI targets, `[n_kpis][len]`.
    pub targets: Vec<Vec<f32>>,
    /// Window cell set: per cell, per-step features `[n_cells][len][5]`.
    pub cells: Vec<Vec<[f32; CELL_FEATS]>>,
    /// Ids of the window's cells, aligned with `cells`.
    pub cell_ids: Vec<CellId>,
    /// Environment context per step, `[len][N_g]`.
    pub env: Vec<Vec<f32>>,
    /// Normalized KPI values for the `ar_context` steps before the window
    /// (zeros at the very start of a run), `[n_kpis][ar_context]`.
    pub ar_seed: Vec<Vec<f32>>,
    /// Index of the window's first step within the run.
    pub start: usize,
}

/// Cut a run (with its extracted context) into windows.
///
/// Windows shorter than `cfg.len` at the tail are dropped, matching the
/// paper's `⌊T/L⌋` batches.
pub fn windows(run: &Run, ctx: &RunContext, kpis: &[Kpi], cfg: &WindowCfg) -> Vec<Window> {
    assert_eq!(run.samples.len(), ctx.steps.len(), "run/context misaligned");
    assert!(cfg.len > 0 && cfg.stride > 0, "degenerate window config");
    let n = run.samples.len();
    if n < cfg.len {
        return Vec::new();
    }
    // Normalized series per KPI, computed once.
    let series: Vec<Vec<f32>> = kpis
        .iter()
        .map(|&k| run.series(k).iter().map(|&v| k.normalize(v)).collect())
        .collect();

    let mut out = Vec::new();
    let mut start = 0usize;
    while start + cfg.len <= n {
        let end = start + cfg.len;

        // Union of visible cells over the window, ranked by how many steps
        // they are present (most persistent first), capped.
        let mut presence: BTreeMap<CellId, usize> = BTreeMap::new();
        for step in &ctx.steps[start..end] {
            for &(id, _) in &step.cells {
                *presence.entry(id).or_insert(0) += 1;
            }
        }
        let mut ranked: Vec<(CellId, usize)> = presence.into_iter().collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(cfg.max_cells);
        let cell_ids: Vec<CellId> = ranked.into_iter().map(|(id, _)| id).collect();

        // Per-cell per-step features; steps where a cell is out of range
        // get a sentinel row (distance 1.0 = edge of range, rest zero).
        let cells: Vec<Vec<[f32; CELL_FEATS]>> = cell_ids
            .iter()
            .map(|&id| {
                ctx.steps[start..end]
                    .iter()
                    .map(|step| {
                        step.cells
                            .iter()
                            .find(|&&(cid, _)| cid == id)
                            .map(|&(_, f)| f)
                            .unwrap_or([0.0, 0.0, 0.0, 0.0, 1.0])
                    })
                    .collect()
            })
            .collect();

        let env: Vec<Vec<f32>> = ctx.steps[start..end]
            .iter()
            .map(|s| s.env.clone())
            .collect();

        let targets: Vec<Vec<f32>> = series.iter().map(|s| s[start..end].to_vec()).collect();

        let ar_seed: Vec<Vec<f32>> = series
            .iter()
            .map(|s| {
                (0..cfg.ar_context)
                    .map(|k| {
                        let idx = start as i64 - cfg.ar_context as i64 + k as i64;
                        if idx >= 0 {
                            s[idx as usize]
                        } else {
                            0.0
                        }
                    })
                    .collect()
            })
            .collect();

        out.push(Window {
            targets,
            cells,
            cell_ids,
            env,
            ar_seed,
            start,
        });
        start += cfg.stride;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{dataset_a, BuildCfg};
    use crate::context::{extract, ContextCfg};

    fn first_run_windows(cfg: &WindowCfg) -> (Run, Vec<Window>) {
        let ds = dataset_a(&BuildCfg::quick(17));
        let run = ds.runs[0].clone();
        let ctx = extract(&ds.world, &ds.deployment, &run.traj, &ContextCfg::default());
        let w = windows(&run, &ctx, &Kpi::DATASET_A, cfg);
        (run, w)
    }

    #[test]
    fn overlapping_windows_cover_run() {
        let cfg = WindowCfg {
            len: 20,
            stride: 5,
            max_cells: 8,
            ar_context: 4,
        };
        let (run, w) = first_run_windows(&cfg);
        assert!(!w.is_empty());
        let expected = (run.len() - cfg.len) / cfg.stride + 1;
        assert_eq!(w.len(), expected);
        for win in &w {
            assert_eq!(win.targets.len(), 4);
            assert_eq!(win.targets[0].len(), 20);
            assert_eq!(win.env.len(), 20);
            assert!(!win.cells.is_empty());
            assert_eq!(win.cells.len(), win.cell_ids.len());
        }
    }

    #[test]
    fn generation_windows_do_not_overlap() {
        let cfg = WindowCfg {
            len: 25,
            stride: 25,
            max_cells: 8,
            ar_context: 4,
        };
        let (_, w) = first_run_windows(&cfg);
        for pair in w.windows(2) {
            assert_eq!(pair[1].start - pair[0].start, 25);
        }
    }

    #[test]
    fn targets_are_normalized() {
        let cfg = WindowCfg::training();
        let (_, w) = first_run_windows(&cfg);
        for win in &w {
            for ch in &win.targets {
                assert!(ch.iter().all(|v| v.abs() <= 1.5), "unnormalized target");
            }
        }
    }

    #[test]
    fn ar_seed_is_zero_at_run_start_then_filled() {
        let cfg = WindowCfg {
            len: 10,
            stride: 10,
            max_cells: 4,
            ar_context: 3,
        };
        let (run, w) = first_run_windows(&cfg);
        assert!(w[0].ar_seed[0].iter().all(|&v| v == 0.0));
        // Second window's seed equals the normalized tail of window 1.
        let rsrp: Vec<f32> = run
            .series(Kpi::Rsrp)
            .iter()
            .map(|&v| Kpi::Rsrp.normalize(v))
            .collect();
        assert_eq!(w[1].ar_seed[0], rsrp[7..10].to_vec());
    }

    #[test]
    fn stride_one_maximizes_overlap() {
        let cfg = WindowCfg {
            len: 10,
            stride: 1,
            max_cells: 2,
            ar_context: 2,
        };
        let (run, w) = first_run_windows(&cfg);
        assert_eq!(w.len(), run.len() - 10 + 1);
        // Consecutive windows shift by exactly one step.
        assert_eq!(w[1].start, w[0].start + 1);
    }

    #[test]
    fn window_cell_ids_are_unique() {
        let cfg = WindowCfg::training();
        let (_, w) = first_run_windows(&cfg);
        for win in &w {
            let mut ids = win.cell_ids.clone();
            ids.sort_unstable();
            let before = ids.len();
            ids.dedup();
            assert_eq!(ids.len(), before, "duplicate cell in window");
        }
    }

    #[test]
    fn exact_length_run_yields_one_window() {
        let ds = dataset_a(&BuildCfg::quick(17));
        let mut run = ds.runs[0].clone();
        run.samples.truncate(12);
        run.traj.points.truncate(12);
        let ctx = extract(&ds.world, &ds.deployment, &run.traj, &ContextCfg::default());
        let cfg = WindowCfg {
            len: 12,
            stride: 12,
            max_cells: 4,
            ar_context: 2,
        };
        let w = windows(&run, &ctx, &Kpi::DATASET_A, &cfg);
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].start, 0);
    }

    #[test]
    fn short_runs_yield_no_windows() {
        let ds = dataset_a(&BuildCfg::quick(17));
        let mut run = ds.runs[0].clone();
        run.samples.truncate(5);
        run.traj.points.truncate(5);
        let ctx = extract(&ds.world, &ds.deployment, &run.traj, &ContextCfg::default());
        let w = windows(&run, &ctx, &Kpi::DATASET_A, &WindowCfg::training());
        assert!(w.is_empty());
    }
}
