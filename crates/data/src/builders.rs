//! Synthesis of Dataset A and Dataset B.
//!
//! Builds worlds, deployments, trajectories, and KPI measurement runs whose
//! aggregate statistics match the shape of the paper's Tables 1–2:
//!
//! * **Dataset A** — one compact city, 1 s sampling, three scenarios
//!   (walk / bus / tram) of ~14–15 k samples each, plus QoE ground truth.
//! * **Dataset B** — a wide multi-city region, coarser jittered sampling,
//!   two city-driving and two highway scenarios of 2–5 × 10⁴ samples.
//!
//! `scale` shrinks the sample counts proportionally (tests and quick mode
//! use `scale ≈ 0.05–0.2`; the full experiments use `1.0`).

use crate::run::{Dataset, Run};
use gendt_geo::coords::XY;
use gendt_geo::trajectory::{generate, Scenario, TrajectoryCfg};
use gendt_geo::world::{DistrictKind, World, WorldCfg};
use gendt_radio::cells::Deployment;
use gendt_radio::kpi::{KpiCfg, KpiEngine};
use gendt_radio::propagation::PropagationCfg;
use gendt_radio::qoe::{qoe_series, QoeCfg};
use gendt_rng::Rng;

use crate::kpi_types::Kpi;

/// Configuration for dataset synthesis.
#[derive(Clone, Debug)]
pub struct BuildCfg {
    /// Sample-count scale relative to the paper's datasets (1.0 = full).
    pub scale: f64,
    /// Master seed.
    pub seed: u64,
    /// Propagation model.
    pub prop: PropagationCfg,
    /// KPI engine configuration.
    pub kpi: KpiCfg,
    /// QoE model (Dataset A only).
    pub qoe: QoeCfg,
}

impl BuildCfg {
    /// Full-scale build with default physics.
    pub fn full(seed: u64) -> Self {
        BuildCfg {
            scale: 1.0,
            seed,
            prop: PropagationCfg::default(),
            kpi: KpiCfg::default(),
            qoe: QoeCfg::default(),
        }
    }

    /// Reduced-scale build for tests and quick runs.
    pub fn quick(seed: u64) -> Self {
        BuildCfg {
            scale: 0.08,
            ..Self::full(seed)
        }
    }
}

/// Pick a start point inside a district of the wanted kind (or anywhere if
/// none exists).
fn start_in(world: &World, kind: DistrictKind, rng: &mut Rng) -> XY {
    let candidates: Vec<XY> = world
        .districts
        .iter()
        .filter(|d| d.kind == kind)
        .map(|d| d.center)
        .collect();
    if candidates.is_empty() {
        return XY::new(0.0, 0.0);
    }
    let c = candidates[rng.gen_range(candidates.len())];
    XY::new(
        c.x + rng.uniform(-500.0, 500.0),
        c.y + rng.uniform(-500.0, 500.0),
    )
}

/// Build synthetic Dataset A: walk / bus / tram around a city center at
/// 1 s granularity, with QoE ground truth attached.
pub fn dataset_a(cfg: &BuildCfg) -> Dataset {
    let world = World::generate(WorldCfg::city(cfg.seed));
    let deployment = Deployment::from_world(&world);
    // City serving range (paper: ~2 km within cities).
    let kpi_cfg = KpiCfg {
        serving_range_m: 2000.0,
        ..cfg.kpi
    };
    let engine = KpiEngine::new(&world, &deployment, cfg.prop, kpi_cfg);
    let mut rng = Rng::seed_from(cfg.seed ^ 0xDA7A_5E7A);

    // Paper Table 1 sample counts: walk 15245, bus 13890, tram 14198 — one
    // scenario's total split over several runs.
    let plan: [(Scenario, f64, usize); 3] = [
        (Scenario::Walk, 15_245.0, 6),
        (Scenario::Bus, 13_890.0, 5),
        (Scenario::Tram, 14_198.0, 5),
    ];

    let mut runs = Vec::new();
    for (scenario, total_s, n_runs) in plan {
        let per_run = (total_s * cfg.scale / n_runs as f64).max(60.0);
        for k in 0..n_runs {
            let start = start_in(&world, DistrictKind::CityCenter, &mut rng);
            let tcfg = TrajectoryCfg::new(scenario, per_run, start, rng.next_u64());
            let traj = generate(&world, &tcfg);
            let pass_seed = rng.next_u64();
            let samples = engine.measure(&traj, pass_seed);
            let qoe = qoe_series(&cfg.qoe, &samples, pass_seed ^ 0x90E);
            runs.push(Run {
                scenario,
                traj,
                samples,
                qoe: Some(qoe),
            });
            let _ = k;
        }
    }

    Dataset {
        name: "A".to_string(),
        world,
        deployment,
        runs,
        kpis: Kpi::DATASET_A.to_vec(),
    }
}

/// Build synthetic Dataset B: two city-driving and two highway scenarios
/// over a wide region, coarse jittered sampling, RSRP/RSRQ only.
pub fn dataset_b(cfg: &BuildCfg) -> Dataset {
    let world = World::generate(WorldCfg::region(cfg.seed.wrapping_add(1)));
    let deployment = Deployment::from_world(&world);
    let engine = KpiEngine::new(&world, &deployment, cfg.prop, cfg.kpi);
    let mut rng = Rng::seed_from(cfg.seed ^ 0x000D_A7AB);

    // Paper Table 2: City Driving 1/2 at 3.8/3.5 s, Highway 1/2 at
    // 2.1/2.3 s; sample counts 2.1, 2.3, 3.9, 4.6 ×10⁴. Duration =
    // samples × period.
    let plan: [(Scenario, DistrictKind, f64, usize); 4] = [
        (
            Scenario::CityDrive,
            DistrictKind::CityCenter,
            2.1e4 * 3.8,
            6,
        ),
        (Scenario::CityDrive, DistrictKind::Urban, 2.3e4 * 3.5, 6),
        (Scenario::Highway, DistrictKind::Rural, 3.9e4 * 2.1, 6),
        (Scenario::Highway, DistrictKind::Rural, 4.6e4 * 2.3, 6),
    ];

    let mut runs = Vec::new();
    for (scenario, kind, total_s, n_runs) in plan {
        let per_run = (total_s * cfg.scale / n_runs as f64).max(120.0);
        for _ in 0..n_runs {
            let start = start_in(&world, kind, &mut rng);
            let tcfg = TrajectoryCfg::new(scenario, per_run, start, rng.next_u64());
            let traj = generate(&world, &tcfg);
            let samples = engine.measure(&traj, rng.next_u64());
            runs.push(Run {
                scenario,
                traj,
                samples,
                qoe: None,
            });
        }
    }

    Dataset {
        name: "B".to_string(),
        world,
        deployment,
        runs,
        kpis: Kpi::DATASET_B.to_vec(),
    }
}

/// The named sub-scenarios of Dataset B (paper Table 2 columns): pairs of
/// `(label, index range into the run plan)`. Runs are emitted in plan
/// order with 6 runs per sub-scenario.
pub fn dataset_b_scenario_labels() -> [&'static str; 4] {
    ["City Center 1", "City Center 2", "Highway 1", "Highway 2"]
}

/// Split Dataset B's runs into the four Table-2 sub-scenarios (6 runs
/// each, in emission order).
pub fn dataset_b_subscenarios(ds: &Dataset) -> Vec<(&'static str, Vec<&Run>)> {
    let labels = dataset_b_scenario_labels();
    labels
        .iter()
        .enumerate()
        .map(|(i, &label)| {
            let runs: Vec<&Run> = ds.runs.iter().skip(i * 6).take(6).collect();
            (label, runs)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gendt_metrics as metrics;

    fn quick_a() -> Dataset {
        dataset_a(&BuildCfg::quick(7))
    }

    #[test]
    fn dataset_a_has_three_scenarios() {
        let ds = quick_a();
        let sc = ds.scenarios();
        assert_eq!(sc.len(), 3);
        assert!(ds.total_samples() > 500);
        assert!(ds.runs.iter().all(|r| r.qoe.is_some()));
    }

    #[test]
    fn dataset_a_sampling_is_one_second() {
        let ds = quick_a();
        for r in &ds.runs {
            for w in r.samples.windows(2) {
                assert!((w[1].t - w[0].t - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn dataset_a_rsrp_stats_plausible() {
        let ds = quick_a();
        for sc in ds.scenarios() {
            let mut vals = Vec::new();
            for r in ds.runs_for(sc) {
                vals.extend(r.series(Kpi::Rsrp));
            }
            let mean = metrics::mean(&vals);
            let std = metrics::std_dev(&vals);
            // Paper Table 1: means -85..-88 dBm, std ~10 dB. Allow slack.
            assert!((-100.0..-70.0).contains(&mean), "{sc:?} mean RSRP {mean}");
            assert!((4.0..18.0).contains(&std), "{sc:?} std RSRP {std}");
        }
    }

    #[test]
    fn dataset_b_has_four_subscenarios_of_six_runs() {
        let ds = dataset_b(&BuildCfg::quick(7));
        assert_eq!(ds.runs.len(), 24);
        let subs = dataset_b_subscenarios(&ds);
        assert_eq!(subs.len(), 4);
        for (_, runs) in &subs {
            assert_eq!(runs.len(), 6);
        }
        assert!(ds.runs.iter().all(|r| r.qoe.is_none()));
    }

    #[test]
    fn dataset_b_highways_are_faster() {
        let ds = dataset_b(&BuildCfg::quick(3));
        let subs = dataset_b_subscenarios(&ds);
        let avg_speed = |runs: &Vec<&Run>| {
            let v: Vec<f64> = runs.iter().map(|r| r.traj.avg_speed()).collect();
            metrics::mean(&v)
        };
        let city = avg_speed(&subs[0].1);
        let hwy = avg_speed(&subs[2].1);
        assert!(hwy > 2.0 * city, "highway {hwy} vs city {city}");
    }

    #[test]
    fn scale_controls_sample_count() {
        let small = dataset_a(&BuildCfg {
            scale: 0.05,
            ..BuildCfg::full(9)
        });
        let larger = dataset_a(&BuildCfg {
            scale: 0.15,
            ..BuildCfg::full(9)
        });
        assert!(larger.total_samples() > 2 * small.total_samples());
    }

    #[test]
    fn builds_are_deterministic() {
        let a = dataset_a(&BuildCfg::quick(5));
        let b = dataset_a(&BuildCfg::quick(5));
        assert_eq!(a.total_samples(), b.total_samples());
        assert_eq!(a.runs[0].series(Kpi::Rsrp), b.runs[0].series(Kpi::Rsrp));
    }
}
