//! Dataset-export tool: synthesize Dataset A or B and dump runs as JSON
//! or CSV for use outside this workspace.
//!
//! ```text
//! gendt-datagen --dataset a --scale 0.1 --seed 42 --format csv --out data_a/
//! gendt-datagen --dataset b --format json --out data_b/
//! ```

#![forbid(unsafe_code)]

use gendt_data::builders::{dataset_a, dataset_b, BuildCfg};
use gendt_data::kpi_types::Kpi;
use gendt_data::run::Dataset;
use std::fmt::Write as _;
use std::path::PathBuf;

struct Args {
    dataset: String,
    scale: f64,
    seed: u64,
    format: String,
    out: PathBuf,
}

fn parse() -> Result<Args, String> {
    let mut a = Args {
        dataset: "a".into(),
        scale: 0.1,
        seed: 42,
        format: "csv".into(),
        out: PathBuf::from("dataset_out"),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let key = argv[i].clone();
        match key.as_str() {
            "--dataset" | "--scale" | "--seed" | "--format" | "--out" => {
                i += 1;
                let v = argv.get(i).ok_or_else(|| format!("{key} needs a value"))?;
                match key.as_str() {
                    "--dataset" => a.dataset = v.to_lowercase(),
                    "--scale" => a.scale = v.parse().map_err(|e| format!("bad scale: {e}"))?,
                    "--seed" => a.seed = v.parse().map_err(|e| format!("bad seed: {e}"))?,
                    "--format" => a.format = v.to_lowercase(),
                    "--out" => a.out = PathBuf::from(v),
                    _ => unreachable!(),
                }
            }
            "--help" | "-h" => {
                println!(
                    "gendt-datagen — synthesize and export GenDT drive-test datasets\n\n\
                     USAGE: gendt-datagen [--dataset a|b] [--scale F] [--seed N] \
                     [--format csv|json] [--out DIR]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
        i += 1;
    }
    if a.dataset != "a" && a.dataset != "b" {
        return Err("--dataset must be 'a' or 'b'".into());
    }
    if a.format != "csv" && a.format != "json" {
        return Err("--format must be 'csv' or 'json'".into());
    }
    if !(a.scale > 0.0 && a.scale <= 1.0) {
        return Err("--scale must be in (0, 1]".into());
    }
    Ok(a)
}

fn run_to_csv(ds: &Dataset, run_idx: usize) -> String {
    let run = &ds.runs[run_idx];
    let mut s = String::from(
        "t_s,lat,lon,x_m,y_m,speed_mps,rsrp_dbm,rsrq_db,sinr_db,cqi,rssi_dbm,serving_cell,\
         serving_dist_m,visible_cells,serving_load",
    );
    if run.qoe.is_some() {
        s.push_str(",throughput_mbps,per");
    }
    s.push('\n');
    for (k, smp) in run.samples.iter().enumerate() {
        let p = run.traj.points[k];
        let ll = ds.world.to_latlon(p.pos);
        let _ = write!(
            s,
            "{:.1},{:.6},{:.6},{:.1},{:.1},{:.2},{:.2},{:.2},{:.2},{},{:.2},{},{:.1},{},{:.3}",
            smp.t,
            ll.lat,
            ll.lon,
            p.pos.x,
            p.pos.y,
            p.speed,
            smp.rsrp_dbm,
            smp.rsrq_db,
            smp.sinr_db,
            smp.cqi,
            smp.rssi_dbm,
            smp.serving,
            smp.serving_dist_m,
            smp.visible_cells,
            smp.serving_load,
        );
        if let Some(q) = &run.qoe {
            let _ = write!(s, ",{:.3},{:.4}", q[k].throughput_mbps, q[k].per);
        }
        s.push('\n');
    }
    s
}

fn cells_to_csv(ds: &Dataset) -> String {
    let mut s = String::from("cell_id,lat,lon,x_m,y_m,azimuth_deg,p_max_dbm,district\n");
    for c in &ds.deployment.cells {
        let _ = writeln!(
            s,
            "{},{:.6},{:.6},{:.1},{:.1},{:.1},{:.1},{:?}",
            c.id,
            c.latlon.lat,
            c.latlon.lon,
            c.pos.x,
            c.pos.y,
            c.azimuth_deg,
            c.p_max_dbm,
            c.district
        );
    }
    s
}

fn main() {
    let args = match parse() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let cfg = BuildCfg {
        scale: args.scale,
        ..BuildCfg::full(args.seed)
    };
    eprintln!(
        "synthesizing dataset {} (scale {}, seed {})...",
        args.dataset, args.scale, args.seed
    );
    let ds = if args.dataset == "a" {
        dataset_a(&cfg)
    } else {
        dataset_b(&cfg)
    };
    std::fs::create_dir_all(&args.out).expect("create output dir");

    // Cell database (the CellMapper analogue).
    std::fs::write(args.out.join("cells.csv"), cells_to_csv(&ds)).expect("write cells");

    match args.format.as_str() {
        "csv" => {
            for i in 0..ds.runs.len() {
                let name = format!("run_{:03}_{:?}.csv", i, ds.runs[i].scenario);
                std::fs::write(args.out.join(name), run_to_csv(&ds, i)).expect("write run");
            }
        }
        _ => {
            for (i, run) in ds.runs.iter().enumerate() {
                let name = format!("run_{:03}_{:?}.json", i, run.scenario);
                let json = serde_json::to_string(run).expect("serialize run");
                std::fs::write(args.out.join(name), json).expect("write run");
            }
        }
    }
    let kpi_labels: Vec<&str> = ds.kpis.iter().map(|k: &Kpi| k.label()).collect();
    eprintln!(
        "wrote {} runs ({} samples, KPIs: {}) + cells.csv to {}",
        ds.runs.len(),
        ds.total_samples(),
        kpi_labels.join("/"),
        args.out.display()
    );
}
