//! # gendt-data — drive-test dataset synthesis and model-input pipeline
//!
//! Builds the synthetic counterparts of the paper's two measurement
//! datasets and everything the model consumes:
//!
//! * [`kpi_types`] — KPI channels and fixed-range normalization.
//! * [`run`] — drive-test runs and datasets.
//! * [`builders`] — Dataset A (city walk/bus/tram, 1 s) and Dataset B
//!   (region city-driving/highway, coarse jittered sampling).
//! * [`context`] — network (per-cell) and environment (26-attribute)
//!   conditioning context per trajectory step.
//! * [`windows`] — overlapping/non-overlapping batch windowing
//!   (paper §4.3.3).
//! * [`split`] — geographic train/test splits and the disjoint regional
//!   subsets of the measurement-efficiency experiment.
//! * [`stats`] — Table 1/2 summary rows, Fig. 4 cell densities, Fig. 16
//!   serving-cell distance samples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builders;
pub mod context;
pub mod kpi_types;
pub mod run;
pub mod split;
pub mod stats;
pub mod windows;

pub use builders::{dataset_a, dataset_b, dataset_b_subscenarios, BuildCfg};
pub use context::{cell_features, extract, ContextCfg, RunContext, StepContext, CELL_FEATS};
pub use kpi_types::Kpi;
pub use run::{Dataset, Run};
pub use split::{geographic_split, regional_subsets, Split};
pub use stats::{
    cell_densities, dataset_a_stats, scenario_stats, serving_distances, ScenarioStats,
};
pub use windows::{windows, Window, WindowCfg};
