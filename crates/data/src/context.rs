//! Context extraction: the conditioning input of the GenDT model.
//!
//! For every trajectory step this produces:
//!
//! * **Network context** — for each potential serving cell within `d_s`,
//!   the paper's `N_c = 5` attributes `[lat, lon, p_max, direction,
//!   distance_t]`, normalized: absolute cell coordinates scaled by the
//!   world extent (the lat/lon of the paper), transmit power, boresight
//!   azimuth, and the time-varying distance to the device. Keeping the
//!   coordinates absolute is faithful to the paper and matters for the
//!   baseline comparison: per-step regressors latch onto the absolute
//!   positions and generalize poorly to held-out geography, while the
//!   GNN's weight sharing across cells regularizes GenDT.
//! * **Environment context** — the 26 land-use / PoI attributes within
//!   500 m of the device (paper §2.3.4), with PoI counts log-compressed.

use gendt_geo::coords::XY;
use gendt_geo::landuse::ENV_ATTRS;
use gendt_geo::trajectory::Trajectory;
use gendt_geo::world::World;
use gendt_radio::cells::{CellId, Deployment};
use serde::{Deserialize, Serialize};

/// Number of features per cell (`N_c` in the paper).
pub const CELL_FEATS: usize = 5;

/// Context-extraction configuration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ContextCfg {
    /// Serving-range `d_s` bounding the visible cell set, meters.
    pub d_s: f64,
    /// Environment-context radius, meters (paper: 500 m).
    pub env_radius_m: f64,
    /// Cap on cells fed to the model per step (nearest-first).
    pub max_cells: usize,
    /// Coordinate normalization scale, meters (usually the world
    /// half-extent); absolute cell positions are divided by this.
    pub coord_scale_m: f64,
}

impl Default for ContextCfg {
    fn default() -> Self {
        ContextCfg {
            d_s: 2000.0,
            env_radius_m: 500.0,
            max_cells: 10,
            coord_scale_m: 4000.0,
        }
    }
}

/// Per-step context snapshot.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StepContext {
    /// Visible cells (nearest-first, capped), with their feature vectors.
    pub cells: Vec<(CellId, [f32; CELL_FEATS])>,
    /// Environment attribute vector (length [`ENV_ATTRS`]).
    pub env: Vec<f32>,
}

/// Context for a whole trajectory, aligned with its points.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunContext {
    /// One snapshot per trajectory point.
    pub steps: Vec<StepContext>,
}

/// Compute the cell feature vector for one cell seen from `ue`.
pub fn cell_features(
    cfg: &ContextCfg,
    deployment: &Deployment,
    id: CellId,
    ue: XY,
) -> [f32; CELL_FEATS] {
    let cell = deployment.cell(id);
    // Paper attributes: [lat, lon, p_max, direction, distance_t].
    let cx = cell.pos.x / cfg.coord_scale_m;
    let cy = cell.pos.y / cfg.coord_scale_m;
    let p = (cell.p_max_dbm - 43.0) / 3.0;
    let dir = cell.azimuth_deg / 180.0 - 1.0;
    let dist = cell.pos.dist(&ue) / cfg.d_s;
    [cx as f32, cy as f32, p as f32, dir as f32, dist as f32]
}

/// Normalize an environment vector: land-use fractions pass through, PoI
/// counts are log-compressed (`ln(1 + n) / 4`).
pub fn normalize_env(raw: &[f64]) -> Vec<f32> {
    raw.iter()
        .enumerate()
        .map(|(i, &v)| {
            if i < gendt_geo::landuse::LandUse::COUNT {
                v as f32
            } else {
                ((1.0 + v).ln() / 4.0) as f32
            }
        })
        .collect()
}

/// Extract the full context series for a trajectory.
pub fn extract(
    world: &World,
    deployment: &Deployment,
    traj: &Trajectory,
    cfg: &ContextCfg,
) -> RunContext {
    let steps = traj
        .points
        .iter()
        .map(|pt| {
            let mut ids = deployment.cells_within(pt.pos, cfg.d_s);
            ids.truncate(cfg.max_cells);
            let cells = ids
                .into_iter()
                .map(|id| (id, cell_features(cfg, deployment, id, pt.pos)))
                .collect();
            let env = normalize_env(&world.env_context(pt.pos, cfg.env_radius_m));
            debug_assert_eq!(env.len(), ENV_ATTRS);
            StepContext { cells, env }
        })
        .collect();
    RunContext { steps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gendt_geo::trajectory::{generate, Scenario, TrajectoryCfg};
    use gendt_geo::world::WorldCfg;

    fn setup() -> (World, Deployment, Trajectory) {
        let w = World::generate(WorldCfg::city(31));
        let d = Deployment::from_world(&w);
        let t = generate(
            &w,
            &TrajectoryCfg::new(Scenario::Walk, 120.0, XY::new(0.0, 0.0), 2),
        );
        (w, d, t)
    }

    #[test]
    fn context_aligned_with_trajectory() {
        let (w, d, t) = setup();
        let ctx = extract(&w, &d, &t, &ContextCfg::default());
        assert_eq!(ctx.steps.len(), t.points.len());
    }

    #[test]
    fn cells_capped_and_nearest_first() {
        let (w, d, t) = setup();
        let cfg = ContextCfg {
            max_cells: 4,
            ..ContextCfg::default()
        };
        let ctx = extract(&w, &d, &t, &cfg);
        for step in &ctx.steps {
            assert!(step.cells.len() <= 4);
            let dists: Vec<f32> = step.cells.iter().map(|(_, f)| f[4]).collect();
            for pair in dists.windows(2) {
                assert!(pair[1] >= pair[0] - 1e-6, "cells not nearest-first");
            }
        }
    }

    #[test]
    fn features_bounded() {
        let (w, d, t) = setup();
        let ctx = extract(&w, &d, &t, &ContextCfg::default());
        for step in &ctx.steps {
            for (_, f) in &step.cells {
                assert!(
                    f[0].abs() <= 1.01 && f[1].abs() <= 1.01,
                    "cell coords out of range"
                );
                assert!(f[2].abs() <= 2.0, "power feature out of range: {}", f[2]);
                assert!((-1.0..=1.0).contains(&f[3]), "direction out of range");
                assert!((0.0..=1.01).contains(&f[4]), "distance out of range");
            }
            assert_eq!(step.env.len(), ENV_ATTRS);
            assert!(step.env.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn env_normalization_compresses_counts() {
        let mut raw = vec![0.0; ENV_ATTRS];
        raw[0] = 0.5; // land-use fraction passes through
        raw[12] = 50.0; // PoI count gets log-compressed
        let n = normalize_env(&raw);
        assert!((n[0] - 0.5).abs() < 1e-6);
        assert!(n[12] < 1.1, "compressed count {}", n[12]);
        assert!(n[12] > 0.5);
    }

    #[test]
    fn moving_away_changes_distance_feature() {
        let (w, d, _) = setup();
        let cfg = ContextCfg::default();
        let ids = d.cells_within(XY::new(0.0, 0.0), cfg.d_s);
        let id = ids[0];
        let near = cell_features(&cfg, &d, id, d.cell(id).pos);
        let far = cell_features(
            &cfg,
            &d,
            id,
            XY::new(d.cell(id).pos.x + 1500.0, d.cell(id).pos.y),
        );
        assert!(far[4] > near[4]);
        let _ = w;
    }
}
