//! One Criterion bench target per paper table/figure: each benchmark runs
//! the corresponding experiment pipeline at miniature scale, so `cargo
//! bench` both regenerates every experiment's code path and tracks its
//! cost over time. (The publication-scale numbers come from
//! `gendt-eval --exp all`; see EXPERIMENTS.md.)

use criterion::{criterion_group, criterion_main, Criterion};
use gendt_eval::{
    exp_ablation, exp_efficiency, exp_fidelity, exp_stats, exp_usecases, Bundle, EvalCfg,
};
use std::sync::OnceLock;

fn cfg() -> EvalCfg {
    let mut c = EvalCfg::quick(4242);
    c.out_dir = std::env::temp_dir().join("gendt-bench-results");
    c
}

/// The Dataset-A bundle is expensive to train; build it once per bench
/// process and share.
fn bundle_a() -> &'static mut Bundle {
    static mut BUNDLE: OnceLock<Bundle> = OnceLock::new();
    // Criterion runs benches sequentially on one thread; the unsafe
    // mutable access is confined to this binary.
    #[allow(static_mut_refs)]
    unsafe {
        BUNDLE.get_or_init(|| Bundle::dataset_a(&cfg()));
        BUNDLE.get_mut().unwrap()
    }
}

fn bundle_b() -> &'static mut Bundle {
    static mut BUNDLE: OnceLock<Bundle> = OnceLock::new();
    #[allow(static_mut_refs)]
    unsafe {
        BUNDLE.get_or_init(|| Bundle::dataset_b(&cfg()));
        BUNDLE.get_mut().unwrap()
    }
}

fn bench_dataset_tables(c: &mut Criterion) {
    let cfg = cfg();
    c.bench_function("table1_dataset_a_stats", |b| {
        b.iter(|| std::hint::black_box(exp_stats::table1(&cfg)))
    });
    c.bench_function("table2_dataset_b_stats", |b| {
        b.iter(|| std::hint::black_box(exp_stats::table2(&cfg)))
    });
    c.bench_function("fig1_2_stochasticity", |b| {
        b.iter(|| std::hint::black_box(exp_stats::fig1_2(&cfg)))
    });
    c.bench_function("fig4_16_density_distance", |b| {
        b.iter(|| std::hint::black_box(exp_stats::fig4_16(&cfg)))
    });
}

fn bench_fidelity_tables(c: &mut Criterion) {
    let cfg = cfg();
    c.bench_function("table3_rsrp_per_scenario_a", |b| {
        b.iter(|| std::hint::black_box(exp_fidelity::table3(&cfg, bundle_a())))
    });
    c.bench_function("table4_all_kpis_a", |b| {
        b.iter(|| std::hint::black_box(exp_fidelity::table4(&cfg, bundle_a())))
    });
    c.bench_function("table5_rsrp_per_scenario_b", |b| {
        b.iter(|| std::hint::black_box(exp_fidelity::table5(&cfg, bundle_b())))
    });
    c.bench_function("table6_averages_b", |b| {
        b.iter(|| std::hint::black_box(exp_fidelity::table6(&cfg, bundle_b())))
    });
    c.bench_function("table7_fig9_long_trajectory", |b| {
        b.iter(|| std::hint::black_box(exp_fidelity::table7(&cfg, bundle_b())))
    });
    c.bench_function("table8_fig10_stitching", |b| {
        b.iter(|| std::hint::black_box(exp_fidelity::table8(&cfg, bundle_b())))
    });
    c.bench_function("fig18_sample_series", |b| {
        b.iter(|| std::hint::black_box(exp_fidelity::fig18(&cfg, bundle_a())))
    });
}

fn bench_efficiency_and_usecases(c: &mut Criterion) {
    let cfg = cfg();
    c.bench_function("fig11_uncertainty_selection", |b| {
        b.iter(|| std::hint::black_box(exp_efficiency::fig11(&cfg, bundle_b())))
    });
    c.bench_function("table9_fig12_qoe", |b| {
        b.iter(|| std::hint::black_box(exp_usecases::table9(&cfg, bundle_a())))
    });
    c.bench_function("table10_fig13_handover", |b| {
        b.iter(|| std::hint::black_box(exp_usecases::table10(&cfg, bundle_b())))
    });
    c.bench_function("table12_ablation", |b| {
        b.iter(|| std::hint::black_box(exp_ablation::table12(&cfg, bundle_b())))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3));
    targets = bench_dataset_tables, bench_fidelity_tables, bench_efficiency_and_usecases
}
criterion_main!(benches);
