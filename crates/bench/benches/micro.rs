//! Micro-benchmarks of the hot primitives underlying every experiment:
//! matrix products, LSTM steps, metric kernels, and simulator queries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gendt::{ArMode, CarryState, GenDt, GenDtCfg, Generator};
use gendt_data::windows::Window;
use gendt_geo::landuse::ENV_ATTRS;
use gendt_geo::trajectory::{generate, Scenario, TrajectoryCfg};
use gendt_geo::world::{World, WorldCfg};
use gendt_geo::XY;
use gendt_nn::{Graph, Lstm, LstmNodeState, Matrix, ParamStore, Rng};
use gendt_radio::cells::Deployment;
use gendt_radio::kpi::{KpiCfg, KpiEngine};
use gendt_radio::propagation::{PropagationCfg, ShadowField};

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for n in [32usize, 64, 128] {
        let mut rng = Rng::seed_from(1);
        let a = Matrix::from_vec(
            n,
            n,
            (0..n * n).map(|_| rng.uniform(-1.0, 1.0) as f32).collect(),
        );
        let b = Matrix::from_vec(
            n,
            n,
            (0..n * n).map(|_| rng.uniform(-1.0, 1.0) as f32).collect(),
        );
        group.bench_with_input(BenchmarkId::new("blocked", n), &n, |bch, _| {
            bch.iter(|| std::hint::black_box(a.matmul(&b)));
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |bch, _| {
            bch.iter(|| std::hint::black_box(a.matmul_naive(&b)));
        });
        group.bench_with_input(BenchmarkId::new("tn_blocked", n), &n, |bch, _| {
            bch.iter(|| std::hint::black_box(a.matmul_tn(&b)));
        });
        group.bench_with_input(BenchmarkId::new("nt_blocked", n), &n, |bch, _| {
            bch.iter(|| std::hint::black_box(a.matmul_nt(&b)));
        });
    }
    group.finish();
}

fn synth_window(rng: &mut Rng, l: usize, n_cells: usize, n_ch: usize, m: usize) -> Window {
    Window {
        targets: (0..n_ch)
            .map(|_| (0..l).map(|_| rng.uniform(-1.0, 1.0) as f32).collect())
            .collect(),
        cells: (0..n_cells)
            .map(|_| {
                (0..l)
                    .map(|_| {
                        [
                            rng.uniform01() as f32,
                            rng.uniform01() as f32,
                            rng.uniform01() as f32,
                            rng.uniform01() as f32,
                            0.0,
                        ]
                    })
                    .collect()
            })
            .collect(),
        cell_ids: (0..n_cells as u32).collect(),
        env: (0..l).map(|_| vec![0.2; ENV_ATTRS]).collect(),
        ar_seed: vec![vec![0.0; m]; n_ch],
        start: 0,
    }
}

fn bench_generator_forward(c: &mut Criterion) {
    let mut cfg = GenDtCfg::fast(4, 3);
    cfg.window.len = 20;
    cfg.window.max_cells = 4;
    let mut rng = Rng::seed_from(5);
    let generator = Generator::new(cfg.clone(), &mut rng);
    let wins: Vec<Window> = (0..4)
        .map(|_| synth_window(&mut rng, cfg.window.len, 4, cfg.n_ch, cfg.window.ar_context))
        .collect();
    let batch: Vec<&Window> = wins.iter().collect();
    let carry = CarryState::zeros(&cfg, batch.len());
    let mut group = c.benchmark_group("generator_forward");
    group.bench_function("cell_packed", |b| {
        b.iter(|| {
            let mut fr = Rng::seed_from(9);
            let mut g = Graph::new();
            std::hint::black_box(generator.forward(
                &mut g,
                &batch,
                &carry,
                ArMode::TeacherForced,
                true,
                &mut fr,
            ))
        })
    });
    group.bench_function("per_cell", |b| {
        b.iter(|| {
            let mut fr = Rng::seed_from(9);
            let mut g = Graph::new();
            std::hint::black_box(generator.forward_percell(
                &mut g,
                &batch,
                &carry,
                ArMode::TeacherForced,
                true,
                &mut fr,
            ))
        })
    });
    group.finish();
}

fn bench_train_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("train_step");
    group.sample_size(10);
    for shards in [1usize, 4] {
        let mut cfg = GenDtCfg::fast(4, 7);
        cfg.steps = 1;
        cfg.train_shards = shards;
        let mut rng = Rng::seed_from(3);
        let pool: Vec<Window> = (0..8)
            .map(|_| synth_window(&mut rng, cfg.window.len, 4, cfg.n_ch, cfg.window.ar_context))
            .collect();
        let mut model = GenDt::new(cfg);
        group.bench_with_input(BenchmarkId::from_parameter(shards), &shards, |b, _| {
            b.iter(|| std::hint::black_box(model.train_step(&pool)))
        });
    }
    group.finish();
}

fn bench_lstm_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("lstm_step");
    for hidden in [32usize, 100] {
        let mut rng = Rng::seed_from(2);
        let mut store = ParamStore::new();
        let lstm = Lstm::new(&mut store, "l", 7, hidden, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(hidden), &hidden, |bch, &h| {
            bch.iter(|| {
                let mut g = Graph::new();
                let x = g.input(Matrix::full(8, 7, 0.3));
                let st = LstmNodeState {
                    h: g.input(Matrix::zeros(8, h)),
                    c: g.input(Matrix::zeros(8, h)),
                };
                std::hint::black_box(lstm.step(&mut g, &store, x, st));
            });
        });
    }
    group.finish();
}

fn bench_metrics(c: &mut Criterion) {
    let xs: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.1).sin() * 10.0).collect();
    let ys: Vec<f64> = (0..1000)
        .map(|i| ((i as f64 - 3.0) * 0.1).sin() * 10.0)
        .collect();
    c.bench_function("dtw_1000", |b| {
        b.iter(|| std::hint::black_box(gendt_metrics::dtw(&xs, &ys)))
    });
    c.bench_function("hwd_1000", |b| {
        b.iter(|| std::hint::black_box(gendt_metrics::hwd(&xs, &ys)))
    });
    c.bench_function("mae_1000", |b| {
        b.iter(|| std::hint::black_box(gendt_metrics::mae(&xs, &ys)))
    });
}

fn bench_simulator(c: &mut Criterion) {
    let world = World::generate(WorldCfg::city(7));
    let deployment = Deployment::from_world(&world);
    c.bench_function("cells_within_2km", |b| {
        b.iter(|| std::hint::black_box(deployment.cells_within(XY::new(100.0, -50.0), 2000.0)))
    });
    c.bench_function("env_context_500m", |b| {
        b.iter(|| std::hint::black_box(world.env_context(XY::new(100.0, -50.0), 500.0)))
    });
    let prop = PropagationCfg::default();
    let shadow = ShadowField::new(7, 3, &prop);
    c.bench_function("shadow_field_eval", |b| {
        let mut x = 0.0;
        b.iter(|| {
            x += 1.0;
            std::hint::black_box(shadow.at(XY::new(x, -x)))
        })
    });
    let engine = KpiEngine::new(&world, &deployment, prop, KpiCfg::default());
    let traj = generate(
        &world,
        &TrajectoryCfg::new(Scenario::Bus, 60.0, XY::new(0.0, 0.0), 3),
    );
    c.bench_function("kpi_measure_60s_bus", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            std::hint::black_box(engine.measure(&traj, seed))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_matmul, bench_lstm_step, bench_generator_forward, bench_train_step, bench_metrics, bench_simulator
}
criterion_main!(benches);
