//! Before/after measurements for the parallel compute-kernel layer.
//!
//! Times the blocked matrix kernels against the retained naive reference,
//! the cell-packed generator forward against the per-cell reference, and
//! the sharded training step across shard counts, then writes the results
//! to `BENCH_kernels.json` in the current directory.
//!
//! Run from the repo root with `cargo run --release --bin bench_kernels`.

#![forbid(unsafe_code)]

use gendt::{generate_series_batch, ArMode, CarryState, GenBatchItem, GenDt, GenDtCfg, Generator};
use gendt_data::builders::{dataset_a, BuildCfg};
use gendt_data::context::{extract, ContextCfg};
use gendt_data::windows::Window;
use gendt_data::Kpi;
use gendt_geo::landuse::ENV_ATTRS;
use gendt_nn::{Graph, Matrix, Rng};
use std::fmt::Write as _;
use std::time::Instant;

// Counting allocator so the `plan` section can report bytes-allocated
// per step alongside wall time (two thread-local increments per malloc;
// negligible against the timed kernels).
#[global_allocator]
static ALLOC: alloc_counter::CountingAlloc = alloc_counter::CountingAlloc;

fn rand_mat(rng: &mut Rng, r: usize, c: usize) -> Matrix {
    Matrix::from_vec(
        r,
        c,
        (0..r * c).map(|_| rng.uniform(-2.0, 2.0) as f32).collect(),
    )
}

/// Best-of-5 mean seconds per call.
fn time<T>(f: impl Fn() -> T, reps: usize) -> f64 {
    let mut best = f64::MAX;
    for _ in 0..5 {
        let t = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(f());
        }
        best = best.min(t.elapsed().as_secs_f64() / reps as f64);
    }
    best
}

/// Synthetic window with dense cell occupancy — the worst case for the
/// per-cell loop and the representative case for packing.
fn synth_window(rng: &mut Rng, l: usize, n_cells: usize, n_ch: usize, m: usize) -> Window {
    Window {
        targets: (0..n_ch)
            .map(|_| (0..l).map(|_| rng.uniform(-1.0, 1.0) as f32).collect())
            .collect(),
        cells: (0..n_cells)
            .map(|_| {
                (0..l)
                    .map(|_| {
                        [
                            rng.uniform01() as f32,
                            rng.uniform01() as f32,
                            rng.uniform01() as f32,
                            rng.uniform01() as f32,
                            0.0,
                        ]
                    })
                    .collect()
            })
            .collect(),
        cell_ids: (0..n_cells as u32).collect(),
        env: (0..l).map(|_| vec![0.2; ENV_ATTRS]).collect(),
        ar_seed: vec![vec![0.0; m]; n_ch],
        start: 0,
    }
}

fn main() {
    let threads: usize = std::env::var("GENDT_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        });
    gendt_nn::set_num_threads(threads);
    let mut rng = Rng::seed_from(1);
    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"bench_schema\": {},", gendt_trace::BENCH_SCHEMA).unwrap();
    writeln!(json, "  \"git_rev\": \"{}\",", gendt_trace::git_rev()).unwrap();
    writeln!(json, "  \"config\": {{\"threads\": {threads}}},").unwrap();
    writeln!(json, "  \"threads\": {threads},").unwrap();

    // ---- matmul kernels vs naive reference ----------------------------
    gendt_trace::out!("== matmul kernels (blocked vs naive), {threads} thread(s) ==");
    writeln!(json, "  \"matmul\": [").unwrap();
    let mut rows: Vec<String> = Vec::new();
    for n in [64usize, 128, 256] {
        let a = rand_mat(&mut rng, n, n);
        let b = rand_mat(&mut rng, n, n);
        let reps = ((1usize << 22) / (n * n)).max(8);
        for (op, new_t, old_t) in [
            (
                "nn",
                time(|| a.matmul(&b), reps),
                time(|| a.matmul_naive(&b), reps),
            ),
            (
                "tn",
                time(|| a.matmul_tn(&b), reps),
                time(|| a.matmul_tn_naive(&b), reps),
            ),
            (
                "nt",
                time(|| a.matmul_nt(&b), reps),
                time(|| a.matmul_nt_naive(&b), reps),
            ),
        ] {
            let speedup = old_t / new_t;
            gendt_trace::out!(
                "{op} n={n:3}: naive {:8.1}us  blocked {:7.1}us  speedup {speedup:.2}x",
                old_t * 1e6,
                new_t * 1e6
            );
            rows.push(format!(
                "    {{\"op\": \"{op}\", \"n\": {n}, \"naive_us\": {:.2}, \"blocked_us\": {:.2}, \"speedup\": {speedup:.2}}}",
                old_t * 1e6,
                new_t * 1e6
            ));
        }
    }
    // LSTM gate shape: (B x 108) . (108 x 400), hidden 100 as in the paper.
    for bsz in [8usize, 64] {
        let x = rand_mat(&mut rng, bsz, 108);
        let w = rand_mat(&mut rng, 108, 400);
        let new_t = time(|| x.matmul(&w), 2000);
        let old_t = time(|| x.matmul_naive(&w), 2000);
        let speedup = old_t / new_t;
        gendt_trace::out!(
            "nn lstm-gate B={bsz:2}: naive {:8.1}us  blocked {:7.1}us  speedup {speedup:.2}x",
            old_t * 1e6,
            new_t * 1e6
        );
        rows.push(format!(
            "    {{\"op\": \"nn_lstm_gate\", \"b\": {bsz}, \"naive_us\": {:.2}, \"blocked_us\": {:.2}, \"speedup\": {speedup:.2}}}",
            old_t * 1e6,
            new_t * 1e6
        ));
    }
    writeln!(json, "{}\n  ],", rows.join(",\n")).unwrap();

    // ---- generator forward: cell-packed vs per-cell -------------------
    gendt_trace::out!("== generator forward, B=8 max_cells=8 L=50 hidden=100 ==");
    let mut cfg = GenDtCfg::paper(4, 3);
    cfg.window.len = 50;
    cfg.window.max_cells = 8;
    let mut grng = Rng::seed_from(5);
    let generator = Generator::new(cfg.clone(), &mut grng);
    let wins: Vec<Window> = (0..8)
        .map(|_| synth_window(&mut grng, 50, 8, cfg.n_ch, cfg.window.ar_context))
        .collect();
    let batch: Vec<&Window> = wins.iter().collect();
    let carry = CarryState::zeros(&cfg, batch.len());
    let packed_t = time(
        || {
            let mut fr = Rng::seed_from(9);
            let mut g = Graph::new();
            generator.forward(&mut g, &batch, &carry, ArMode::TeacherForced, true, &mut fr)
        },
        3,
    );
    let percell_t = time(
        || {
            let mut fr = Rng::seed_from(9);
            let mut g = Graph::new();
            generator.forward_percell(&mut g, &batch, &carry, ArMode::TeacherForced, true, &mut fr)
        },
        3,
    );
    // Seed-equivalent baseline: per-cell loop with naive matmul and libm
    // activations (what the code did before this compute layer existed).
    gendt_nn::set_reference_kernels(true);
    let seed_t = time(
        || {
            let mut fr = Rng::seed_from(9);
            let mut g = Graph::new();
            generator.forward_percell(&mut g, &batch, &carry, ArMode::TeacherForced, true, &mut fr)
        },
        3,
    );
    gendt_nn::set_reference_kernels(false);
    let fwd_speedup = seed_t / packed_t;
    gendt_trace::out!(
        "seed (per-cell, reference kernels) {:7.1}ms  per-cell {:7.1}ms  packed {:7.1}ms  speedup vs seed {fwd_speedup:.2}x",
        seed_t * 1e3,
        percell_t * 1e3,
        packed_t * 1e3
    );
    writeln!(
        json,
        "  \"generator_forward\": {{\"b\": 8, \"max_cells\": 8, \"l\": 50, \"hidden\": {}, \"seed_percell_reference_ms\": {:.2}, \"percell_ms\": {:.2}, \"packed_ms\": {:.2}, \"speedup_vs_seed\": {fwd_speedup:.2}}},",
        cfg.hidden,
        seed_t * 1e3,
        percell_t * 1e3,
        packed_t * 1e3
    )
    .unwrap();

    // ---- sharded training step ----------------------------------------
    gendt_trace::out!("== sharded train_step, fast cfg, B=8 ==");
    writeln!(json, "  \"train_step\": [").unwrap();
    let mut rows: Vec<String> = Vec::new();
    for shards in [1usize, 2, 4] {
        let mut tcfg = GenDtCfg::fast(4, 7);
        tcfg.steps = 1;
        tcfg.train_shards = shards;
        let pool: Vec<Window> = (0..16)
            .map(|_| {
                synth_window(
                    &mut rng,
                    tcfg.window.len,
                    4,
                    tcfg.n_ch,
                    tcfg.window.ar_context,
                )
            })
            .collect();
        let mut model = GenDt::new(tcfg);
        model.train_step(&pool); // warm up Adam state
        let t = Instant::now();
        let reps = 3;
        for _ in 0..reps {
            std::hint::black_box(model.train_step(&pool));
        }
        let per_step = t.elapsed().as_secs_f64() / reps as f64;
        gendt_trace::out!("shards={shards}: {:7.1}ms/step", per_step * 1e3);
        rows.push(format!(
            "    {{\"shards\": {shards}, \"ms_per_step\": {:.2}}}",
            per_step * 1e3
        ));
    }
    writeln!(json, "{}\n  ],", rows.join(",\n")).unwrap();

    // ---- compiled plans (GENDT_PLAN) vs interpreted tape --------------
    // Paper shapes (B=8, hidden=100, L=50), one thread and one shard so
    // the thread-local allocation counters see every byte of the step.
    gendt_trace::out!("== compiled plan vs interpreted tape, B=8 hidden=100 L=50, 1 thread ==");
    gendt_nn::set_num_threads(1);
    let mut pcfg = GenDtCfg::paper(4, 3);
    pcfg.steps = 1;
    pcfg.train_shards = 1;
    let pool: Vec<Window> = (0..16)
        .map(|_| {
            synth_window(
                &mut rng,
                pcfg.window.len,
                pcfg.window.max_cells,
                pcfg.n_ch,
                pcfg.window.ar_context,
            )
        })
        .collect();
    // Both models start from the same cfg seed, so tape and plan draw
    // identical batch sequences and the comparison is apples-to-apples.
    let measure_train = |plan: bool| -> (f64, f64, f64) {
        let mut model = GenDt::new(pcfg.clone());
        model.set_plan_mode(plan);
        // Warm-up covers every plan key the step cadence cycles through
        // (teacher-forced vs free-running, discriminator cadence).
        for _ in 0..4 {
            model.train_step(&pool);
        }
        let reps = 3;
        let mut secs = f64::MAX;
        let before = alloc_counter::snapshot();
        for _ in 0..4 {
            let t = Instant::now();
            for _ in 0..reps {
                std::hint::black_box(model.train_step(&pool));
            }
            secs = secs.min(t.elapsed().as_secs_f64() / reps as f64);
        }
        let traffic = alloc_counter::snapshot().since(before);
        (
            secs,
            traffic.allocs as f64 / (4 * reps) as f64,
            traffic.bytes as f64 / (4 * reps) as f64,
        )
    };
    let (tt_s, tt_allocs, tt_bytes) = measure_train(false);
    let (pt_s, pt_allocs, pt_bytes) = measure_train(true);
    let train_speedup = tt_s / pt_s;
    gendt_trace::out!(
        "train_step:     tape {:7.1}ms {:9.0} allocs {:11.0} B   plan {:7.1}ms {:9.0} allocs {:11.0} B   speedup {train_speedup:.2}x",
        tt_s * 1e3, tt_allocs, tt_bytes, pt_s * 1e3, pt_allocs, pt_bytes
    );

    // Batched generation: 8 concurrent requests over a real quick-build
    // trajectory (4 windows of L=50 each, batch stays full throughout).
    let ds = dataset_a(&BuildCfg::quick(21));
    let run = &ds.runs[0];
    let ctx = extract(
        &ds.world,
        &ds.deployment,
        &run.traj,
        &ContextCfg {
            max_cells: pcfg.window.max_cells,
            ..ContextCfg::default()
        },
    );
    let items: Vec<GenBatchItem> = (0..8)
        .map(|i| GenBatchItem {
            ctx: &ctx,
            seed: 100 + i,
        })
        .collect();
    let measure_gen = |plan: bool| -> (f64, f64, f64) {
        let mut model = GenDt::new(pcfg.clone());
        model.set_plan_mode(plan);
        std::hint::black_box(generate_series_batch(&model, &Kpi::DATASET_A, &items));
        let reps = 3;
        let mut secs = f64::MAX;
        let before = alloc_counter::snapshot();
        for _ in 0..4 {
            let t = Instant::now();
            for _ in 0..reps {
                std::hint::black_box(generate_series_batch(&model, &Kpi::DATASET_A, &items));
            }
            secs = secs.min(t.elapsed().as_secs_f64() / reps as f64);
        }
        let traffic = alloc_counter::snapshot().since(before);
        (
            secs,
            traffic.allocs as f64 / (4 * reps) as f64,
            traffic.bytes as f64 / (4 * reps) as f64,
        )
    };
    let (tg_s, tg_allocs, tg_bytes) = measure_gen(false);
    let (pg_s, pg_allocs, pg_bytes) = measure_gen(true);
    let gen_speedup = tg_s / pg_s;
    gendt_trace::out!(
        "batch_generate: tape {:7.1}ms {:9.0} allocs {:11.0} B   plan {:7.1}ms {:9.0} allocs {:11.0} B   speedup {gen_speedup:.2}x",
        tg_s * 1e3, tg_allocs, tg_bytes, pg_s * 1e3, pg_allocs, pg_bytes
    );
    writeln!(
        json,
        "  \"plan\": {{\n    \"threads\": 1,\n    \"train_step\": {{\"b\": {}, \"hidden\": {}, \"l\": {}, \"tape_ms\": {:.2}, \"plan_ms\": {:.2}, \"speedup\": {train_speedup:.2}, \"tape_allocs_per_step\": {tt_allocs:.0}, \"plan_allocs_per_step\": {pt_allocs:.0}, \"tape_bytes_per_step\": {tt_bytes:.0}, \"plan_bytes_per_step\": {pt_bytes:.0}}},\n    \"batch_generate\": {{\"items\": 8, \"hidden\": {}, \"l\": {}, \"tape_ms\": {:.2}, \"plan_ms\": {:.2}, \"speedup\": {gen_speedup:.2}, \"tape_allocs_per_call\": {tg_allocs:.0}, \"plan_allocs_per_call\": {pg_allocs:.0}, \"tape_bytes_per_call\": {tg_bytes:.0}, \"plan_bytes_per_call\": {pg_bytes:.0}}}\n  }}",
        pcfg.batch_size,
        pcfg.hidden,
        pcfg.window.len,
        tt_s * 1e3,
        pt_s * 1e3,
        pcfg.hidden,
        pcfg.window.len,
        tg_s * 1e3,
        pg_s * 1e3
    )
    .unwrap();
    writeln!(json, "}}").unwrap();

    std::fs::write("BENCH_kernels.json", &json).expect("write BENCH_kernels.json");
    gendt_trace::out!("wrote BENCH_kernels.json");
}
