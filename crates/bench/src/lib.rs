//! # gendt-bench — Criterion benchmark targets
//!
//! This crate exists only to host the benchmark binaries:
//!
//! * `benches/micro.rs` — hot-primitive micro-benchmarks (matmul, LSTM
//!   step, DTW/HWD kernels, simulator queries).
//! * `benches/experiments.rs` — one target per paper table/figure, each
//!   running the corresponding experiment pipeline at miniature scale.
//!
//! Run with `cargo bench --workspace`; publication-scale numbers come
//! from `gendt-eval --exp all` (see EXPERIMENTS.md).

#![forbid(unsafe_code)]
