//! End-to-end exercises of the checked facade under `interleave`
//! exploration: correct bodies stay green across many schedules, seeded
//! bugs (lost update, ABBA, lost notify, if-instead-of-while waits) are
//! detected, and failures replay from their printed token.

use gendt_sync::atomic::{AtomicU64, Ordering};
use gendt_sync::time::Instant;
use gendt_sync::{mpsc, thread, Condvar, Mutex};
use interleave::{Config, FailureKind};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn mutex_counter_is_exact_across_schedules() {
    let cfg = Config::random(150, 11);
    let report = interleave::explore(&cfg, || {
        let counter = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let c = counter.clone();
                thread::spawn(move || {
                    let mut g = c.lock();
                    *g += 1;
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*counter.lock(), 3);
    });
    assert!(
        report.ok(),
        "unexpected failure:\n{}",
        report.failure.unwrap()
    );
    assert_eq!(report.schedules, 150);
}

#[test]
fn atomic_rmw_counter_is_exact() {
    let cfg = Config::random(150, 12);
    let report = interleave::explore(&cfg, || {
        let counter = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let c = counter.clone();
                thread::spawn(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 3);
    });
    assert!(
        report.ok(),
        "unexpected failure:\n{}",
        report.failure.unwrap()
    );
}

#[test]
fn lost_update_load_store_detected_and_replays() {
    let cfg = Config::random(400, 13);
    let body = || {
        let counter = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let c = counter.clone();
                thread::spawn(move || {
                    // Seeded bug: non-atomic read-modify-write.
                    let v = c.load(Ordering::SeqCst);
                    c.store(v + 1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    };
    let report = interleave::explore(&cfg, body);
    let failure = report.failure.expect("lost update must be found");
    assert_eq!(failure.kind, FailureKind::LostUpdate, "{failure}");

    // The printed token reproduces the same finding in one schedule.
    let replayed = interleave::replay(&cfg, &failure.replay_token(), body);
    let refound = replayed.failure.expect("replay must reproduce the failure");
    assert_eq!(refound.kind, FailureKind::LostUpdate);
    assert_eq!(replayed.schedules, 1);
}

#[test]
fn lock_order_inversion_detected() {
    let cfg = Config::random(300, 14);
    let report = interleave::explore(&cfg, || {
        let a = Arc::new(Mutex::new(0u32));
        let b = Arc::new(Mutex::new(0u32));
        let (a1, b1) = (a.clone(), b.clone());
        let h1 = thread::spawn(move || {
            let _ga = a1.lock();
            let _gb = b1.lock();
        });
        let (a2, b2) = (a.clone(), b.clone());
        let h2 = thread::spawn(move || {
            let _gb = b2.lock();
            let _ga = a2.lock();
        });
        let _ = h1.join();
        let _ = h2.join();
    });
    let failure = report.failure.expect("ABBA must be found");
    assert!(
        matches!(
            failure.kind,
            FailureKind::LockOrderCycle | FailureKind::Deadlock
        ),
        "{failure}"
    );
}

#[test]
fn lost_notify_detected_as_deadlock() {
    let cfg = Config::random(300, 15);
    let report = interleave::explore(&cfg, || {
        let state = Arc::new((Mutex::new(false), Condvar::new()));
        let s1 = state.clone();
        let waiter = thread::spawn(move || {
            let (m, cv) = &*s1;
            let mut g = m.lock();
            while !*g {
                g = cv.wait(g);
            }
        });
        let s2 = state.clone();
        let setter = thread::spawn(move || {
            let (m, _cv) = &*s2;
            // Seeded bug: flag set without notify_one — if the waiter is
            // already parked, it sleeps forever.
            *m.lock() = true;
        });
        let _ = setter.join();
        let _ = waiter.join();
    });
    let failure = report.failure.expect("lost wakeup must be found");
    assert_eq!(failure.kind, FailureKind::Deadlock, "{failure}");
    assert!(failure.message.contains("lost wakeup"), "{failure}");
}

#[test]
fn if_instead_of_while_wait_broken_by_spurious_wakeup() {
    let cfg = Config::random(300, 16);
    let report = interleave::explore(&cfg, || {
        let state = Arc::new((Mutex::new(false), Condvar::new()));
        let s1 = state.clone();
        let waiter = thread::spawn(move || {
            let (m, cv) = &*s1;
            let mut g = m.lock();
            // Seeded bug: `if` instead of `while` — a spurious wakeup
            // falls through with the predicate still false.
            if !*g {
                g = cv.wait(g);
            }
            assert!(*g, "woke without the predicate set");
        });
        let s2 = state.clone();
        let setter = thread::spawn(move || {
            let (m, cv) = &*s2;
            *m.lock() = true;
            cv.notify_one();
        });
        let _ = setter.join();
        let _ = waiter.join();
    });
    let failure = report
        .failure
        .expect("spurious wakeup must break the `if` wait");
    assert_eq!(failure.kind, FailureKind::Panic, "{failure}");
    assert!(
        failure.message.contains("woke without the predicate set"),
        "{failure}"
    );
}

#[test]
fn wait_timeout_fires_on_virtual_clock() {
    // Spurious wakeups off: with them on, the scheduler may (correctly)
    // wake the wait early without a timeout, which is its own test above.
    let mut cfg = Config::random(20, 17);
    cfg.spurious = 0;
    let report = interleave::explore(&cfg, || {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let start = Instant::now();
        let g = m.lock();
        let (_g, res) = cv.wait_timeout(g, Duration::from_millis(5));
        // Nobody notifies: the only way forward is the timeout firing on
        // the virtual clock.
        assert!(res.timed_out());
        assert!(start.elapsed() >= Duration::from_millis(5));
    });
    assert!(
        report.ok(),
        "unexpected failure:\n{}",
        report.failure.unwrap()
    );
}

#[test]
fn mpsc_delivers_exactly_once_then_disconnects() {
    let cfg = Config::random(150, 18);
    let report = interleave::explore(&cfg, || {
        let (tx, rx) = mpsc::channel::<u32>();
        let producer = thread::spawn(move || {
            for i in 0..3 {
                tx.send(i).expect("receiver alive");
            }
        });
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        producer.join().unwrap();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2]);
    });
    assert!(
        report.ok(),
        "unexpected failure:\n{}",
        report.failure.unwrap()
    );
}

#[test]
fn dfs_mode_exhausts_small_model() {
    let cfg = Config::dfs(5_000, 2);
    let report = interleave::explore(&cfg, || {
        let counter = Arc::new(Mutex::new(0u64));
        let c = counter.clone();
        let h = thread::spawn(move || {
            *c.lock() += 1;
        });
        *counter.lock() += 1;
        h.join().unwrap();
        assert_eq!(*counter.lock(), 2);
    });
    assert!(
        report.ok(),
        "unexpected failure:\n{}",
        report.failure.unwrap()
    );
    // More than one schedule explored, and exhaustion reached below budget.
    assert!(
        report.schedules > 1,
        "DFS explored {} schedules",
        report.schedules
    );
    assert!(
        report.schedules < 5_000,
        "DFS should exhaust, ran {}",
        report.schedules
    );
}

#[test]
fn thread_leak_reported() {
    let cfg = Config::random(5, 19);
    let report = interleave::explore(&cfg, || {
        let m = Arc::new(Mutex::new(0u8));
        let m2 = m.clone();
        // Seeded bug: spawned thread never joined.
        let _h = thread::spawn(move || {
            *m2.lock() = 1;
        });
    });
    let failure = report.failure.expect("leak must be reported");
    assert_eq!(failure.kind, FailureKind::ThreadLeak, "{failure}");
}

#[test]
fn facade_is_plain_std_outside_exploration() {
    // Same types, no exploration: behaves like std (smoke).
    let m = Arc::new(Mutex::new(0u64));
    let cv = Arc::new(Condvar::new());
    let m2 = m.clone();
    let cv2 = cv.clone();
    let h = thread::spawn(move || {
        let mut g = m2.lock();
        *g = 7;
        cv2.notify_one();
    });
    {
        let mut g = m.lock();
        while *g == 0 {
            g = cv.wait(g);
        }
        assert_eq!(*g, 7);
    }
    h.join().unwrap();
    let (tx, rx) = mpsc::channel();
    tx.send(3u8).unwrap();
    assert_eq!(rx.recv(), Ok(3));
    drop(tx);
    assert_eq!(rx.recv(), Err(mpsc::RecvError));
}

#[test]
fn injected_spurious_wakeup_outside_exploration() {
    // The deterministic test hook works in plain mode too: a wait returns
    // immediately without a notifier.
    gendt_sync::testing::inject_spurious_wakeups(1);
    let m = Mutex::new(());
    let cv = Condvar::new();
    let g = m.lock();
    let (_g, res) = cv.wait_timeout(g, Duration::from_secs(60));
    assert!(!res.timed_out(), "spurious wakeup is not a timeout");
    gendt_sync::testing::inject_spurious_wakeups(0);
}
