//! Production personality: inline newtypes over `std::sync` primitives.
//!
//! Guards are plain wrappers with no custom `Drop`, so the compiled code is
//! the same as using std directly. The only semantic addition is poison
//! tolerance: `lock()`/`read()`/`write()`/`wait()` recover the inner value
//! from a poisoned primitive instead of panicking (the workspace treats
//! poisoning as "some other thread crashed", which must never cascade into
//! wedging metrics or caches).

use crate::testing::consume_spurious;
use crate::WaitTimeoutResult;
use std::time::Duration;

/// Drop-in `std::sync::Mutex` with poison-tolerant locking.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex (usable in statics).
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// Drop-in `std::sync::Condvar` with injectable spurious wakeups.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable (usable in statics).
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified (or an injected spurious wakeup fires).
    #[inline]
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        if consume_spurious() {
            return guard;
        }
        self.inner.wait(guard).unwrap_or_else(|p| p.into_inner())
    }

    /// Blocks until notified or `dur` elapses (injected spurious wakeups
    /// return early with `timed_out() == false`, like the real thing).
    #[inline]
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: Duration,
    ) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
        if consume_spurious() {
            return (guard, WaitTimeoutResult::new(false));
        }
        match self.inner.wait_timeout(guard, dur) {
            Ok((g, r)) => (g, WaitTimeoutResult::new(r.timed_out())),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, WaitTimeoutResult::new(r.timed_out()))
            }
        }
    }

    /// Wakes one waiter.
    #[inline]
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    #[inline]
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Drop-in `std::sync::RwLock` with poison-tolerant locking.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new rwlock (usable in statics).
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock, recovering from poisoning.
    #[inline]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|p| p.into_inner())
    }

    /// Acquires the exclusive write lock, recovering from poisoning.
    #[inline]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|p| p.into_inner())
    }
}
