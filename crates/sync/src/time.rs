//! Facade `Instant`: real monotonic time in production, the model
//! checker's virtual clock under active exploration (so `wait_timeout`
//! deadlines are deterministic schedule events instead of wall time).

use std::ops::Add;
use std::time::Duration;

/// Facade `std::time::Instant`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Instant {
    /// Real monotonic timestamp.
    Real(std::time::Instant),
    /// Virtual nanoseconds on the model clock.
    #[cfg(feature = "check")]
    Virtual(u64),
}

impl Instant {
    /// Current time: virtual under active exploration, real otherwise.
    pub fn now() -> Self {
        #[cfg(feature = "check")]
        if let Some(ns) = interleave::now_ns() {
            return Instant::Virtual(ns);
        }
        Instant::Real(std::time::Instant::now())
    }

    /// Duration since `earlier`, zero if `earlier` is later.
    pub fn saturating_duration_since(&self, earlier: Instant) -> Duration {
        match (*self, earlier) {
            (Instant::Real(a), Instant::Real(b)) => a.saturating_duration_since(b),
            #[cfg(feature = "check")]
            (Instant::Virtual(a), Instant::Virtual(b)) => Duration::from_nanos(a.saturating_sub(b)),
            #[cfg(feature = "check")]
            _ => panic!("gendt-sync: mixed real/virtual Instant comparison"),
        }
    }

    /// Duration since this instant was captured.
    pub fn elapsed(&self) -> Duration {
        Instant::now().saturating_duration_since(*self)
    }
}

impl Add<Duration> for Instant {
    type Output = Instant;

    fn add(self, rhs: Duration) -> Instant {
        match self {
            Instant::Real(t) => Instant::Real(t + rhs),
            #[cfg(feature = "check")]
            Instant::Virtual(ns) => Instant::Virtual(
                ns.saturating_add(u64::try_from(rhs.as_nanos()).unwrap_or(u64::MAX)),
            ),
        }
    }
}

impl PartialOrd for Instant {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Instant {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        match (*self, *other) {
            (Instant::Real(a), Instant::Real(b)) => a.cmp(&b),
            #[cfg(feature = "check")]
            (Instant::Virtual(a), Instant::Virtual(b)) => a.cmp(&b),
            #[cfg(feature = "check")]
            _ => panic!("gendt-sync: mixed real/virtual Instant comparison"),
        }
    }
}
