//! Facade thread spawning: `std::thread` in production; modeled participant
//! threads under active exploration (the spawned closure runs only when the
//! schedule engine grants it).

/// Facade `std::thread::JoinHandle`.
pub struct JoinHandle<T> {
    inner: Inner<T>,
}

enum Inner<T> {
    Std(std::thread::JoinHandle<T>),
    #[cfg(feature = "check")]
    Model {
        handle: interleave::ThreadHandle,
        slot: std::sync::Arc<std::sync::Mutex<Option<T>>>,
    },
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish, propagating its panic payload like
    /// `std::thread::JoinHandle::join`.
    pub fn join(self) -> std::thread::Result<T> {
        match self.inner {
            Inner::Std(h) => h.join(),
            #[cfg(feature = "check")]
            Inner::Model { handle, slot } => match handle.join() {
                Ok(()) => {
                    let v = slot.lock().unwrap_or_else(|p| p.into_inner()).take();
                    Ok(v.expect("modeled thread finished without a result"))
                }
                Err(payload) => Err(payload),
            },
        }
    }
}

/// Spawns a thread. On a participating thread the child joins the model
/// (scheduled cooperatively); otherwise this is `std::thread::spawn`.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    spawn_named("worker", f)
}

/// Like [`spawn`] but with a name that shows up in model-checker traces
/// (and as the OS thread name).
pub fn spawn_named<F, T>(name: &str, f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    #[cfg(feature = "check")]
    if interleave::participating() {
        let slot = std::sync::Arc::new(std::sync::Mutex::new(None));
        let slot2 = slot.clone();
        let handle = interleave::spawn(name.to_string(), move || {
            let v = f();
            *slot2.lock().unwrap_or_else(|p| p.into_inner()) = Some(v);
        })
        .expect("participating() checked above");
        return JoinHandle {
            inner: Inner::Model { handle, slot },
        };
    }
    let h = std::thread::Builder::new()
        .name(name.to_string())
        .spawn(f)
        .expect("failed to spawn thread");
    JoinHandle {
        inner: Inner::Std(h),
    }
}

/// Facade `std::thread::sleep`. Under exploration real sleeping would stall
/// the single granted thread, so it reduces to a schedule yield point
/// (model time only advances through `wait_timeout` deadlines).
pub fn sleep(dur: std::time::Duration) {
    #[cfg(feature = "check")]
    if interleave::participating() {
        interleave::yield_point();
        return;
    }
    std::thread::sleep(dur);
}
