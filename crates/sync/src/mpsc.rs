//! Facade mpsc channel: `std::sync::mpsc` in production; a modeled queue
//! under active exploration so `recv()` blocking is a scheduler decision.
//!
//! The personality is chosen per channel at creation time: a channel
//! created on a participating thread is modeled, anything else is plain
//! std. Checker harness bodies must therefore create their channels inside
//! the explored body (the serve scheduler does: one reply channel per
//! submitted job).

/// Error returned by [`Sender::send`] when the receiver is gone.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Receiver::recv`] when all senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The deadline passed with no value available.
    Timeout,
    /// All senders were dropped with the queue empty.
    Disconnected,
}

#[cfg(feature = "check")]
mod model {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::{Arc, Mutex};

    pub(super) struct Shared<T> {
        // Real primitives, but only ever touched by the thread currently
        // granted by the model scheduler — never contended.
        pub(super) queue: Mutex<VecDeque<T>>,
        pub(super) senders: AtomicUsize,
        pub(super) rx_alive: AtomicBool,
    }

    pub(super) fn shared_key<T>(s: &Arc<Shared<T>>) -> usize {
        Arc::as_ptr(s) as usize
    }

    pub(super) fn new_shared<T>() -> Arc<Shared<T>> {
        Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            senders: AtomicUsize::new(1),
            rx_alive: AtomicBool::new(true),
        })
    }

    pub(super) fn push<T>(s: &Arc<Shared<T>>, v: T) {
        s.queue
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push_back(v);
    }

    pub(super) fn pop<T>(s: &Arc<Shared<T>>) -> Option<T> {
        s.queue
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .pop_front()
    }

    pub(super) fn senders<T>(s: &Arc<Shared<T>>) -> usize {
        s.senders.load(Ordering::SeqCst)
    }
}

enum SenderInner<T> {
    Std(std::sync::mpsc::Sender<T>),
    #[cfg(feature = "check")]
    Model(std::sync::Arc<model::Shared<T>>),
}

/// Facade `std::sync::mpsc::Sender`.
pub struct Sender<T> {
    inner: SenderInner<T>,
}

impl<T> Sender<T> {
    /// Sends a value; fails if the receiver was dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        match &self.inner {
            SenderInner::Std(tx) => tx.send(value).map_err(|e| SendError(e.0)),
            #[cfg(feature = "check")]
            SenderInner::Model(s) => {
                use std::sync::atomic::Ordering;
                if !s.rx_alive.load(Ordering::SeqCst) {
                    return Err(SendError(value));
                }
                // Preemption point before the publish, matching the real
                // channel's internal synchronization.
                interleave::yield_point();
                model::push(s, value);
                interleave::chan_published(model::shared_key(s));
                Ok(())
            }
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        match &self.inner {
            SenderInner::Std(tx) => Sender {
                inner: SenderInner::Std(tx.clone()),
            },
            #[cfg(feature = "check")]
            SenderInner::Model(s) => {
                use std::sync::atomic::Ordering;
                s.senders.fetch_add(1, Ordering::SeqCst);
                Sender {
                    inner: SenderInner::Model(s.clone()),
                }
            }
        }
    }
}

#[cfg(feature = "check")]
impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if let SenderInner::Model(s) = &self.inner {
            use std::sync::atomic::Ordering;
            if s.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender gone: wake blocked receivers so they observe
                // the disconnect. Drop-safe (no yield, no panic).
                interleave::chan_disconnected(model::shared_key(s));
            }
        }
    }
}

enum ReceiverInner<T> {
    Std(std::sync::mpsc::Receiver<T>),
    #[cfg(feature = "check")]
    Model(std::sync::Arc<model::Shared<T>>),
}

/// Facade `std::sync::mpsc::Receiver`.
pub struct Receiver<T> {
    inner: ReceiverInner<T>,
}

impl<T> Receiver<T> {
    /// Blocks until a value arrives or all senders are dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        match &self.inner {
            ReceiverInner::Std(rx) => rx.recv().map_err(|_| RecvError),
            #[cfg(feature = "check")]
            ReceiverInner::Model(s) => {
                let key = model::shared_key(s);
                loop {
                    interleave::yield_point();
                    if let Some(v) = model::pop(s) {
                        interleave::chan_received(key);
                        return Ok(v);
                    }
                    if model::senders(s) == 0 {
                        return Err(RecvError);
                    }
                    interleave::chan_block(key);
                }
            }
        }
    }

    /// Blocks until a value arrives, all senders are dropped, or
    /// `timeout` passes. Under active exploration the timeout is a
    /// schedule event: the checker may fire it on any empty poll, which
    /// over-approximates every real firing time.
    pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
        match &self.inner {
            ReceiverInner::Std(rx) => rx.recv_timeout(timeout).map_err(|e| match e {
                std::sync::mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                std::sync::mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            }),
            #[cfg(feature = "check")]
            ReceiverInner::Model(s) => {
                let _ = timeout;
                interleave::yield_point();
                if let Some(v) = model::pop(s) {
                    interleave::chan_received(model::shared_key(s));
                    return Ok(v);
                }
                if model::senders(s) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                Err(RecvTimeoutError::Timeout)
            }
        }
    }
}

#[cfg(feature = "check")]
impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        if let ReceiverInner::Model(s) = &self.inner {
            use std::sync::atomic::Ordering;
            s.rx_alive.store(false, Ordering::SeqCst);
        }
    }
}

/// Creates a channel. On a participating thread this is a modeled channel;
/// otherwise plain `std::sync::mpsc::channel`.
pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
    #[cfg(feature = "check")]
    if interleave::participating() {
        let shared = model::new_shared::<T>();
        return (
            Sender {
                inner: SenderInner::Model(shared.clone()),
            },
            Receiver {
                inner: ReceiverInner::Model(shared),
            },
        );
    }
    let (tx, rx) = std::sync::mpsc::channel();
    (
        Sender {
            inner: SenderInner::Std(tx),
        },
        Receiver {
            inner: ReceiverInner::Std(rx),
        },
    )
}
