//! Facade atomics: identical to `std::sync::atomic` in production; under
//! the `check` feature each access is also a model-checker yield point with
//! happens-before (Acquire/Release edges) and lost-update bookkeeping.
//!
//! `Ordering` is re-exported from std — the facade does not change memory
//! semantics, it only observes them.

pub use std::sync::atomic::Ordering;

#[cfg(feature = "check")]
fn hook(key: usize, kind: interleave::AtomicKind, ord: Ordering) {
    if interleave::participating() {
        let acquire = matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst);
        let release = matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst);
        interleave::atomic_op(key, kind, acquire, release);
    }
}

#[cfg(feature = "check")]
fn destroy_hook(key: usize) {
    if interleave::participating() {
        interleave::object_destroyed(key);
    }
}

macro_rules! common_ops {
    ($std:ty, $t:ty) => {
        /// Creates a new atomic (usable in statics).
        pub const fn new(v: $t) -> Self {
            Self {
                inner: <$std>::new(v),
            }
        }

        /// Atomic load.
        #[inline]
        pub fn load(&self, ord: Ordering) -> $t {
            #[cfg(feature = "check")]
            hook(self.key(), interleave::AtomicKind::Load, ord);
            self.inner.load(ord)
        }

        /// Atomic store.
        #[inline]
        pub fn store(&self, v: $t, ord: Ordering) {
            #[cfg(feature = "check")]
            hook(self.key(), interleave::AtomicKind::Store, ord);
            self.inner.store(v, ord);
        }

        /// Atomic swap (read-modify-write).
        #[inline]
        pub fn swap(&self, v: $t, ord: Ordering) -> $t {
            #[cfg(feature = "check")]
            hook(self.key(), interleave::AtomicKind::Rmw, ord);
            self.inner.swap(v, ord)
        }

        /// Atomic compare-and-exchange (read-modify-write).
        #[inline]
        pub fn compare_exchange(
            &self,
            current: $t,
            new: $t,
            success: Ordering,
            failure: Ordering,
        ) -> Result<$t, $t> {
            #[cfg(feature = "check")]
            hook(self.key(), interleave::AtomicKind::Rmw, success);
            self.inner.compare_exchange(current, new, success, failure)
        }

        #[cfg(feature = "check")]
        fn key(&self) -> usize {
            self as *const Self as usize
        }
    };
}

macro_rules! numeric_ops {
    ($t:ty) => {
        /// Atomic add, returning the previous value.
        #[inline]
        pub fn fetch_add(&self, v: $t, ord: Ordering) -> $t {
            #[cfg(feature = "check")]
            hook(self.key(), interleave::AtomicKind::Rmw, ord);
            self.inner.fetch_add(v, ord)
        }

        /// Atomic subtract, returning the previous value.
        #[inline]
        pub fn fetch_sub(&self, v: $t, ord: Ordering) -> $t {
            #[cfg(feature = "check")]
            hook(self.key(), interleave::AtomicKind::Rmw, ord);
            self.inner.fetch_sub(v, ord)
        }
    };
}

macro_rules! atomic_type {
    ($(#[$meta:meta])* $name:ident, $std:ty, $t:ty) => {
        $(#[$meta])*
        #[derive(Debug, Default)]
        pub struct $name {
            inner: $std,
        }

        impl $name {
            common_ops!($std, $t);
        }

        #[cfg(feature = "check")]
        impl Drop for $name {
            fn drop(&mut self) {
                destroy_hook(self as *const Self as usize);
            }
        }
    };
}

atomic_type!(
    /// Facade `std::sync::atomic::AtomicBool`.
    AtomicBool,
    std::sync::atomic::AtomicBool,
    bool
);
atomic_type!(
    /// Facade `std::sync::atomic::AtomicU8`.
    AtomicU8,
    std::sync::atomic::AtomicU8,
    u8
);
atomic_type!(
    /// Facade `std::sync::atomic::AtomicU32`.
    AtomicU32,
    std::sync::atomic::AtomicU32,
    u32
);
atomic_type!(
    /// Facade `std::sync::atomic::AtomicU64`.
    AtomicU64,
    std::sync::atomic::AtomicU64,
    u64
);
atomic_type!(
    /// Facade `std::sync::atomic::AtomicUsize`.
    AtomicUsize,
    std::sync::atomic::AtomicUsize,
    usize
);

impl AtomicU8 {
    numeric_ops!(u8);
}
impl AtomicU32 {
    numeric_ops!(u32);
}
impl AtomicU64 {
    numeric_ops!(u64);
}
impl AtomicUsize {
    numeric_ops!(usize);
}
