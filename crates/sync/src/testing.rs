//! Deterministic test hooks.
//!
//! Spurious wakeups are allowed by the `Condvar` contract but essentially
//! impossible to provoke on demand with raw std. The facade makes them
//! injectable: arm a budget here and the next N `wait`/`wait_timeout`
//! calls (on any facade `Condvar`, any thread) return immediately without
//! having been notified, exactly like an OS-level spurious wakeup. Works
//! in both facade personalities; disarmed (the default) it costs one
//! relaxed atomic load per blocking wait.

use std::sync::atomic::{AtomicU32, Ordering};

static SPURIOUS_BUDGET: AtomicU32 = AtomicU32::new(0);

/// Arms `n` spurious wakeups process-wide. Each facade `Condvar::wait` /
/// `wait_timeout` consumes one and returns immediately (not timed out).
/// Intended for tests; call with 0 to disarm.
pub fn inject_spurious_wakeups(n: u32) {
    SPURIOUS_BUDGET.store(n, Ordering::SeqCst);
}

/// Consumes one armed spurious wakeup if any remain.
pub(crate) fn consume_spurious() -> bool {
    // sync: fast-path probe; the authoritative decrement below is SeqCst.
    if SPURIOUS_BUDGET.load(Ordering::Relaxed) == 0 {
        return false;
    }
    SPURIOUS_BUDGET
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
        .is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_consumed_exactly() {
        inject_spurious_wakeups(2);
        assert!(consume_spurious());
        assert!(consume_spurious());
        assert!(!consume_spurious());
        inject_spurious_wakeups(0);
    }
}
