//! gendt-sync — the workspace's threading substrate.
//!
//! Every crate that does real concurrency (`serve`, `trace`, `faults`,
//! `nn/threads`) imports its `Mutex`/`Condvar`/`RwLock`/atomics/channels/
//! `thread::spawn`/`Instant` from here instead of `std::sync`, enforced by
//! the `sync-discipline` audit lint. The facade has two personalities:
//!
//! - **Production** (default): inline newtypes over `std::sync` with no
//!   extra state and no custom guard `Drop` impls — zero overhead, bitwise
//!   identical behavior. The one deliberate difference from raw std is that
//!   `lock()`/`read()`/`write()` are poison-tolerant: a panicking thread
//!   can never wedge `/metrics` or the context cache (ISSUE 7 satellite).
//! - **Checked** (`--features check`, enabled by `gendt-audit`): every
//!   acquire/release/wait/notify/load/store first consults the vendored
//!   `interleave` model checker. When no exploration is active the hooks
//!   reduce to one thread-local read, so checked builds still behave
//!   identically outside the harness; under `gendt-audit sync-check` the
//!   checker serializes all participant threads and systematically explores
//!   interleavings of the *real* production code.
//!
//! Deterministic spurious-wakeup injection for tests lives in [`testing`]
//! and works in both personalities.

#![forbid(unsafe_code)]

pub mod atomic;
pub mod mpsc;
pub mod testing;
pub mod thread;
pub mod time;

#[cfg(not(feature = "check"))]
mod locks_prod;
#[cfg(not(feature = "check"))]
pub use locks_prod::{Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

#[cfg(feature = "check")]
mod locks_checked;
#[cfg(feature = "check")]
pub use locks_checked::{Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Result of a `Condvar::wait_timeout` (mode-agnostic stand-in for
/// `std::sync::WaitTimeoutResult`, which cannot be constructed manually).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub(crate) fn new(timed_out: bool) -> Self {
        Self { timed_out }
    }

    /// True when the wait returned because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}
