//! Checked personality: every lock/wait/notify consults the `interleave`
//! model checker when the calling thread participates in an exploration.
//!
//! The real std primitives are still used for actual mutual exclusion, but
//! under exploration they are only ever taken uncontended: the model alone
//! decides who blocks. Guards therefore carry the owning lock reference and
//! an `Option` of the real guard so `Condvar::wait` can drop the real lock
//! while the model keeps the blocked thread suspended.
//!
//! When no exploration is active, every operation reduces to one
//! thread-local read plus the plain std call — behavior is identical to the
//! production personality.

use crate::testing::consume_spurious;
use crate::WaitTimeoutResult;
use std::time::Duration;

fn key_of<P: ?Sized>(p: &P) -> usize {
    p as *const P as *const () as usize
}

/// Drop-in `std::sync::Mutex`, model-checked under exploration.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex (usable in statics).
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    fn raw_lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Acquires the lock, recovering from poisoning. Under exploration this
    /// is a modeled blocking acquisition (and a schedule yield point).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let modeled = interleave::participating();
        if modeled {
            interleave::mutex_lock(key_of(self));
        }
        MutexGuard {
            lock: self,
            inner: Some(self.raw_lock()),
            modeled,
        }
    }
}

impl<T: ?Sized> Drop for Mutex<T> {
    fn drop(&mut self) {
        if interleave::participating() {
            interleave::object_destroyed(key_of(self));
        }
    }
}

/// Guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
    modeled: bool,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner
            .as_ref()
            .expect("facade mutex guard used after release")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_mut()
            .expect("facade mutex guard used after release")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the real lock first: once the model unlock yields, the
        // next granted thread may immediately take the real lock.
        self.inner = None;
        if self.modeled {
            interleave::mutex_unlock(key_of(self.lock));
        }
    }
}

/// Drop-in `std::sync::Condvar`, model-checked under exploration.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable (usable in statics).
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified; under exploration the wakeup (notify choice,
    /// injected spurious wake, or timeout) is a scheduler decision.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.wait_inner(guard, None).0
    }

    /// Blocks until notified or `dur` elapses (virtual time under
    /// exploration: the deadline fires when the scheduler elects to
    /// advance the clock).
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: Duration,
    ) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
        self.wait_inner(guard, Some(dur))
    }

    fn wait_inner<'a, T>(
        &self,
        mut guard: MutexGuard<'a, T>,
        dur: Option<Duration>,
    ) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
        if consume_spurious() {
            return (guard, WaitTimeoutResult::new(false));
        }
        if guard.modeled && interleave::participating() {
            let lock = guard.lock;
            let mkey = key_of(lock);
            let ckey = key_of(self);
            // Drop the real lock; the model keeps us suspended and
            // re-acquires the model mutex before we resume.
            guard.inner = None;
            guard.modeled = false;
            drop(guard);
            let timeout_ns = dur.map(|d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
            let timed_out = interleave::condvar_wait(ckey, mkey, timeout_ns);
            let inner = lock.raw_lock();
            (
                MutexGuard {
                    lock,
                    inner: Some(inner),
                    modeled: true,
                },
                WaitTimeoutResult::new(timed_out),
            )
        } else {
            let lock = guard.lock;
            let modeled = guard.modeled;
            let std_g = guard
                .inner
                .take()
                .expect("facade mutex guard used after release");
            guard.modeled = false;
            drop(guard);
            let (std_g, timed_out) = match dur {
                None => (
                    self.inner.wait(std_g).unwrap_or_else(|p| p.into_inner()),
                    false,
                ),
                Some(d) => match self.inner.wait_timeout(std_g, d) {
                    Ok((g, r)) => (g, r.timed_out()),
                    Err(p) => {
                        let (g, r) = p.into_inner();
                        (g, r.timed_out())
                    }
                },
            };
            (
                MutexGuard {
                    lock,
                    inner: Some(std_g),
                    modeled,
                },
                WaitTimeoutResult::new(timed_out),
            )
        }
    }

    /// Wakes one waiter (a scheduler choice among model waiters under
    /// exploration).
    pub fn notify_one(&self) {
        if interleave::participating() {
            interleave::condvar_notify(key_of(self), false);
        } else {
            self.inner.notify_one();
        }
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        if interleave::participating() {
            interleave::condvar_notify(key_of(self), true);
        } else {
            self.inner.notify_all();
        }
    }
}

impl Drop for Condvar {
    fn drop(&mut self) {
        if interleave::participating() {
            interleave::object_destroyed(key_of(self));
        }
    }
}

/// Drop-in `std::sync::RwLock`, model-checked under exploration.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new rwlock (usable in statics).
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let modeled = interleave::participating();
        if modeled {
            interleave::rw_lock(key_of(self), false);
        }
        let inner = self.inner.read().unwrap_or_else(|p| p.into_inner());
        RwLockReadGuard {
            lock_key: key_of(self),
            inner: Some(inner),
            modeled,
        }
    }

    /// Acquires the exclusive write lock, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let modeled = interleave::participating();
        if modeled {
            interleave::rw_lock(key_of(self), true);
        }
        let inner = self.inner.write().unwrap_or_else(|p| p.into_inner());
        RwLockWriteGuard {
            lock_key: key_of(self),
            inner: Some(inner),
            modeled,
        }
    }
}

impl<T: ?Sized> Drop for RwLock<T> {
    fn drop(&mut self) {
        if interleave::participating() {
            interleave::object_destroyed(key_of(self));
        }
    }
}

/// Guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    lock_key: usize,
    inner: Option<std::sync::RwLockReadGuard<'a, T>>,
    modeled: bool,
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner
            .as_ref()
            .expect("facade read guard used after release")
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.inner = None;
        if self.modeled {
            interleave::rw_unlock(self.lock_key, false);
        }
    }
}

/// Guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    lock_key: usize,
    inner: Option<std::sync::RwLockWriteGuard<'a, T>>,
    modeled: bool,
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner
            .as_ref()
            .expect("facade write guard used after release")
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_mut()
            .expect("facade write guard used after release")
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.inner = None;
        if self.modeled {
            interleave::rw_unlock(self.lock_key, true);
        }
    }
}
