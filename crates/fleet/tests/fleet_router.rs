//! Router integration tests against real in-process workers: two
//! [`gendt_serve`] servers stand in for the pool (no process spawning,
//! so the test is fast and sandbox-friendly), and the router fronts
//! them over real loopback HTTP.

use gendt_fleet::{route_serve, FleetMetrics, HttpForwarder, HttpProbe, Membership, RouterCfg};
use gendt_serve::http::{http_request, http_request_full};
use gendt_serve::{serve, ServerCfg, ServerHandle};
use std::path::PathBuf;
use std::sync::Arc;

fn models_dir() -> PathBuf {
    let dir = std::env::temp_dir().join("gendt-fleet-itest-models");
    let ckpt = dir.join("demo_a.json");
    if !ckpt.exists() {
        gendt_serve::demo::write_demo_model(&ckpt, 1).expect("demo checkpoint");
    }
    dir
}

fn worker() -> ServerHandle {
    serve(ServerCfg::new(models_dir())).expect("worker up")
}

struct TestFleet {
    router: gendt_fleet::RouterHandle,
    membership: Arc<Membership>,
    workers: Vec<ServerHandle>,
}

impl TestFleet {
    fn start(n: usize) -> TestFleet {
        let workers: Vec<ServerHandle> = (0..n).map(|_| worker()).collect();
        let metrics = Arc::new(FleetMetrics::new());
        let membership = Arc::new(Membership::new(9, metrics.clone()));
        for (i, w) in workers.iter().enumerate() {
            membership.register(&format!("w{i}"), &w.addr.to_string());
        }
        let cfg = RouterCfg {
            health_interval_ms: 50,
            ..RouterCfg::new()
        };
        let router = route_serve(
            cfg,
            membership.clone(),
            Arc::new(HttpProbe),
            Arc::new(HttpForwarder),
            metrics,
        )
        .expect("router up");
        TestFleet {
            router,
            membership,
            workers,
        }
    }

    fn addr(&self) -> String {
        self.router.addr.to_string()
    }

    fn stop(self) {
        self.router.shutdown();
        for w in self.workers {
            w.shutdown();
        }
    }
}

fn body(scenario: &str, sample_seed: u64) -> String {
    format!(
        "{{\"model\":\"demo_a\",\"scenario\":\"{scenario}\",\"duration_s\":20.0,\
         \"start_x\":0.0,\"start_y\":0.0,\"traj_seed\":2,\"sample_seed\":{sample_seed}}}"
    )
}

#[test]
fn routed_generate_matches_direct_worker_bitwise() {
    let fleet = TestFleet::start(2);
    for scenario in ["walk", "bus", "tram", "city_drive", "highway"] {
        let b = body(scenario, 5);
        let (rs, routed) =
            http_request(&fleet.addr(), "POST", "/v1/generate", Some(&b)).expect("routed");
        assert_eq!(rs, 200, "routed {scenario}: {routed}");
        // Any single worker gives the canonical answer: generation is
        // deterministic in the request, not in the serving process.
        let direct_addr = fleet.workers[0].addr.to_string();
        let (ds, direct) =
            http_request(&direct_addr, "POST", "/v1/generate", Some(&b)).expect("direct");
        assert_eq!(ds, 200);
        assert_eq!(routed, direct, "scenario {scenario} differs through router");
    }
    fleet.stop();
}

#[test]
fn models_and_fleet_endpoints_reflect_membership() {
    let fleet = TestFleet::start(2);
    let (s, models) = http_request(&fleet.addr(), "GET", "/v1/models", None).expect("models");
    assert_eq!(s, 200);
    assert!(models.contains("demo_a"), "{models}");

    let (s, status) = http_request(&fleet.addr(), "GET", "/v1/fleet", None).expect("fleet");
    assert_eq!(s, 200);
    assert!(status.contains("\"workers\":2"), "{status}");
    assert!(status.contains("\"healthy\":2"), "{status}");
    assert!(status.contains("\"seed\":9"), "{status}");

    let (s, _) = http_request(&fleet.addr(), "GET", "/v1/healthz", None).expect("healthz");
    assert_eq!(s, 200);
    fleet.stop();
}

#[test]
fn dead_worker_fails_over_without_stranding() {
    let fleet = TestFleet::start(2);
    // Hard-stop one worker out from under the router.
    let victim = fleet.workers[1].addr.to_string();
    let _ = http_request(&victim, "POST", "/v1/shutdown", None);
    // Give the two-phase drain a beat to close the listener.
    std::thread::sleep(std::time::Duration::from_millis(700));

    // Every request still gets a definite answer; at least one 200.
    let mut ok = 0;
    for i in 0..10u64 {
        let b = body(["walk", "bus", "tram"][i as usize % 3], i);
        let resp = http_request_full(&fleet.addr(), "POST", "/v1/generate", &[], Some(&b))
            .expect("request answered");
        match resp.status {
            200 => ok += 1,
            503 => assert!(
                resp.body.contains("\"retryable\":true"),
                "untyped 503: {}",
                resp.body
            ),
            other => panic!("unexpected status {other}: {}", resp.body),
        }
    }
    assert!(ok > 0, "no request succeeded after failover");

    // The health poller converges to 1 healthy member.
    let mut healthy = fleet.membership.healthy_count();
    for _ in 0..50 {
        if healthy == 1 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
        healthy = fleet.membership.healthy_count();
    }
    assert_eq!(healthy, 1, "membership never converged");
    fleet.stop();
}

#[test]
fn deadline_expired_in_routing_is_504() {
    let fleet = TestFleet::start(1);
    // Deadline-Ms: 1 will be expired by the time routing runs.
    std::thread::sleep(std::time::Duration::from_millis(5));
    let resp = http_request_full(
        &fleet.addr(),
        "POST",
        "/v1/generate",
        &[("Deadline-Ms", "1")],
        Some(&body("walk", 1)),
    )
    .expect("answered");
    // Either the router noticed (504) or the worker shed it (503) —
    // both are typed; what must not happen is a success or a hang.
    assert!(
        resp.status == 504 || resp.status == 503,
        "status {}: {}",
        resp.status,
        resp.body
    );
    assert!(resp.body.contains("\"code\""), "untyped: {}", resp.body);
    fleet.stop();
}

#[test]
fn draining_router_sheds_with_typed_envelope() {
    let fleet = TestFleet::start(1);
    let (s, b) = http_request(&fleet.addr(), "POST", "/v1/shutdown", None).expect("shutdown");
    assert_eq!(s, 200, "{b}");
    // Until the listener closes, new generates are shed typed.
    if let Ok(resp) = http_request_full(
        &fleet.addr(),
        "POST",
        "/v1/generate",
        &[],
        Some(&body("walk", 1)),
    ) {
        assert_eq!(resp.status, 503, "{}", resp.body);
        assert!(resp.body.contains("unavailable"), "{}", resp.body);
    }
    // Router winds down on its own after the drain grace.
    fleet.router.join();
    for w in fleet.workers {
        w.shutdown();
    }
}
