//! Router integration tests against real in-process workers: two
//! [`gendt_serve`] servers stand in for the pool (no process spawning,
//! so the test is fast and sandbox-friendly), and the router fronts
//! them over real loopback HTTP.

use gendt_fleet::{route_serve, FleetMetrics, HttpForwarder, HttpProbe, Membership, RouterCfg};
use gendt_serve::api::{StreamChunk, StreamTrailer};
use gendt_serve::http::{http_request, http_request_full};
use gendt_serve::{serve, ServerCfg, ServerHandle};
use std::path::PathBuf;
use std::sync::Arc;

fn models_dir() -> PathBuf {
    let dir = std::env::temp_dir().join("gendt-fleet-itest-models");
    let ckpt = dir.join("demo_a.json");
    if !ckpt.exists() {
        gendt_serve::demo::write_demo_model(&ckpt, 1).expect("demo checkpoint");
    }
    dir
}

fn worker() -> ServerHandle {
    serve(ServerCfg::new(models_dir())).expect("worker up")
}

struct TestFleet {
    router: gendt_fleet::RouterHandle,
    membership: Arc<Membership>,
    workers: Vec<ServerHandle>,
}

impl TestFleet {
    fn start(n: usize) -> TestFleet {
        TestFleet::start_with(n, 50)
    }

    /// `health_interval_ms` is a knob so failover tests can park the
    /// poller and exercise the forward-path eviction deterministically.
    fn start_with(n: usize, health_interval_ms: u64) -> TestFleet {
        let workers: Vec<ServerHandle> = (0..n).map(|_| worker()).collect();
        let metrics = Arc::new(FleetMetrics::new());
        let membership = Arc::new(Membership::new(9, metrics.clone()));
        for (i, w) in workers.iter().enumerate() {
            membership.register(&format!("w{i}"), &w.addr.to_string());
        }
        let cfg = RouterCfg {
            health_interval_ms,
            ..RouterCfg::new()
        };
        let router = route_serve(
            cfg,
            membership.clone(),
            Arc::new(HttpProbe),
            Arc::new(HttpForwarder),
            metrics,
        )
        .expect("router up");
        TestFleet {
            router,
            membership,
            workers,
        }
    }

    fn addr(&self) -> String {
        self.router.addr.to_string()
    }

    fn stop(self) {
        self.router.shutdown();
        for w in self.workers {
            w.shutdown();
        }
    }
}

fn body(scenario: &str, sample_seed: u64) -> String {
    format!(
        "{{\"model\":\"demo_a\",\"scenario\":\"{scenario}\",\"duration_s\":20.0,\
         \"start_x\":0.0,\"start_y\":0.0,\"traj_seed\":2,\"sample_seed\":{sample_seed}}}"
    )
}

#[test]
fn routed_generate_matches_direct_worker_bitwise() {
    let fleet = TestFleet::start(2);
    for scenario in ["walk", "bus", "tram", "city_drive", "highway"] {
        let b = body(scenario, 5);
        let (rs, routed) =
            http_request(&fleet.addr(), "POST", "/v1/generate", Some(&b)).expect("routed");
        assert_eq!(rs, 200, "routed {scenario}: {routed}");
        // Any single worker gives the canonical answer: generation is
        // deterministic in the request, not in the serving process.
        let direct_addr = fleet.workers[0].addr.to_string();
        let (ds, direct) =
            http_request(&direct_addr, "POST", "/v1/generate", Some(&b)).expect("direct");
        assert_eq!(ds, 200);
        assert_eq!(routed, direct, "scenario {scenario} differs through router");
    }
    fleet.stop();
}

#[test]
fn models_and_fleet_endpoints_reflect_membership() {
    let fleet = TestFleet::start(2);
    let (s, models) = http_request(&fleet.addr(), "GET", "/v1/models", None).expect("models");
    assert_eq!(s, 200);
    assert!(models.contains("demo_a"), "{models}");

    let (s, status) = http_request(&fleet.addr(), "GET", "/v1/fleet", None).expect("fleet");
    assert_eq!(s, 200);
    assert!(status.contains("\"workers\":2"), "{status}");
    assert!(status.contains("\"healthy\":2"), "{status}");
    assert!(status.contains("\"seed\":9"), "{status}");

    let (s, _) = http_request(&fleet.addr(), "GET", "/v1/healthz", None).expect("healthz");
    assert_eq!(s, 200);
    fleet.stop();
}

#[test]
fn dead_worker_fails_over_without_stranding() {
    let fleet = TestFleet::start(2);
    // Hard-stop one worker out from under the router.
    let victim = fleet.workers[1].addr.to_string();
    let _ = http_request(&victim, "POST", "/v1/shutdown", None);
    // Give the two-phase drain a beat to close the listener.
    std::thread::sleep(std::time::Duration::from_millis(700));

    // Every request still gets a definite answer; at least one 200.
    let mut ok = 0;
    for i in 0..10u64 {
        let b = body(["walk", "bus", "tram"][i as usize % 3], i);
        let resp = http_request_full(&fleet.addr(), "POST", "/v1/generate", &[], Some(&b))
            .expect("request answered");
        match resp.status {
            200 => ok += 1,
            503 => assert!(
                resp.body.contains("\"retryable\":true"),
                "untyped 503: {}",
                resp.body
            ),
            other => panic!("unexpected status {other}: {}", resp.body),
        }
    }
    assert!(ok > 0, "no request succeeded after failover");

    // The health poller converges to 1 healthy member.
    let mut healthy = fleet.membership.healthy_count();
    for _ in 0..50 {
        if healthy == 1 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
        healthy = fleet.membership.healthy_count();
    }
    assert_eq!(healthy, 1, "membership never converged");
    fleet.stop();
}

/// NDJSON stream body → (chunk lines, trailer line).
fn parse_stream(body: &str) -> (Vec<StreamChunk>, StreamTrailer) {
    let lines: Vec<&str> = body.lines().filter(|l| !l.is_empty()).collect();
    assert!(!lines.is_empty(), "empty stream body");
    let trailer: StreamTrailer =
        serde_json::from_str(lines[lines.len() - 1]).expect("last line is the trailer");
    let chunks = lines[..lines.len() - 1]
        .iter()
        .map(|l| serde_json::from_str::<StreamChunk>(l).expect("chunk line"))
        .collect();
    (chunks, trailer)
}

#[test]
fn routed_stream_concatenates_to_direct_one_shot_bitwise() {
    let fleet = TestFleet::start(2);
    let open = "{\"model\":\"demo_a\",\"scenario\":\"walk\",\"duration_s\":20.0,\"start_x\":0.0,\
         \"start_y\":0.0,\"traj_seed\":2,\"sample_seed\":5,\"chunk_windows\":1}";
    let resp =
        http_request_full(&fleet.addr(), "POST", "/v1/stream", &[], Some(open)).expect("stream");
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert_eq!(
        resp.header("transfer-encoding"),
        Some("chunked"),
        "the tunnel must relay the worker's chunked framing verbatim"
    );
    let sid = resp
        .header("Gendt-Session-Id")
        .expect("session id header relayed from the worker")
        .to_string();
    assert!(sid.starts_with('r'), "router-minted id, got {sid:?}");
    let (chunks, trailer) = parse_stream(&resp.body);
    assert!(trailer.done, "{trailer:?}");
    assert!(chunks.len() >= 2);

    // Concatenated streamed windows == any worker's one-shot answer.
    let direct_addr = fleet.workers[0].addr.to_string();
    let (ds, direct) =
        http_request(&direct_addr, "POST", "/v1/generate", Some(&body("walk", 5))).expect("direct");
    assert_eq!(ds, 200);
    let direct: gendt_serve::GenerateResponse = serde_json::from_str(&direct).expect("one-shot");
    let mut cat: Vec<Vec<f64>> = vec![Vec::new(); direct.series.series.len()];
    for c in &chunks {
        for (dst, src) in cat.iter_mut().zip(c.series.series.iter()) {
            dst.extend_from_slice(src);
        }
    }
    assert_eq!(
        cat, direct.series.series,
        "routed stream differs from direct one-shot"
    );

    // A completed session's continuation 404s on the worker and the
    // tunnel passes that through verbatim.
    let cont = format!("{{\"session\":{sid:?}}}");
    let resp = http_request_full(&fleet.addr(), "POST", "/v1/stream", &[], Some(&cont))
        .expect("continuation");
    assert_eq!(resp.status, 404, "{}", resp.body);
    assert!(resp.body.contains("not_found"), "{}", resp.body);

    assert!(
        fleet
            .router
            .metrics()
            .stream_tunnels
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 2
    );
    fleet.stop();
}

#[test]
fn dead_session_owner_yields_migration_notice_naming_survivor() {
    // Health poller parked: the continuation must discover the dead
    // owner on the forward path itself.
    let fleet = TestFleet::start_with(2, 60_000);
    let open = "{\"model\":\"demo_a\",\"scenario\":\"walk\",\"duration_s\":20.0,\"start_x\":0.0,\
         \"start_y\":0.0,\"traj_seed\":2,\"sample_seed\":7,\"max_windows\":1}";
    let resp =
        http_request_full(&fleet.addr(), "POST", "/v1/stream", &[], Some(open)).expect("open");
    assert_eq!(resp.status, 200, "{}", resp.body);
    let sid = resp
        .header("Gendt-Session-Id")
        .expect("session id")
        .to_string();
    let (_, trailer) = parse_stream(&resp.body);
    assert!(!trailer.done, "budgeted open must pause: {trailer:?}");

    // Kill the pinned owner out from under the router.
    let (owner, owner_addr) = fleet
        .membership
        .route_session(&sid, None)
        .expect("session owner");
    let _ = http_request(&owner_addr, "POST", "/v1/shutdown", None);
    std::thread::sleep(std::time::Duration::from_millis(700));

    let cont = format!("{{\"session\":{sid:?}}}");
    let resp = http_request_full(&fleet.addr(), "POST", "/v1/stream", &[], Some(&cont))
        .expect("continuation answered");
    assert_eq!(resp.status, 503, "{}", resp.body);
    assert!(resp.body.contains("\"retryable\":true"), "{}", resp.body);
    let new_owner = resp
        .header("Gendt-Session-Owner")
        .expect("migration notice names the new owner");
    assert_ne!(new_owner, owner, "new owner must differ from the dead one");
    assert!(resp.body.contains(new_owner), "{}", resp.body);
    // The forward-path failure evicted the dead owner immediately.
    assert_eq!(fleet.membership.healthy_count(), 1);
    assert_eq!(
        fleet
            .router
            .metrics()
            .stream_migrations
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );
    fleet.stop();
}

#[test]
fn deadline_expired_in_routing_is_504() {
    let fleet = TestFleet::start(1);
    // Deadline-Ms: 1 will be expired by the time routing runs.
    std::thread::sleep(std::time::Duration::from_millis(5));
    let resp = http_request_full(
        &fleet.addr(),
        "POST",
        "/v1/generate",
        &[("Deadline-Ms", "1")],
        Some(&body("walk", 1)),
    )
    .expect("answered");
    // Either the router noticed (504) or the worker shed it (503) —
    // both are typed; what must not happen is a success or a hang.
    assert!(
        resp.status == 504 || resp.status == 503,
        "status {}: {}",
        resp.status,
        resp.body
    );
    assert!(resp.body.contains("\"code\""), "untyped: {}", resp.body);
    fleet.stop();
}

#[test]
fn draining_router_sheds_with_typed_envelope() {
    let fleet = TestFleet::start(1);
    let (s, b) = http_request(&fleet.addr(), "POST", "/v1/shutdown", None).expect("shutdown");
    assert_eq!(s, 200, "{b}");
    // Until the listener closes, new generates are shed typed.
    if let Ok(resp) = http_request_full(
        &fleet.addr(),
        "POST",
        "/v1/generate",
        &[],
        Some(&body("walk", 1)),
    ) {
        assert_eq!(resp.status, 503, "{}", resp.body);
        assert!(resp.body.contains("unavailable"), "{}", resp.body);
    }
    // Router winds down on its own after the drain grace.
    fleet.router.join();
    for w in fleet.workers {
        w.shutdown();
    }
}
