//! Property tests for the consistent-hash ring: balance and minimal
//! disruption — the two claims the fleet design leans on.

use gendt_fleet::key_hash;
use gendt_fleet::ring::{Ring, DEFAULT_VNODES};

fn members(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("w{i}")).collect()
}

/// A deterministic population of request keys shaped like real traffic:
/// a few models crossed with many scenarios.
fn traffic_keys(seed: u64, n: usize) -> Vec<u64> {
    const MODELS: [&str; 4] = ["demo_a", "demo_b", "campus", "highway_v2"];
    (0..n)
        .map(|i| {
            let model = MODELS[i % MODELS.len()];
            let scenario = format!("scn{}", i / MODELS.len());
            key_hash(seed, model, &scenario)
        })
        .collect()
}

fn owners(ring: &Ring, keys: &[u64]) -> Vec<String> {
    keys.iter()
        .map(|&k| ring.owner(k).expect("non-empty ring").to_string())
        .collect()
}

/// Across 8 workers, every worker's share of a large key population
/// stays within ±15% of the fair share — the ISSUE's balance bound.
#[test]
fn eight_workers_balance_within_15_percent() {
    for seed in [1u64, 7, 42] {
        let ring = Ring::build(seed, &members(8), DEFAULT_VNODES);
        let keys = traffic_keys(seed, 16_000);
        let assigned = owners(&ring, &keys);
        let fair = keys.len() as f64 / 8.0;
        for id in ring.members() {
            let got = assigned.iter().filter(|o| *o == id).count() as f64;
            let dev = (got - fair).abs() / fair;
            assert!(
                dev <= 0.15,
                "seed {seed}: {id} holds {got} of {} keys ({:.1}% off fair share)",
                keys.len(),
                dev * 100.0
            );
        }
    }
}

/// Adding a 9th worker moves roughly 1/9 of keys — and every move goes
/// *to* the new worker (no unrelated reshuffling).
#[test]
fn join_moves_about_one_nth_and_only_to_joiner() {
    let seed = 11u64;
    let before = Ring::build(seed, &members(8), DEFAULT_VNODES);
    let after = Ring::build(seed, &members(9), DEFAULT_VNODES);
    let keys = traffic_keys(seed, 16_000);
    let a = owners(&before, &keys);
    let b = owners(&after, &keys);
    let mut moved = 0usize;
    for (old, new) in a.iter().zip(&b) {
        if old != new {
            moved += 1;
            assert_eq!(new, "w8", "a key moved to {new}, not to the joiner");
        }
    }
    let frac = moved as f64 / keys.len() as f64;
    // Expect ~1/9 ≈ 11.1%; accept a generous band around it.
    assert!(
        (0.05..=0.20).contains(&frac),
        "join moved {:.1}% of keys, expected ~11%",
        frac * 100.0
    );
}

/// Evicting one of 8 workers moves exactly that worker's keys (~1/8)
/// and strands nothing: evicted keys all land on surviving workers.
#[test]
fn evict_moves_only_the_victims_keys() {
    let seed = 23u64;
    let before = Ring::build(seed, &members(8), DEFAULT_VNODES);
    let survivors: Vec<String> = members(8).into_iter().filter(|m| m != "w3").collect();
    let after = Ring::build(seed, &survivors, DEFAULT_VNODES);
    let keys = traffic_keys(seed, 16_000);
    let a = owners(&before, &keys);
    let b = owners(&after, &keys);
    let mut moved = 0usize;
    for (old, new) in a.iter().zip(&b) {
        if old == "w3" {
            moved += 1;
            assert_ne!(new, "w3", "evicted worker still owns a key");
        } else {
            assert_eq!(old, new, "a key not owned by the victim moved on evict");
        }
        assert!(survivors.contains(new), "key routed off the ring");
    }
    let frac = moved as f64 / keys.len() as f64;
    assert!(
        (0.06..=0.19).contains(&frac),
        "evict moved {:.1}% of keys, expected ~12.5%",
        frac * 100.0
    );
}

/// Rejoin after evict restores the exact original placement — eviction
/// is memoryless, so a health flap cannot slowly scramble the ring.
#[test]
fn rejoin_restores_original_placement() {
    let seed = 5u64;
    let full = Ring::build(seed, &members(8), DEFAULT_VNODES);
    let survivors: Vec<String> = members(8).into_iter().filter(|m| m != "w5").collect();
    let down = Ring::build(seed, &survivors, DEFAULT_VNODES);
    let back = Ring::build(seed, &members(8), DEFAULT_VNODES);
    let keys = traffic_keys(seed, 4_000);
    assert_ne!(owners(&full, &keys), owners(&down, &keys));
    assert_eq!(owners(&full, &keys), owners(&back, &keys));
}

/// The failover walk's second member differs from the first and is
/// stable for a fixed ring — the router's retry target is
/// deterministic.
#[test]
fn failover_order_is_stable_and_distinct() {
    let ring = Ring::build(3, &members(8), DEFAULT_VNODES);
    for &k in &traffic_keys(3, 512) {
        let first: Vec<&str> = ring.walk(k).take(2).collect();
        let second: Vec<&str> = ring.walk(k).take(2).collect();
        assert_eq!(first, second);
        assert_eq!(first.len(), 2);
        assert_ne!(first[0], first[1]);
    }
}
