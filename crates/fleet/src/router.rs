//! The fleet router: a std-only HTTP front-end that consistent-hashes
//! `/v1/generate` by `(model, scenario)` onto the worker pool.
//!
//! Worker responses — including typed v1 error envelopes — are returned
//! to the client verbatim (status, `Retry-After`, body). Errors that
//! originate *in the router* (no healthy owner, deadline expired in
//! routing, every failover attempt failed) are answered with the same
//! typed envelope shape, so a fleet client sees exactly one error
//! contract. A request's `Deadline-Ms` is propagated minus the time
//! already spent routing; a forward attempt is additionally bounded by
//! the router's forward timeout, so a dead worker costs milliseconds,
//! not a client timeout.
//!
//! The core routing decision ([`dispatch_generate`]) is a free function
//! over the [`Membership`]/[`Forwarder`] seams: the audit sync-check
//! gate drives it with stub transports under the `interleave` model
//! checker to prove health flaps racing forwarding never strand an
//! accepted request.

use crate::forward::Forwarder;
use crate::membership::{Membership, Probe};
use crate::metrics::{FleetMetrics, RouteOutcome};
use gendt_faults::{ErrorKind, GendtError};
use gendt_obs::clock::ClockTable;
use gendt_obs::slo::{SloCfg, SloTracker};
use gendt_obs::{flightrec, promtext, traceid};
use gendt_serve::api::{
    ErrorEnvelope, GenerateRequest, ModelsResponse, StreamRequest, SESSION_HEADER,
    SESSION_OWNER_HEADER,
};
use gendt_serve::http::{
    read_request, write_json, write_json_extra, write_response_extra, Request,
};
use gendt_sync::atomic::{AtomicBool, AtomicU64, Ordering};
use gendt_sync::thread::{self, JoinHandle};
use gendt_sync::time::Instant;
use serde::Serialize;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// How many distinct workers one request may try before giving up: the
/// ring owner plus one failover. More would trade tail latency for
/// availability the second attempt already provides.
const MAX_ATTEMPTS: usize = 2;

/// How long shutdown waits for in-flight connections to finish.
const DRAIN_WAIT: Duration = Duration::from_secs(10);

/// Grace window between `POST /shutdown` and the hard listener close.
const DRAIN_GRACE: Duration = Duration::from_millis(300);

/// Per-worker budget when the federated `/metrics` scrape fans out; a
/// slow worker must not stall the whole exposition for the full
/// forward timeout.
const SCRAPE_TIMEOUT: Duration = Duration::from_millis(2500);

/// Router configuration.
#[derive(Clone, Debug)]
pub struct RouterCfg {
    /// Bind address (port 0 for tests).
    pub addr: String,
    /// Fleet placement seed (`GENDT_FLEET_SEED`).
    pub seed: u64,
    /// Health poll interval, milliseconds.
    pub health_interval_ms: u64,
    /// Per-attempt forward timeout, milliseconds (a propagated deadline
    /// can only shorten it).
    pub forward_timeout_ms: u64,
}

impl RouterCfg {
    /// Defaults: loopback with an OS-assigned port, seed 1, 200 ms
    /// health polls, 10 s forward budget.
    pub fn new() -> RouterCfg {
        RouterCfg {
            addr: "127.0.0.1:0".to_string(),
            seed: 1,
            health_interval_ms: 200,
            forward_timeout_ms: 10_000,
        }
    }

    /// Reject degenerate values.
    pub fn validate(&self) -> Result<(), GendtError> {
        if self
            .addr
            .rsplit_once(':')
            .is_none_or(|(host, port)| host.is_empty() || port.parse::<u16>().is_err())
        {
            return Err(GendtError::config(format!(
                "RouterCfg: addr {:?} is not host:port",
                self.addr
            )));
        }
        if self.health_interval_ms == 0 {
            return Err(GendtError::config(
                "RouterCfg: health_interval_ms must be > 0",
            ));
        }
        if self.forward_timeout_ms == 0 {
            return Err(GendtError::config(
                "RouterCfg: forward_timeout_ms must be > 0",
            ));
        }
        Ok(())
    }
}

impl Default for RouterCfg {
    fn default() -> Self {
        RouterCfg::new()
    }
}

struct RouterState {
    membership: Arc<Membership>,
    forwarder: Arc<dyn Forwarder>,
    metrics: Arc<FleetMetrics>,
    forward_timeout: Duration,
    draining: AtomicBool,
    shutdown: AtomicBool,
    active: AtomicU64,
    /// Counter folded into router-minted stream session ids.
    session_seq: AtomicU64,
    /// Per-worker clock-offset estimates fed by forward brackets,
    /// exported on `/debug/trace` for the timeline assembler.
    clock: ClockTable,
    /// Rolling-window SLO accounting over routed generate traffic.
    slo: SloTracker,
}

impl RouterState {
    fn is_draining(&self) -> bool {
        // sync: pairs with the Release stores in shutdown paths.
        self.draining.load(Ordering::Acquire) || self.shutdown.load(Ordering::Acquire)
    }
}

/// Decrements the in-flight connection count when a handler exits.
struct ActiveGuard<'a>(&'a AtomicU64);

impl Drop for ActiveGuard<'_> {
    fn drop(&mut self) {
        // sync: AcqRel so the drain loop's Acquire load of zero also
        // observes every write the finished handler made.
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

/// A running router: bound address plus the means to stop it.
pub struct RouterHandle {
    /// The address the router actually bound.
    pub addr: SocketAddr,
    state: Arc<RouterState>,
    acceptor: Option<JoinHandle<()>>,
    poller: Option<JoinHandle<()>>,
}

impl RouterHandle {
    /// Shared router metrics.
    pub fn metrics(&self) -> Arc<FleetMetrics> {
        self.state.metrics.clone()
    }

    /// Block until the acceptor exits (i.e. until `/shutdown`), then
    /// drain the poller and in-flight connections.
    pub fn join(mut self) {
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        self.finish();
    }

    /// Stop the router gracefully.
    pub fn shutdown(mut self) {
        // sync: Release pairs with the Acquire loads in is_draining and
        // the accept/poll loops.
        self.state.draining.store(true, Ordering::Release);
        self.state.shutdown.store(true, Ordering::Release);
        let _ = TcpStream::connect(self.addr);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        self.finish();
    }

    fn finish(&mut self) {
        // sync: Release pairs with the poll loop's Acquire.
        self.state.shutdown.store(true, Ordering::Release);
        if let Some(p) = self.poller.take() {
            let _ = p.join();
        }
        let deadline = Instant::now() + DRAIN_WAIT;
        // sync: Acquire pairs with ActiveGuard's AcqRel decrement.
        while self.state.active.load(Ordering::Acquire) > 0 && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(2));
        }
    }
}

/// Start the router over an existing membership. Returns once the
/// listener is bound and the health poller is up.
pub fn route_serve(
    cfg: RouterCfg,
    membership: Arc<Membership>,
    probe: Arc<dyn Probe>,
    forwarder: Arc<dyn Forwarder>,
    metrics: Arc<FleetMetrics>,
) -> Result<RouterHandle, GendtError> {
    cfg.validate()?;
    let listener = TcpListener::bind(&cfg.addr)
        .map_err(|e| GendtError::from(e).wrap(format!("cannot bind {}", cfg.addr)))?;
    let addr = listener
        .local_addr()
        .map_err(|e| GendtError::from(e).wrap("no local addr"))?;

    let state = Arc::new(RouterState {
        membership: membership.clone(),
        forwarder,
        metrics,
        forward_timeout: Duration::from_millis(cfg.forward_timeout_ms),
        draining: AtomicBool::new(false),
        shutdown: AtomicBool::new(false),
        active: AtomicU64::new(0),
        session_seq: AtomicU64::new(0),
        clock: ClockTable::new(),
        slo: SloTracker::new(SloCfg::default()),
    });

    // Discover the pool before taking traffic, then keep polling.
    membership.poll_once(probe.as_ref());
    let poll_state = state.clone();
    let interval = Duration::from_millis(cfg.health_interval_ms);
    let poller = thread::spawn_named("fleet-health", move || {
        // sync: pairs with the Release store in shutdown paths.
        while !poll_state.shutdown.load(Ordering::Acquire) {
            thread::sleep(interval);
            poll_state.membership.poll_once(probe.as_ref());
        }
    });

    let accept_state = state.clone();
    let acceptor = thread::spawn_named("fleet-acceptor", move || {
        for stream in listener.incoming() {
            // sync: pairs with the Release store in shutdown paths.
            if accept_state.shutdown.load(Ordering::Acquire) {
                break;
            }
            match stream {
                Ok(s) => {
                    let conn_state = accept_state.clone();
                    // sync: AcqRel, the counterpart of ActiveGuard's
                    // decrement watched by the drain loop.
                    conn_state.active.fetch_add(1, Ordering::AcqRel);
                    thread::spawn_named("fleet-conn", move || {
                        let _guard = ActiveGuard(&conn_state.active);
                        handle_conn(&conn_state, s);
                    });
                }
                Err(_) => continue,
            }
        }
    });

    Ok(RouterHandle {
        addr,
        state,
        acceptor: Some(acceptor),
        poller: Some(poller),
    })
}

/// A fully-formed response: status, extra headers, JSON body, plus the
/// observability facts the connection handler feeds into the flight
/// recorder and clock table.
pub struct Routed {
    /// HTTP status to answer.
    pub status: u16,
    /// Extra headers (e.g. `Retry-After`) to include.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: String,
    /// Flight-recorder outcome code
    /// ([`gendt_obs::flightrec::outcome`]).
    pub outcome: u8,
    /// Worker id that answered (empty when no worker was reached).
    pub worker: String,
    /// Scenario code of the parsed request (255 when unparsed).
    pub scenario: u8,
    /// Microseconds inside the winning forward attempt.
    pub forward_us: u32,
    /// Clock sample from the winning hop: router `now_ns` before and
    /// after the forward plus the worker's echoed
    /// `Gendt-Worker-Time-Ns` reading.
    pub clock_sample: Option<(u64, u64, u64)>,
}

impl Routed {
    fn plain(status: u16, headers: Vec<(String, String)>, body: String) -> Routed {
        Routed {
            status,
            headers,
            body,
            outcome: if status == 200 {
                flightrec::outcome::OK
            } else {
                flightrec::outcome::FAILED
            },
            worker: String::new(),
            scenario: 255,
            forward_us: 0,
            clock_sample: None,
        }
    }

    fn error(err: &GendtError) -> Routed {
        let status = err.http_status();
        let mut headers = Vec::new();
        if status == 429 || status == 503 {
            headers.push(("Retry-After".to_string(), "1".to_string()));
        }
        let body = serde_json::to_string(&ErrorEnvelope::from_error(err)).unwrap_or_else(|_| {
            format!("{{\"code\":\"internal\",\"message\":{:?}}}", err.context())
        });
        let outcome = match err.kind() {
            ErrorKind::Timeout => flightrec::outcome::EXPIRED,
            ErrorKind::Overloaded => flightrec::outcome::REJECTED,
            _ => flightrec::outcome::FAILED,
        };
        Routed {
            status,
            headers,
            body,
            outcome,
            worker: String::new(),
            scenario: 255,
            forward_us: 0,
            clock_sample: None,
        }
    }
}

/// Route and forward one generate request; always returns a definite
/// response. `deadline_ms` is the client's remaining budget at `started`.
///
/// The attempt loop is the availability story: a transport failure
/// evicts the worker from the ring ([`Membership::report_failure`]) and
/// retries the next owner, so a crashed worker degrades one request to
/// a fast failover instead of stranding it. Worker HTTP responses of
/// any status are final — they are the worker's answer, not a transport
/// failure — and pass through verbatim.
#[allow(clippy::too_many_arguments)] // the explicit seams are the point: sync-check injects each one
pub fn dispatch_generate(
    membership: &Membership,
    forwarder: &dyn Forwarder,
    metrics: &FleetMetrics,
    path: &str,
    body: &str,
    deadline_ms: Option<u64>,
    started: Instant,
    forward_timeout: Duration,
) -> Routed {
    let parsed: GenerateRequest = match serde_json::from_str(body) {
        Ok(p) => p,
        Err(e) => {
            return Routed::error(&GendtError::invalid(format!("bad request body: {e}")));
        }
    };
    let scenario = flightrec::scenario_code(&parsed.scenario);
    // The trace context entered by the connection handler (0 when the
    // caller runs outside one, e.g. the sync-check harness): stamped on
    // the forwarded hop so worker spans nest under the router's.
    let trace = gendt_trace::current_trace();

    let mut last_err: Option<GendtError> = None;
    for attempt in 0..MAX_ATTEMPTS {
        // Deadline minus elapsed routing time; expired means a 504
        // without burning a worker slot.
        let budget = match remaining_budget(deadline_ms, started, forward_timeout) {
            Ok(b) => b,
            Err(e) => {
                // sync: monotonic counter for /metrics only.
                metrics.deadline_expired.fetch_add(1, Ordering::Relaxed);
                let mut r = Routed::error(&e);
                r.scenario = scenario;
                return r;
            }
        };
        // Bounded-load consistent hashing: the key's owner unless it is
        // over the bounded-load limit (1.125× the fleet-mean in-flight), else the next
        // worker in the key's failover order. The grant holds one unit
        // of the target's load until this attempt resolves.
        let Some(grant) = membership.route_bounded(&parsed.model, &parsed.scenario) else {
            // sync: monotonic counter for /metrics only.
            metrics.no_owner.fetch_add(1, Ordering::Relaxed);
            let mut r = Routed::error(&GendtError::unavailable(format!(
                "no healthy worker owns ({}, {})",
                parsed.model, parsed.scenario
            )));
            r.outcome = flightrec::outcome::NO_OWNER;
            r.scenario = scenario;
            return r;
        };
        let (worker_id, addr) = (grant.id.clone(), grant.addr.clone());
        let mut headers: Vec<(String, String)> = Vec::new();
        if let Some(ms) = budget.propagate_ms {
            headers.push(("Deadline-Ms".to_string(), ms.to_string()));
        }
        if trace != 0 {
            headers.push((traceid::TRACE_HEADER.to_string(), traceid::format_id(trace)));
            headers.push((
                traceid::PARENT_HEADER.to_string(),
                traceid::format_id(traceid::mint()),
            ));
        }
        gendt_trace::span!("fleet_forward", "attempt" => attempt);
        let t0 = gendt_trace::now_ns();
        match forwarder.forward(&addr, "POST", path, &headers, Some(body), budget.timeout) {
            Ok(resp) => {
                let t1 = gendt_trace::now_ns();
                // sync: monotonic counter for /metrics only.
                metrics.forwarded.fetch_add(1, Ordering::Relaxed);
                let lane = if attempt > 0 {
                    RouteOutcome::Retry
                } else if grant.spilled {
                    RouteOutcome::Spill
                } else {
                    RouteOutcome::Owner
                };
                metrics.observe_routed_ms(lane, started.elapsed().as_secs_f64() * 1000.0);
                let outcome = match resp.status {
                    200 => match lane {
                        RouteOutcome::Owner => flightrec::outcome::OK,
                        RouteOutcome::Spill => flightrec::outcome::OK_SPILL,
                        RouteOutcome::Retry => flightrec::outcome::OK_RETRY,
                    },
                    429 => flightrec::outcome::REJECTED,
                    504 => flightrec::outcome::EXPIRED,
                    _ => flightrec::outcome::FAILED,
                };
                let clock_sample = resp
                    .header(traceid::WORKER_TIME_HEADER)
                    .and_then(|v| v.trim().parse::<u64>().ok())
                    .map(|worker_ns| (t0, t1, worker_ns));
                let mut out_headers = Vec::new();
                if let Some(ra) = resp.header("retry-after") {
                    out_headers.push(("Retry-After".to_string(), ra.to_string()));
                }
                // The legacy surface's deprecation contract survives the
                // hop: clients behind the router see the same Sunset
                // announcement a direct worker would send.
                if let Some(d) = resp.header("deprecation") {
                    out_headers.push(("Deprecation".to_string(), d.to_string()));
                }
                if let Some(s) = resp.header("sunset") {
                    out_headers.push(("Sunset".to_string(), s.to_string()));
                }
                return Routed {
                    status: resp.status,
                    headers: out_headers,
                    body: resp.body,
                    outcome,
                    worker: worker_id,
                    scenario,
                    forward_us: (t1.saturating_sub(t0) / 1000).min(u32::MAX as u64) as u32,
                    clock_sample,
                };
            }
            Err(e) => {
                // sync: monotonic counter for /metrics only.
                metrics.forward_errors.fetch_add(1, Ordering::Relaxed);
                membership.report_failure(&worker_id);
                last_err = Some(e.wrap(format!("worker {worker_id}")));
            }
        }
    }
    let err = last_err
        .unwrap_or_else(|| GendtError::unavailable("no forward attempt ran"))
        .wrap("fleet forwarding failed")
        .with_retryable(true);
    let mut r = Routed::error(&err);
    r.scenario = scenario;
    r
}

struct Budget {
    /// What to tell the worker (`Deadline-Ms`), if the client set one.
    propagate_ms: Option<u64>,
    /// Socket budget for this attempt.
    timeout: Duration,
}

fn remaining_budget(
    deadline_ms: Option<u64>,
    started: Instant,
    forward_timeout: Duration,
) -> Result<Budget, GendtError> {
    match deadline_ms {
        None => Ok(Budget {
            propagate_ms: None,
            timeout: forward_timeout,
        }),
        Some(total) => {
            let elapsed_ms = (started.elapsed().as_secs_f64() * 1000.0) as u64;
            if elapsed_ms >= total {
                return Err(GendtError::timeout(format!(
                    "deadline of {total} ms expired during routing"
                )));
            }
            let remaining = total - elapsed_ms;
            Ok(Budget {
                propagate_ms: Some(remaining),
                timeout: forward_timeout.min(Duration::from_millis(remaining)),
            })
        }
    }
}

/// Router-level fleet status (`GET /v1/fleet`).
#[derive(Debug, Serialize)]
struct FleetStatus {
    seed: u64,
    workers: usize,
    healthy: usize,
    models: Vec<String>,
    members: Vec<FleetWorker>,
}

#[derive(Debug, Serialize)]
struct FleetWorker {
    id: String,
    addr: String,
    healthy: bool,
    models: Vec<String>,
    versions: Vec<u64>,
    queue_depth: u64,
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        410 => "Gone",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Error",
    }
}

fn write_routed(stream: &mut TcpStream, routed: &Routed) {
    let extra: Vec<(&str, &str)> = routed
        .headers
        .iter()
        .map(|(n, v)| (n.as_str(), v.as_str()))
        .collect();
    let _ = write_json_extra(
        stream,
        routed.status,
        reason(routed.status),
        &extra,
        &routed.body,
    );
}

fn handle_conn(state: &Arc<RouterState>, mut stream: TcpStream) {
    let started = Instant::now();
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let req = match read_request(&mut stream) {
        Ok(r) => r,
        Err(e) => {
            write_routed(
                &mut stream,
                &Routed::error(&GendtError::invalid(format!("{e}"))),
            );
            return;
        }
    };
    // sync: monotonic counter for /metrics only.
    state.metrics.http_requests.fetch_add(1, Ordering::Relaxed);

    // Same surface split as the worker: `/v1/<route>` and `<route>`
    // dispatch identically; forwarding preserves the client's path so
    // the worker picks the response shape the client asked for.
    let route = match req.path.strip_prefix("/v1") {
        Some("") => "/".to_string(),
        Some(rest) if rest.starts_with('/') => rest.to_string(),
        _ => req.path.clone(),
    };

    match (req.method.as_str(), route.as_str()) {
        ("POST", "/generate") => {
            // Propagate the client's Gendt-Trace-Id or mint one: every
            // routed request has a trace context, and the chosen id is
            // echoed back so the client can find its spans later.
            let trace_id = req
                .header(traceid::TRACE_HEADER)
                .and_then(traceid::parse_id)
                .unwrap_or_else(traceid::mint);
            let _trace = gendt_trace::trace_scope(trace_id);
            if state.is_draining() {
                write_routed(
                    &mut stream,
                    &Routed::error(&GendtError::unavailable("router is draining")),
                );
                return;
            }
            let deadline_ms = match parse_deadline(req.header("deadline-ms")) {
                Ok(d) => d,
                Err(e) => {
                    write_routed(&mut stream, &Routed::error(&e));
                    return;
                }
            };
            let body = String::from_utf8_lossy(&req.body).into_owned();
            let mut routed = dispatch_generate(
                &state.membership,
                state.forwarder.as_ref(),
                state.metrics.as_ref(),
                &req.path,
                &body,
                deadline_ms,
                started,
                state.forward_timeout,
            );
            routed.headers.push((
                traceid::TRACE_HEADER.to_string(),
                traceid::format_id(trace_id),
            ));
            if let Some((t0, t1, worker_ns)) = routed.clock_sample {
                state.clock.update(&routed.worker, t0, t1, worker_ns);
            }
            let elapsed = started.elapsed();
            state.slo.record(
                gendt_trace::now_ns() / 1_000_000_000,
                routed.status < 500,
                elapsed.as_secs_f64() * 1000.0,
            );
            flightrec::record(flightrec::FlightRecord {
                trace: trace_id,
                scenario: routed.scenario,
                outcome: routed.outcome,
                worker: worker_index(&routed.worker),
                queue_us: 0,
                batch_us: 0,
                forward_us: routed.forward_us,
                total_us: elapsed.as_micros().min(u32::MAX as u128) as u32,
            });
            write_routed(&mut stream, &routed);
        }
        // Streams only exist on the v1 surface (the worker agrees); the
        // legacy path falls through to the 404 below.
        ("POST", "/stream") if req.path.starts_with("/v1") => {
            handle_stream(state, &mut stream, &req);
        }
        ("GET", "/models") => {
            let body = serde_json::to_string(&ModelsResponse {
                models: state.membership.model_names(),
            })
            .unwrap_or_else(|_| "{}".to_string());
            let _ = write_json(&mut stream, 200, "OK", &body);
        }
        ("GET", "/fleet") => {
            let members = state
                .membership
                .snapshot()
                .into_iter()
                .map(|w| FleetWorker {
                    id: w.id,
                    addr: w.addr,
                    healthy: w.healthy,
                    models: w.models,
                    versions: w.versions,
                    queue_depth: w.queue_depth,
                })
                .collect::<Vec<_>>();
            let body = serde_json::to_string(&FleetStatus {
                seed: state.membership.seed(),
                workers: members.len(),
                healthy: state.membership.healthy_count(),
                models: state.membership.model_names(),
                members,
            })
            .unwrap_or_else(|_| "{}".to_string());
            let _ = write_json(&mut stream, 200, "OK", &body);
        }
        ("GET", "/healthz") => {
            let healthy = !state.is_draining() && state.membership.healthy_count() > 0;
            if healthy {
                let _ = write_response_extra(&mut stream, 200, "OK", "text/plain", &[], b"ok\n");
            } else {
                let _ = write_response_extra(
                    &mut stream,
                    503,
                    "Service Unavailable",
                    "text/plain",
                    &[("Retry-After", "1")],
                    b"no healthy workers\n",
                );
            }
        }
        ("GET", "/metrics") => {
            let text = federated_metrics(state);
            let _ = write_response_extra(
                &mut stream,
                200,
                "OK",
                "text/plain; version=0.0.4",
                &[],
                text.as_bytes(),
            );
        }
        ("GET", "/debug/trace") => {
            // The router's own drain plus everything the assembler
            // needs to fetch and align the workers': their addresses
            // and the estimated clock offsets.
            let (all, dropped) = gendt_trace::snapshot_spans(usize::MAX);
            let mut spans: Vec<_> = all.into_iter().filter(|e| e.cat == "span").collect();
            if spans.len() > 256 {
                spans.drain(..spans.len() - 256);
            }
            let mut workers = String::from("{");
            for (i, w) in state.membership.snapshot().iter().enumerate() {
                if i > 0 {
                    workers.push(',');
                }
                workers.push_str(&format!("\"{}\":\"{}\"", w.id, w.addr));
            }
            workers.push('}');
            let body = format!(
                "{{\"enabled\":{},\"dropped\":{dropped},\"workers\":{workers},\"offsets\":{},\"spans\":{}}}",
                gendt_trace::trace_enabled(),
                state.clock.to_json(),
                gendt_trace::chrome_trace_json(&spans),
            );
            let _ = write_json(&mut stream, 200, "OK", &body);
        }
        ("GET", "/debug/flightrec") => {
            let _ = write_json(&mut stream, 200, "OK", &flightrec::dump_json());
        }
        ("POST", "/reload") => {
            let routed = broadcast_reload(state, &req.path);
            write_routed(&mut stream, &routed);
        }
        ("POST", "/shutdown") => {
            // sync: Release pairs with is_draining's Acquire load.
            state.draining.store(true, Ordering::Release);
            let _ = flightrec::dump_on_drain();
            let _ = write_response_extra(&mut stream, 200, "OK", "text/plain", &[], b"draining\n");
            let local = stream.local_addr().ok();
            let closer_state = state.clone();
            thread::spawn_named("fleet-drain-closer", move || {
                thread::sleep(DRAIN_GRACE);
                // sync: Release pairs with the accept loop's Acquire.
                closer_state.shutdown.store(true, Ordering::Release);
                if let Some(local) = local {
                    let _ = TcpStream::connect(local);
                }
            });
        }
        _ => write_routed(
            &mut stream,
            &Routed::error(&GendtError::not_found(format!(
                "no such route {:?}",
                req.path
            ))),
        ),
    }
}

/// `POST /v1/stream`: resolve the session's pinned owner and tunnel the
/// worker's chunked response to the client byte for byte.
///
/// Streaming cannot go through [`Forwarder`]/[`write_routed`] — both
/// reframe the exchange with a Content-Length, which would buffer the
/// whole stream and destroy the incremental delivery the route exists
/// for — so the router speaks raw TCP to the owner and relays. Affinity
/// comes from [`Membership::route_session`]: a session's carried
/// generator state lives on exactly one worker, so there is no
/// bounded-load spill and no failover retry here. When the pinned owner
/// is unreachable its state is gone with it; the router evicts the
/// worker and answers a typed retryable 503 naming the ring's new owner
/// (`Gendt-Session-Owner`) for the client to re-open against —
/// placement migrates, state cannot.
fn handle_stream(state: &Arc<RouterState>, stream: &mut TcpStream, req: &Request) {
    if state.is_draining() {
        write_routed(
            stream,
            &Routed::error(&GendtError::unavailable("router is draining")),
        );
        return;
    }
    let body = String::from_utf8_lossy(&req.body).into_owned();
    let parsed: StreamRequest = match serde_json::from_str(&body) {
        Ok(p) => p,
        Err(e) => {
            write_routed(
                stream,
                &Routed::error(&GendtError::invalid(format!("bad request body: {e}"))),
            );
            return;
        }
    };
    // A continuation routes by the session id that opened it; an open
    // mints the id here (sent down as `Gendt-Session-Id`, which the
    // worker honors) so the router, not the worker, decides placement —
    // the same id re-hashes to the same owner on every continuation.
    let (sid, model) = match (&parsed.session, &parsed.model) {
        (Some(sid), _) => (sid.clone(), None),
        (None, Some(model)) => (mint_session_id(state), Some(model.clone())),
        (None, None) => {
            write_routed(
                stream,
                &Routed::error(&GendtError::invalid("stream open: missing field \"model\"")),
            );
            return;
        }
    };
    let Some((worker_id, addr)) = state.membership.route_session(&sid, model.as_deref()) else {
        // sync: monotonic counter for /metrics only.
        state.metrics.no_owner.fetch_add(1, Ordering::Relaxed);
        write_routed(
            stream,
            &Routed::error(&GendtError::unavailable(format!(
                "no healthy worker can own stream session {sid:?}"
            ))),
        );
        return;
    };
    match tunnel_stream(stream, &addr, req, &body, &sid, state.forward_timeout) {
        Ok(()) => {
            // sync: monotonic counter for /metrics only.
            state.metrics.stream_tunnels.fetch_add(1, Ordering::Relaxed);
        }
        Err(e) => {
            // sync: monotonic counters for /metrics only.
            state.metrics.forward_errors.fetch_add(1, Ordering::Relaxed);
            state
                .metrics
                .stream_migrations
                .fetch_add(1, Ordering::Relaxed);
            state.membership.report_failure(&worker_id);
            let next = state.membership.route_session(&sid, model.as_deref());
            write_routed(
                stream,
                &migration_notice(&sid, &worker_id, next.as_ref(), &e),
            );
        }
    }
}

/// Router-minted stream session id (`r`-prefixed to distinguish from a
/// worker-minted `s`-prefixed id in logs).
fn mint_session_id(state: &Arc<RouterState>) -> String {
    // sync: uniqueness counter only; ordering is irrelevant.
    let n = state.session_seq.fetch_add(1, Ordering::Relaxed);
    format!("r{:x}-{n:x}", gendt_trace::now_ns())
}

/// One raw streaming exchange with the session owner at `addr`: write
/// the rebuilt request, then relay response bytes to the client until
/// the worker closes. `Err` is returned only while the client socket is
/// still pristine (connect/write failed, or the worker died before
/// producing a byte), so the caller can still answer a typed migration
/// notice; once bytes have flowed the stream is the worker's to finish
/// and a mid-stream failure truncates it (the client sees a chunked
/// body with no terminating chunk and no trailer line).
fn tunnel_stream(
    client: &mut TcpStream,
    addr: &str,
    req: &Request,
    body: &str,
    sid: &str,
    timeout: Duration,
) -> Result<(), GendtError> {
    let sock: SocketAddr = addr
        .parse()
        .map_err(|e| GendtError::config(format!("bad worker addr {addr:?}: {e}")))?;
    let mut worker = TcpStream::connect_timeout(&sock, timeout)
        .map_err(|e| GendtError::unavailable(format!("connecting to worker {addr}: {e}")))?;
    worker
        .set_read_timeout(Some(timeout))
        .and_then(|()| worker.set_write_timeout(Some(timeout)))
        .map_err(|e| GendtError::unavailable(format!("configuring socket to {addr}: {e}")))?;

    let mut head = format!(
        "POST {} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n{SESSION_HEADER}: {sid}\r\n",
        req.path,
        body.len(),
    );
    for name in ["Deadline-Ms", traceid::TRACE_HEADER] {
        if let Some(v) = req.header(name) {
            head.push_str(&format!("{name}: {v}\r\n"));
        }
    }
    head.push_str("\r\n");
    worker
        .write_all(head.as_bytes())
        .and_then(|()| worker.write_all(body.as_bytes()))
        .and_then(|()| worker.flush())
        .map_err(|e| GendtError::unavailable(format!("writing to worker {addr}: {e}")))?;

    let mut buf = [0u8; 16 * 1024];
    let mut relayed = false;
    loop {
        match worker.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                if client
                    .write_all(&buf[..n])
                    .and_then(|()| client.flush())
                    .is_err()
                {
                    break; // client went away; nothing left to answer
                }
                relayed = true;
            }
            Err(e) if !relayed => {
                return Err(GendtError::unavailable(format!(
                    "reading from worker {addr}: {e}"
                )));
            }
            Err(_) => break,
        }
    }
    if !relayed {
        return Err(GendtError::unavailable(format!(
            "worker {addr} closed the stream before answering"
        )));
    }
    Ok(())
}

/// The typed answer when a pinned session owner is unreachable: a
/// retryable 503 naming the ring's new owner in both the message and
/// the `Gendt-Session-Owner` header. The carried state died with the
/// old owner, so the client re-opens there rather than continuing.
/// With no healthy worker left the notice is final (not retryable).
fn migration_notice(
    sid: &str,
    old: &str,
    next: Option<&(String, String)>,
    cause: &GendtError,
) -> Routed {
    let (msg, retryable) = match next {
        Some((id, _)) => (
            format!("stream session {sid:?}: owner {old} is gone; re-open against worker {id}"),
            true,
        ),
        None => (
            format!("stream session {sid:?}: owner {old} is gone and no healthy worker remains"),
            false,
        ),
    };
    let err = cause.clone().wrap(msg).with_retryable(retryable);
    let mut r = Routed::error(&err);
    r.worker = old.to_string();
    if let Some((id, _)) = next {
        r.headers
            .push((SESSION_OWNER_HEADER.to_string(), id.clone()));
    }
    r
}

/// The flight-recorder worker index of a `wN` worker id
/// (`u16::MAX` when unknown or the request never reached a worker).
fn worker_index(id: &str) -> u16 {
    id.strip_prefix('w')
        .and_then(|n| n.parse().ok())
        .unwrap_or(u16::MAX)
}

/// Build the federated `/metrics` exposition: the router's own series,
/// the SLO gauges, then every live worker's scrape — merged (counters
/// summed, histogram buckets step-merged) and additionally re-exported
/// per worker under a `worker=` label.
fn federated_metrics(state: &Arc<RouterState>) -> String {
    let snapshot = state.membership.snapshot();
    let healthy = snapshot.iter().filter(|w| w.healthy).count();
    let per_worker: Vec<(String, u64)> = snapshot
        .iter()
        .map(|w| (w.id.clone(), w.inflight))
        .collect();
    let mut text = state.metrics.render(snapshot.len(), healthy, &per_worker);
    text.push_str(&state.slo.render(gendt_trace::now_ns() / 1_000_000_000));
    let mut scrapes: Vec<(String, String)> = Vec::new();
    for w in snapshot.iter().filter(|w| w.healthy) {
        match state.forwarder.forward(
            &w.addr,
            "GET",
            "/v1/metrics",
            &[],
            None,
            state.forward_timeout.min(SCRAPE_TIMEOUT),
        ) {
            Ok(resp) if resp.status == 200 => scrapes.push((w.id.clone(), resp.body)),
            // An unscrapable worker degrades the federated view; the
            // health poller will sort out its ring membership.
            _ => {}
        }
    }
    if !scrapes.is_empty() {
        let texts: Vec<&str> = scrapes.iter().map(|(_, t)| t.as_str()).collect();
        text.push_str("# Federated worker series: counters summed, buckets merged.\n");
        text.push_str(&promtext::merge(&texts));
        text.push_str("# Per-worker series.\n");
        for (id, t) in &scrapes {
            text.push_str(&promtext::relabel(t, "worker", id));
        }
    }
    text
}

fn parse_deadline(raw: Option<&str>) -> Result<Option<u64>, GendtError> {
    match raw {
        None => Ok(None),
        Some(raw) => {
            let ms: u64 = raw.parse().map_err(|_| {
                GendtError::invalid(format!(
                    "Deadline-Ms: {raw:?} is not a non-negative integer"
                ))
            })?;
            if ms == 0 {
                return Err(GendtError::invalid("Deadline-Ms must be > 0"));
            }
            Ok(Some(ms))
        }
    }
}

/// Fan `/reload` out to every healthy worker; succeed only if all did.
fn broadcast_reload(state: &Arc<RouterState>, path: &str) -> Routed {
    let targets = state.membership.healthy_addrs();
    if targets.is_empty() {
        return Routed::error(&GendtError::unavailable("no healthy workers to reload"));
    }
    for (id, addr) in &targets {
        match state
            .forwarder
            .forward(addr, "POST", path, &[], None, state.forward_timeout)
        {
            Ok(resp) if resp.status == 200 => {}
            Ok(resp) => {
                return Routed::plain(resp.status, Vec::new(), resp.body);
            }
            Err(e) => {
                state.membership.report_failure(id);
                return Routed::error(&e.wrap(format!("reloading worker {id}")));
            }
        }
    }
    let body = serde_json::to_string(&ModelsResponse {
        models: state.membership.model_names(),
    })
    .unwrap_or_else(|_| "{}".to_string());
    Routed::plain(200, Vec::new(), body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gendt_serve::http::HttpResponse;

    struct OkForwarder;
    impl Forwarder for OkForwarder {
        fn forward(
            &self,
            _addr: &str,
            _method: &str,
            _path: &str,
            headers: &[(String, String)],
            _body: Option<&str>,
            _timeout: Duration,
        ) -> Result<HttpResponse, GendtError> {
            let deadline = headers
                .iter()
                .find(|(n, _)| n == "Deadline-Ms")
                .map(|(_, v)| v.clone())
                .unwrap_or_default();
            Ok(HttpResponse {
                status: 200,
                headers: Vec::new(),
                body: format!("{{\"deadline\":\"{deadline}\"}}"),
            })
        }
    }

    struct DeadForwarder;
    impl Forwarder for DeadForwarder {
        fn forward(
            &self,
            _addr: &str,
            _method: &str,
            _path: &str,
            _headers: &[(String, String)],
            _body: Option<&str>,
            _timeout: Duration,
        ) -> Result<HttpResponse, GendtError> {
            Err(GendtError::unavailable("stub: connection refused"))
        }
    }

    fn body() -> String {
        "{\"model\":\"demo_a\",\"scenario\":\"walk\",\"duration_s\":10.0,\"start_x\":0.0,\
         \"start_y\":0.0,\"traj_seed\":1,\"sample_seed\":2}"
            .to_string()
    }

    fn fresh_membership() -> (Arc<Membership>, Arc<FleetMetrics>) {
        let metrics = Arc::new(FleetMetrics::new());
        let m = Arc::new(Membership::new(5, metrics.clone()));
        m.register("w0", "127.0.0.1:1000");
        m.register("w1", "127.0.0.1:1001");
        (m, metrics)
    }

    #[test]
    fn bad_body_is_a_typed_400() {
        let (m, metrics) = fresh_membership();
        let r = dispatch_generate(
            &m,
            &OkForwarder,
            &metrics,
            "/v1/generate",
            "not json",
            None,
            Instant::now(),
            Duration::from_secs(1),
        );
        assert_eq!(r.status, 400);
        assert!(r.body.contains("invalid_request"), "{}", r.body);
    }

    #[test]
    fn healthy_worker_response_passes_through() {
        let (m, metrics) = fresh_membership();
        let r = dispatch_generate(
            &m,
            &OkForwarder,
            &metrics,
            "/v1/generate",
            &body(),
            None,
            Instant::now(),
            Duration::from_secs(1),
        );
        assert_eq!(r.status, 200);
        // No client deadline: none propagated.
        assert!(r.body.contains("\"deadline\":\"\""), "{}", r.body);
    }

    #[test]
    fn deadline_propagates_minus_elapsed() {
        let (m, metrics) = fresh_membership();
        let r = dispatch_generate(
            &m,
            &OkForwarder,
            &metrics,
            "/v1/generate",
            &body(),
            Some(5_000),
            Instant::now(),
            Duration::from_secs(30),
        );
        assert_eq!(r.status, 200);
        // Propagated value is ≤ the original and > 0.
        let ms: u64 = r
            .body
            .trim_start_matches("{\"deadline\":\"")
            .trim_end_matches("\"}")
            .parse()
            .expect("deadline in stub body");
        assert!(ms > 0 && ms <= 5_000, "propagated {ms}");
    }

    #[test]
    fn expired_deadline_is_a_504_without_forwarding() {
        let (m, metrics) = fresh_membership();
        let started = Instant::now();
        thread::sleep(Duration::from_millis(15));
        let r = dispatch_generate(
            &m,
            &OkForwarder,
            &metrics,
            "/v1/generate",
            &body(),
            Some(5),
            started,
            Duration::from_secs(1),
        );
        assert_eq!(r.status, 504);
        assert!(r.body.contains("timeout"), "{}", r.body);
        assert_eq!(metrics.forwarded.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn dead_pool_degrades_to_typed_retryable_503() {
        let (m, metrics) = fresh_membership();
        let r = dispatch_generate(
            &m,
            &DeadForwarder,
            &metrics,
            "/v1/generate",
            &body(),
            None,
            Instant::now(),
            Duration::from_secs(1),
        );
        assert_eq!(r.status, 503);
        assert!(r.body.contains("\"retryable\":true"), "{}", r.body);
        assert!(
            r.headers
                .iter()
                .any(|(n, v)| n == "Retry-After" && v == "1"),
            "{:?}",
            r.headers
        );
        // Both workers were evicted by the failed attempts.
        assert_eq!(m.healthy_count(), 0);
        assert_eq!(metrics.forward_errors.load(Ordering::Relaxed), 2);
    }

    /// Echoes the Gendt-Trace-Id request header into the body and a
    /// fixed worker clock reading into the response headers.
    struct TraceEchoForwarder;
    impl Forwarder for TraceEchoForwarder {
        fn forward(
            &self,
            _addr: &str,
            _method: &str,
            _path: &str,
            headers: &[(String, String)],
            _body: Option<&str>,
            _timeout: Duration,
        ) -> Result<HttpResponse, GendtError> {
            let trace = headers
                .iter()
                .find(|(n, _)| n == traceid::TRACE_HEADER)
                .map(|(_, v)| v.clone())
                .unwrap_or_default();
            Ok(HttpResponse {
                status: 200,
                headers: vec![(traceid::WORKER_TIME_HEADER.to_string(), "12345".to_string())],
                body: format!("{{\"trace\":\"{trace}\"}}"),
            })
        }
    }

    #[test]
    fn forward_carries_the_trace_context_and_clock_sample() {
        let (m, metrics) = fresh_membership();
        let _scope = gendt_trace::trace_scope(0xBEEF);
        let r = dispatch_generate(
            &m,
            &TraceEchoForwarder,
            &metrics,
            "/v1/generate",
            &body(),
            None,
            Instant::now(),
            Duration::from_secs(1),
        );
        assert_eq!(r.status, 200);
        assert!(
            r.body.contains("\"trace\":\"000000000000beef\""),
            "worker must see the router's trace id: {}",
            r.body
        );
        assert_eq!(r.outcome, flightrec::outcome::OK);
        assert!(r.worker == "w0" || r.worker == "w1");
        assert_eq!(r.scenario, flightrec::scenario_code("walk"));
        let (t0, t1, worker_ns) = r.clock_sample.expect("clock sample from echoed header");
        assert!(t1 >= t0);
        assert_eq!(worker_ns, 12345);
    }

    #[test]
    fn untraced_dispatch_sends_no_trace_header() {
        let (m, metrics) = fresh_membership();
        let r = dispatch_generate(
            &m,
            &TraceEchoForwarder,
            &metrics,
            "/v1/generate",
            &body(),
            None,
            Instant::now(),
            Duration::from_secs(1),
        );
        assert_eq!(r.status, 200);
        assert!(
            r.body.contains("\"trace\":\"\""),
            "no trace scope → no header: {}",
            r.body
        );
    }

    #[test]
    fn dead_pool_answer_reports_a_failed_outcome() {
        let (m, metrics) = fresh_membership();
        let r = dispatch_generate(
            &m,
            &DeadForwarder,
            &metrics,
            "/v1/generate",
            &body(),
            None,
            Instant::now(),
            Duration::from_secs(1),
        );
        assert_eq!(r.status, 503);
        assert_eq!(r.outcome, flightrec::outcome::FAILED);
        assert_eq!(r.scenario, flightrec::scenario_code("walk"));
    }

    #[test]
    fn empty_ring_reports_no_owner_outcome() {
        let metrics = Arc::new(FleetMetrics::new());
        let m = Membership::new(5, metrics.clone());
        let r = dispatch_generate(
            &m,
            &OkForwarder,
            &metrics,
            "/v1/generate",
            &body(),
            None,
            Instant::now(),
            Duration::from_secs(1),
        );
        assert_eq!(r.outcome, flightrec::outcome::NO_OWNER);
    }

    /// Answers like a worker's legacy surface: 200 plus the
    /// deprecation/sunset announcement headers.
    struct SunsetForwarder;
    impl Forwarder for SunsetForwarder {
        fn forward(
            &self,
            _addr: &str,
            _method: &str,
            _path: &str,
            _headers: &[(String, String)],
            _body: Option<&str>,
            _timeout: Duration,
        ) -> Result<HttpResponse, GendtError> {
            Ok(HttpResponse {
                status: 200,
                headers: vec![
                    ("Deprecation".to_string(), "true".to_string()),
                    (
                        "Sunset".to_string(),
                        "Tue, 01 Jun 2027 00:00:00 GMT".to_string(),
                    ),
                ],
                body: "{}".to_string(),
            })
        }
    }

    #[test]
    fn legacy_sunset_headers_pass_through_the_router() {
        let (m, metrics) = fresh_membership();
        let r = dispatch_generate(
            &m,
            &SunsetForwarder,
            &metrics,
            "/generate",
            &body(),
            None,
            Instant::now(),
            Duration::from_secs(1),
        );
        assert_eq!(r.status, 200);
        assert!(
            r.headers
                .iter()
                .any(|(n, v)| n == "Sunset" && v.contains("2027")),
            "worker Sunset must survive the hop: {:?}",
            r.headers
        );
        assert!(
            r.headers
                .iter()
                .any(|(n, v)| n == "Deprecation" && v == "true"),
            "{:?}",
            r.headers
        );
    }

    #[test]
    fn migration_notice_names_the_new_owner() {
        let cause = GendtError::unavailable("connecting to worker 127.0.0.1:1000: refused");
        let next = ("w1".to_string(), "127.0.0.1:1001".to_string());
        let r = migration_notice("s-1", "w0", Some(&next), &cause);
        assert_eq!(r.status, 503);
        assert!(r.body.contains("\"retryable\":true"), "{}", r.body);
        assert!(r.body.contains("re-open against worker w1"), "{}", r.body);
        assert!(
            r.headers
                .iter()
                .any(|(n, v)| n == SESSION_OWNER_HEADER && v == "w1"),
            "{:?}",
            r.headers
        );
        assert!(
            r.headers.iter().any(|(n, _)| n == "Retry-After"),
            "migration is retryable, so it must carry Retry-After: {:?}",
            r.headers
        );

        // Last worker gone: nothing to retry against.
        let r = migration_notice("s-1", "w0", None, &cause);
        assert_eq!(r.status, 503);
        assert!(r.body.contains("\"retryable\":false"), "{}", r.body);
        assert!(r.headers.iter().all(|(n, _)| n != SESSION_OWNER_HEADER));
    }

    #[test]
    fn empty_ring_is_a_typed_503() {
        let metrics = Arc::new(FleetMetrics::new());
        let m = Membership::new(5, metrics.clone());
        let r = dispatch_generate(
            &m,
            &OkForwarder,
            &metrics,
            "/v1/generate",
            &body(),
            None,
            Instant::now(),
            Duration::from_secs(1),
        );
        assert_eq!(r.status, 503);
        assert!(r.body.contains("unavailable"), "{}", r.body);
        assert_eq!(metrics.no_owner.load(Ordering::Relaxed), 1);
    }
}
