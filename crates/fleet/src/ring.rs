//! Seeded consistent-hash ring over worker ids.
//!
//! Each member contributes `vnodes_per` virtual nodes whose positions
//! are a pure function of `(seed, member id, vnode index)`, so the same
//! `GENDT_FLEET_SEED` always produces the same placement — a fleet run
//! is replayable key-for-key. A request key `(model, scenario)` routes
//! to the first virtual node at or clockwise-after its hash; when a
//! member joins or is health-evicted, only the arcs adjacent to its
//! virtual nodes change owner, so ~1/N of keys move (the property tests
//! in `tests/ring_props.rs` pin both balance and disruption).

use std::collections::BTreeSet;

/// Virtual nodes per member: enough that 8 members balance within the
/// ±15% the property tests demand (the per-member share deviation
/// shrinks like 1/√vnodes; 96 left ~16% outliers), small enough that
/// rebuilds stay trivially cheap (8×256 entries sort in microseconds).
pub const DEFAULT_VNODES: usize = 256;

/// SplitMix64 finalizer — the avalanche step that turns structured
/// input (sequential vnode indices, similar ids) into uniform ring
/// positions.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// FNV-1a over a string.
fn fnv1a(s: &str) -> u64 {
    s.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3)
    })
}

/// An immutable consistent-hash ring. Rebuilt wholesale on membership
/// change and swapped behind the membership lock — readers never see a
/// half-built ring.
#[derive(Clone, Debug)]
pub struct Ring {
    seed: u64,
    /// `(position, member index)` sorted by position.
    vnodes: Vec<(u64, u32)>,
    members: Vec<String>,
}

impl Ring {
    /// Build a ring over `members` (deduplicated, order-insensitive)
    /// with `vnodes_per` virtual nodes each.
    pub fn build(seed: u64, members: &[String], vnodes_per: usize) -> Ring {
        let members: Vec<String> = members
            .iter()
            .collect::<BTreeSet<_>>()
            .into_iter()
            .cloned()
            .collect();
        let vnodes_per = vnodes_per.max(1);
        let mut vnodes = Vec::with_capacity(members.len() * vnodes_per);
        for (idx, id) in members.iter().enumerate() {
            let base = mix64(seed ^ fnv1a(id));
            for v in 0..vnodes_per {
                let pos = mix64(base ^ ((v as u64) << 32 | v as u64));
                vnodes.push((pos, idx as u32));
            }
        }
        // Position ties (vanishingly rare) break by member index so the
        // ring is a pure function of its inputs.
        vnodes.sort_unstable();
        Ring {
            seed,
            vnodes,
            members,
        }
    }

    /// The routing hash of a request key under this ring's seed.
    pub fn key_hash(&self, model: &str, scenario: &str) -> u64 {
        key_hash(self.seed, model, scenario)
    }

    /// Member ids in the ring, sorted.
    pub fn members(&self) -> &[String] {
        &self.members
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the ring has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The member owning `key`: the first virtual node at or after the
    /// key position, wrapping around. `None` on an empty ring.
    pub fn owner(&self, key: u64) -> Option<&str> {
        self.walk(key).next()
    }

    /// Walk distinct members in ring order starting at `key`'s owner —
    /// the failover order when the primary cannot take the request.
    pub fn walk(&self, key: u64) -> RingWalk<'_> {
        let start = self
            .vnodes
            .partition_point(|&(pos, _)| pos < key)
            .checked_rem(self.vnodes.len())
            .unwrap_or(0);
        RingWalk {
            ring: self,
            at: start,
            steps: 0,
            seen: vec![false; self.members.len()],
        }
    }
}

/// Iterator over distinct members in ring order from a key position.
pub struct RingWalk<'a> {
    ring: &'a Ring,
    at: usize,
    steps: usize,
    seen: Vec<bool>,
}

impl<'a> Iterator for RingWalk<'a> {
    type Item = &'a str;

    fn next(&mut self) -> Option<&'a str> {
        while self.steps < self.ring.vnodes.len() {
            let (_, idx) = self.ring.vnodes[self.at];
            self.at = (self.at + 1) % self.ring.vnodes.len();
            self.steps += 1;
            let idx = idx as usize;
            if !self.seen[idx] {
                self.seen[idx] = true;
                return Some(&self.ring.members[idx]);
            }
        }
        None
    }
}

/// The routing hash of `(model, scenario)` under `seed`. Exposed as a
/// free function so callers can compute a key without holding a ring.
pub fn key_hash(seed: u64, model: &str, scenario: &str) -> u64 {
    // Length-prefix-free mixing: hash the two fields separately so
    // ("ab", "c") and ("a", "bc") cannot collide structurally.
    mix64(seed ^ fnv1a(model).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ fnv1a(scenario).rotate_left(17))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("w{i}")).collect()
    }

    #[test]
    fn empty_ring_routes_nowhere() {
        let ring = Ring::build(1, &[], DEFAULT_VNODES);
        assert!(ring.is_empty());
        assert_eq!(ring.owner(42), None);
    }

    #[test]
    fn single_member_owns_everything() {
        let ring = Ring::build(1, &ids(1), DEFAULT_VNODES);
        for k in 0..64u64 {
            assert_eq!(ring.owner(mix64(k)), Some("w0"));
        }
    }

    #[test]
    fn placement_is_seed_deterministic() {
        let a = Ring::build(7, &ids(4), DEFAULT_VNODES);
        let b = Ring::build(7, &ids(4), DEFAULT_VNODES);
        let c = Ring::build(8, &ids(4), DEFAULT_VNODES);
        let keys: Vec<u64> = (0..256).map(mix64).collect();
        let route = |r: &Ring| -> Vec<String> {
            keys.iter()
                .map(|&k| r.owner(k).unwrap_or("").to_string())
                .collect()
        };
        assert_eq!(route(&a), route(&b), "same seed must place identically");
        assert_ne!(route(&a), route(&c), "seed must matter");
    }

    #[test]
    fn member_order_does_not_matter() {
        let fwd = Ring::build(3, &ids(5), DEFAULT_VNODES);
        let mut rev = ids(5);
        rev.reverse();
        let rev = Ring::build(3, &rev, DEFAULT_VNODES);
        for k in (0..512u64).map(mix64) {
            assert_eq!(fwd.owner(k), rev.owner(k));
        }
    }

    #[test]
    fn walk_yields_every_member_once() {
        let ring = Ring::build(5, &ids(6), DEFAULT_VNODES);
        let seen: Vec<&str> = ring.walk(12345).collect();
        assert_eq!(seen.len(), 6);
        let set: BTreeSet<&str> = seen.iter().copied().collect();
        assert_eq!(set.len(), 6, "walk must yield distinct members");
        // The walk starts at the owner.
        assert_eq!(ring.owner(12345), Some(seen[0]));
    }

    #[test]
    fn key_hash_separates_fields() {
        assert_ne!(key_hash(1, "ab", "c"), key_hash(1, "a", "bc"));
        assert_ne!(key_hash(1, "m", "walk"), key_hash(1, "m", "bus"));
        assert_ne!(key_hash(1, "m", "walk"), key_hash(2, "m", "walk"));
        assert_eq!(key_hash(9, "m", "walk"), key_hash(9, "m", "walk"));
    }
}
