//! Worker-pool supervision: spawn N worker processes, wait for each to
//! report its bound address, and drain them gracefully on shutdown.
//!
//! Workers are the `gendt-fleet` binary re-exec'd with the
//! [`WORKER_ENV`] variable set to a [`WorkerSpec`] JSON — no separate
//! worker binary, no PATH lookup, and `cargo test` can spawn the pool
//! from any build directory. A worker runs [`gendt_serve::serve`] on
//! `127.0.0.1:0`, prints `GENDT_FLEET_WORKER_READY <addr>` on stdout,
//! and serves until `POST /shutdown` (the worker's own two-phase drain:
//! healthz flips 503, new work sheds, in-flight flushes).

use crate::forward::Forwarder;
use gendt_faults::GendtError;
use gendt_serve::{serve, ServerCfg};
use gendt_sync::mpsc;
use gendt_sync::thread;
use serde::{Deserialize, Serialize};
use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

/// Env var carrying the [`WorkerSpec`] JSON; its presence switches the
/// `gendt-fleet` binary into worker mode.
pub const WORKER_ENV: &str = "GENDT_FLEET_WORKER";

/// Stdout line prefix a worker prints once its listener is bound.
pub const READY_PREFIX: &str = "GENDT_FLEET_WORKER_READY ";

/// How long [`spawn_pool`] waits for one worker's ready line.
const SPAWN_TIMEOUT: Duration = Duration::from_secs(30);

/// How long [`drain_pool`] waits for a draining worker to exit.
const DRAIN_TIMEOUT: Duration = Duration::from_secs(8);

/// Everything a worker process needs to stand up its server.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WorkerSpec {
    /// Directory of model checkpoints.
    pub models_dir: String,
    /// Seed of the synthetic world served against.
    pub world_seed: u64,
    /// Most requests coalesced into one forward pass.
    pub max_batch: usize,
    /// How long a batch waits to fill, milliseconds.
    pub max_wait_ms: u64,
    /// Scheduler queue capacity.
    pub queue_cap: usize,
    /// Context cache capacity (entries).
    pub cache_cap: usize,
    /// Scheduler worker threads inside the process.
    pub threads: usize,
    /// Default per-request deadline, milliseconds (`0` = none).
    pub default_deadline_ms: u64,
    /// This worker's index in the pool (`w<N>`); declared to the
    /// flight recorder so records attribute without plumbing.
    pub worker_index: usize,
}

impl WorkerSpec {
    /// A spec matching the single-node quickstart defaults.
    pub fn new(models_dir: &str) -> WorkerSpec {
        WorkerSpec {
            models_dir: models_dir.to_string(),
            world_seed: 1,
            max_batch: 8,
            max_wait_ms: 4,
            queue_cap: 256,
            cache_cap: 128,
            threads: 1,
            default_deadline_ms: 0,
            worker_index: 0,
        }
    }

    fn server_cfg(&self) -> ServerCfg {
        let mut cfg = ServerCfg::new(PathBuf::from(&self.models_dir));
        cfg.addr = "127.0.0.1:0".to_string();
        cfg.world_seed = self.world_seed;
        cfg.sched.max_batch = self.max_batch;
        cfg.sched.max_wait_ms = self.max_wait_ms;
        cfg.sched.queue_cap = self.queue_cap;
        cfg.cache_cap = self.cache_cap;
        cfg.workers = self.threads;
        cfg.default_deadline_ms = self.default_deadline_ms;
        cfg
    }
}

/// One spawned worker process.
#[derive(Debug)]
pub struct WorkerProc {
    /// Stable worker id (`w0`, `w1`, ...) — the ring member id.
    pub id: String,
    /// The address the worker bound (`127.0.0.1:<port>`).
    pub addr: String,
    child: Child,
}

impl WorkerProc {
    /// Kill the worker immediately (fault-injection in smoke tests).
    pub fn kill(&mut self) -> Result<(), GendtError> {
        self.child
            .kill()
            .map_err(|e| GendtError::from(e).wrap(format!("killing worker {}", self.id)))?;
        let _ = self.child.wait();
        Ok(())
    }

    /// Whether the process has exited.
    pub fn exited(&mut self) -> bool {
        matches!(self.child.try_wait(), Ok(Some(_)))
    }
}

/// If this process was launched in worker mode, run the worker server
/// to completion and return `Some(exit_code)`; otherwise `None`.
/// Binaries call this first thing in `main`.
pub fn maybe_run_worker() -> Option<u8> {
    let spec_json = std::env::var(WORKER_ENV).ok()?;
    let code = match run_worker(&spec_json) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("gendt-fleet worker: {e}");
            e.exit_code()
        }
    };
    Some(code)
}

fn run_worker(spec_json: &str) -> Result<(), GendtError> {
    let spec: WorkerSpec = serde_json::from_str(spec_json)
        .map_err(|e| GendtError::config(format!("bad {WORKER_ENV} spec: {e}")))?;
    gendt_obs::flightrec::set_self_worker(spec.worker_index);
    let handle = serve(spec.server_cfg())?;
    // The ready line is the spawn handshake; everything else the worker
    // prints goes to the supervisor's drainer thread.
    println!("{READY_PREFIX}{}", handle.addr);
    handle.join();
    Ok(())
}

fn spawn_one(
    index: usize,
    spec: &WorkerSpec,
    extra_env: &[(String, String)],
) -> Result<WorkerProc, GendtError> {
    let exe = std::env::current_exe()
        .map_err(|e| GendtError::from(e).wrap("cannot locate current executable"))?;
    let mut spec = spec.clone();
    spec.worker_index = index;
    let spec_json = serde_json::to_string(&spec)
        .map_err(|e| GendtError::internal(format!("serializing WorkerSpec: {e}")))?;
    let id = format!("w{index}");
    let mut cmd = Command::new(exe);
    cmd.env(WORKER_ENV, spec_json)
        // Workers must not recurse into fleet mode or inherit the
        // router's fault schedule unless the caller re-injects one.
        .env_remove("GENDT_FAULTS")
        .env("GENDT_THREADS", "1")
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit());
    for (k, v) in extra_env {
        cmd.env(k, v);
    }
    let mut child = cmd
        .spawn()
        .map_err(|e| GendtError::from(e).wrap(format!("spawning worker {id}")))?;

    let stdout = child
        .stdout
        .take()
        .ok_or_else(|| GendtError::internal(format!("worker {id}: no stdout pipe")))?;
    let mut reader = BufReader::new(stdout);

    // Wait for the ready line in a helper thread so a hung worker
    // cannot hang the supervisor past SPAWN_TIMEOUT.
    let (tx, rx) = mpsc::channel::<Result<String, GendtError>>();
    let reader_id = id.clone();
    let _drainer = thread::spawn_named(&format!("fleet-stdout-{id}"), move || {
        let mut line = String::new();
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) => {
                    let _ = tx.send(Err(GendtError::unavailable(format!(
                        "worker {reader_id} exited before ready"
                    ))));
                    return;
                }
                Ok(_) => {
                    if let Some(addr) = line.trim().strip_prefix(READY_PREFIX) {
                        let _ = tx.send(Ok(addr.to_string()));
                        break;
                    }
                }
                Err(e) => {
                    let _ = tx.send(Err(
                        GendtError::from(e).wrap(format!("worker {reader_id} stdout"))
                    ));
                    return;
                }
            }
        }
        // Keep draining so the worker never blocks on a full pipe.
        let mut sink = String::new();
        loop {
            sink.clear();
            match reader.read_line(&mut sink) {
                Ok(0) | Err(_) => return,
                Ok(_) => {}
            }
        }
    });

    match rx.recv_timeout(SPAWN_TIMEOUT) {
        Ok(Ok(addr)) => Ok(WorkerProc { id, addr, child }),
        Ok(Err(err)) => {
            let _ = child.kill();
            let _ = child.wait();
            Err(err)
        }
        Err(_) => {
            let _ = child.kill();
            let _ = child.wait();
            Err(GendtError::timeout(format!(
                "worker {id} did not report ready within {SPAWN_TIMEOUT:?}"
            )))
        }
    }
}

/// Spawn `n` workers from `spec`, each with `extra_env` applied on top
/// of the worker baseline. Fails fast: on any spawn error, workers
/// already started are killed.
pub fn spawn_pool(
    n: usize,
    spec: &WorkerSpec,
    extra_env: &[(String, String)],
) -> Result<Vec<WorkerProc>, GendtError> {
    if n == 0 {
        return Err(GendtError::config("spawn_pool: need at least 1 worker"));
    }
    let mut pool: Vec<WorkerProc> = Vec::with_capacity(n);
    for i in 0..n {
        match spawn_one(i, spec, extra_env) {
            Ok(w) => pool.push(w),
            Err(e) => {
                for mut w in pool {
                    let _ = w.kill();
                }
                return Err(e.wrap(format!("spawning pool of {n}")));
            }
        }
    }
    Ok(pool)
}

/// Drain the pool gracefully: `POST /shutdown` to every worker (its
/// two-phase drain), wait for exits, kill stragglers. Returns how many
/// exited on their own.
pub fn drain_pool(pool: &mut Vec<WorkerProc>, forwarder: &dyn Forwarder) -> usize {
    for w in pool.iter() {
        let _ = forwarder.forward(
            &w.addr,
            "POST",
            "/v1/shutdown",
            &[],
            None,
            Duration::from_millis(1500),
        );
    }
    let deadline = gendt_sync::time::Instant::now() + DRAIN_TIMEOUT;
    let mut clean = 0usize;
    for w in pool.iter_mut() {
        loop {
            match w.child.try_wait() {
                Ok(Some(_)) => {
                    clean += 1;
                    break;
                }
                Ok(None) if gendt_sync::time::Instant::now() < deadline => {
                    thread::sleep(Duration::from_millis(20));
                }
                _ => {
                    let _ = w.child.kill();
                    let _ = w.child.wait();
                    break;
                }
            }
        }
    }
    pool.clear();
    clean
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_spec_round_trips_through_json() {
        let spec = WorkerSpec::new("/tmp/models");
        let json = serde_json::to_string(&spec).expect("serialize");
        let back: WorkerSpec = serde_json::from_str(&json).expect("parse");
        assert_eq!(back.models_dir, "/tmp/models");
        assert_eq!(back.max_batch, 8);
        assert_eq!(back.threads, 1);
    }

    #[test]
    fn bad_spec_json_is_config_error() {
        let err = run_worker("{not json").expect_err("bad spec");
        assert_eq!(err.kind(), gendt_faults::ErrorKind::Config);
    }

    #[test]
    fn spawn_pool_rejects_zero() {
        let err = spawn_pool(0, &WorkerSpec::new("/nope"), &[]).expect_err("zero");
        assert_eq!(err.kind(), gendt_faults::ErrorKind::Config);
    }
}
