//! Worker transport: forwarding a request over HTTP/1.1 with a hard
//! timeout, plus the production [`Probe`] implementation.
//!
//! Both are behind traits so the audit sync-check gate can substitute
//! deterministic stubs. The real paths carry the chaos probes
//! `fleet.forward` and `fleet.health` (`GENDT_FAULTS`), so the fleet
//! failover logic is testable under seeded fault schedules like every
//! other subsystem.

use crate::membership::Probe;
use gendt_faults::GendtError;
use gendt_serve::api::InfoResponse;
use gendt_serve::http::HttpResponse;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Request transport to one worker, substitutable for checking.
pub trait Forwarder: Send + Sync {
    /// Send `method path` with optional extra headers and body; return
    /// the worker's full response. Must complete within `timeout`.
    fn forward(
        &self,
        addr: &str,
        method: &str,
        path: &str,
        extra_headers: &[(String, String)],
        body: Option<&str>,
        timeout: Duration,
    ) -> Result<HttpResponse, GendtError>;
}

/// Floor for socket timeouts: `set_read_timeout(0)` is an error, and a
/// sub-millisecond budget is as good as expired.
const MIN_TIMEOUT: Duration = Duration::from_millis(1);

fn io_unavailable(what: &str, addr: &str, e: &dyn std::fmt::Display) -> GendtError {
    GendtError::unavailable(format!("{what} {addr}: {e}"))
}

/// One timed HTTP/1.1 exchange with `addr`.
fn timed_request(
    addr: &str,
    method: &str,
    path: &str,
    extra_headers: &[(String, String)],
    body: Option<&str>,
    timeout: Duration,
) -> Result<HttpResponse, GendtError> {
    let timeout = timeout.max(MIN_TIMEOUT);
    let sock: SocketAddr = addr
        .parse()
        .map_err(|e| GendtError::config(format!("bad worker addr {addr:?}: {e}")))?;
    let stream = TcpStream::connect_timeout(&sock, timeout)
        .map_err(|e| io_unavailable("connecting to worker", addr, &e))?;
    let mut stream = stream;
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| io_unavailable("configuring socket to", addr, &e))?;
    stream
        .set_write_timeout(Some(timeout))
        .map_err(|e| io_unavailable("configuring socket to", addr, &e))?;

    let body_bytes = body.unwrap_or("").as_bytes();
    let mut head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n",
        body_bytes.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body_bytes))
        .and_then(|()| stream.flush())
        .map_err(|e| io_unavailable("writing to worker", addr, &e))?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).map_err(|e| {
        if matches!(
            e.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        ) {
            GendtError::timeout(format!("worker {addr} exceeded {timeout:?}"))
        } else {
            io_unavailable("reading from worker", addr, &e)
        }
    })?;
    parse_response(addr, &raw)
}

fn parse_response(addr: &str, raw: &[u8]) -> Result<HttpResponse, GendtError> {
    let text = String::from_utf8_lossy(raw);
    let (head, payload) = text.split_once("\r\n\r\n").ok_or_else(|| {
        GendtError::unavailable(format!("worker {addr} sent a truncated response"))
    })?;
    let mut lines = head.lines();
    let status_line = lines
        .next()
        .ok_or_else(|| GendtError::unavailable(format!("worker {addr} sent an empty response")))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            GendtError::unavailable(format!("worker {addr}: bad status line {status_line:?}"))
        })?;
    let headers = lines
        .filter_map(|line| {
            line.split_once(':')
                .map(|(n, v)| (n.trim().to_string(), v.trim().to_string()))
        })
        .collect();
    Ok(HttpResponse {
        status,
        headers,
        body: payload.to_string(),
    })
}

/// The production [`Forwarder`]: plain HTTP/1.1 over loopback TCP.
pub struct HttpForwarder;

impl Forwarder for HttpForwarder {
    fn forward(
        &self,
        addr: &str,
        method: &str,
        path: &str,
        extra_headers: &[(String, String)],
        body: Option<&str>,
        timeout: Duration,
    ) -> Result<HttpResponse, GendtError> {
        gendt_faults::fail_io("fleet.forward")
            .map_err(|e| GendtError::unavailable(format!("forward to {addr}: {e}")))?;
        gendt_faults::sleep_if_slow("fleet.forward");
        timed_request(addr, method, path, extra_headers, body, timeout)
    }
}

/// Health/discovery probe budget: generous against a loaded worker,
/// small against a dead one.
const PROBE_TIMEOUT: Duration = Duration::from_millis(1500);

/// The production [`Probe`]: `GET /v1/healthz` + `GET /v1/info`.
pub struct HttpProbe;

impl Probe for HttpProbe {
    fn healthz(&self, addr: &str) -> Result<bool, GendtError> {
        gendt_faults::fail_io("fleet.health")
            .map_err(|e| GendtError::unavailable(format!("health probe {addr}: {e}")))?;
        gendt_faults::sleep_if_slow("fleet.health");
        let resp = timed_request(addr, "GET", "/v1/healthz", &[], None, PROBE_TIMEOUT)?;
        Ok(resp.status == 200)
    }

    fn info(&self, addr: &str) -> Result<InfoResponse, GendtError> {
        let resp = timed_request(addr, "GET", "/v1/info", &[], None, PROBE_TIMEOUT)?;
        if resp.status != 200 {
            return Err(GendtError::unavailable(format!(
                "info probe {addr} returned {}",
                resp.status
            )));
        }
        serde_json::from_str(&resp.body)
            .map_err(|e| GendtError::corrupt(format!("info probe {addr}: bad body: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_response_extracts_status_headers_body() {
        let raw = b"HTTP/1.1 503 Service Unavailable\r\nRetry-After: 1\r\nContent-Type: application/json\r\n\r\n{\"code\":\"unavailable\"}";
        let resp = parse_response("127.0.0.1:9", raw).expect("parse");
        assert_eq!(resp.status, 503);
        assert_eq!(resp.header("retry-after"), Some("1"));
        assert!(resp.body.contains("unavailable"));
    }

    #[test]
    fn truncated_response_is_unavailable() {
        let err = parse_response("127.0.0.1:9", b"HTTP/1.1 200 OK\r\n").expect_err("truncated");
        assert_eq!(err.kind(), gendt_faults::ErrorKind::Unavailable);
    }

    #[test]
    fn connect_to_dead_port_is_unavailable() {
        // Bind-then-drop guarantees an unbound port.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
            l.local_addr().expect("addr").to_string()
        };
        let err = HttpForwarder
            .forward(
                &addr,
                "POST",
                "/v1/generate",
                &[],
                Some("{}"),
                Duration::from_millis(200),
            )
            .expect_err("dead worker");
        assert!(err.retryable(), "transport failure must be retryable");
    }

    #[test]
    fn bad_addr_is_config_error() {
        let err = HttpForwarder
            .forward(
                "not-an-addr",
                "GET",
                "/v1/healthz",
                &[],
                None,
                Duration::from_millis(50),
            )
            .expect_err("bad addr");
        assert_eq!(err.kind(), gendt_faults::ErrorKind::Config);
    }
}
