//! Fleet-mode benchmarking: stand up a pool + router at several worker
//! counts, drive each to its saturation knee with the open-loop Poisson
//! loadgen, and report throughput scaling — the `fleet` section of
//! `BENCH_serve.json`.
//!
//! Each step is one [`gendt_serve::loadgen::drive_open_loop`] run
//! pointed at the router, so single-node and fleet numbers come from
//! the same driver and are directly comparable. Unlike the single-node
//! sweep, the fleet ladder runs *every* step: same-model micro-batch
//! coalescing means achieved throughput keeps rising with backlog, so
//! stopping at the first step that falls behind undershoots the knee.
//!
//! One honesty note baked into the output: real CPU scaling needs real
//! cores. On a single-core container the workers' compute serializes,
//! so the bench can emulate a fixed per-batch service time
//! (`service_ms`, injected into workers as a `slow@serve.batch` fault
//! schedule) — sleeps overlap across processes the way GPU-bound or
//! IO-bound batches would. The emulation is recorded in the section
//! (`service_ms_emulated`) rather than silently shaping the numbers.

use crate::forward::{HttpForwarder, HttpProbe};
use crate::membership::Membership;
use crate::metrics::FleetMetrics;
use crate::router::{route_serve, RouterCfg, RouterHandle};
use crate::supervisor::{drain_pool, spawn_pool, WorkerProc, WorkerSpec};
use gendt_faults::GendtError;
use gendt_serve::loadgen::{drive_open_loop, knee_of, KneePoint, OpenLoopCfg};
use serde::Serialize;
use std::sync::Arc;

/// Fleet bench configuration.
#[derive(Clone, Debug)]
pub struct FleetBenchCfg {
    /// Worker counts to measure, e.g. `[1, 2, 4, 8]`.
    pub worker_counts: Vec<usize>,
    /// Emulated per-batch service time, ms (`0` = no emulation: pure
    /// CPU, which only scales with real cores).
    pub service_ms: u64,
    /// Arrivals per sweep step.
    pub requests: usize,
    /// Placement + arrival seed.
    pub seed: u64,
    /// Sweep start rate per worker, requests per second.
    pub start_rps_per_worker: f64,
    /// Geometric ramp factor between sweep steps.
    pub growth: f64,
    /// Sweep steps per worker count (every step runs; no early stop).
    pub max_steps: usize,
}

impl FleetBenchCfg {
    /// Defaults sized for CI: 1/2/4/8 workers, 75 ms emulated batches.
    /// `requests` is deep enough that per-worker micro-batches stay
    /// full at saturation (shallow steps under-fill batches and
    /// understate every worker count equally badly).
    pub fn new() -> FleetBenchCfg {
        FleetBenchCfg {
            worker_counts: vec![1, 2, 4, 8],
            service_ms: 75,
            requests: 768,
            seed: 1,
            start_rps_per_worker: 40.0,
            growth: 1.5,
            max_steps: 6,
        }
    }

    /// Reject degenerate values.
    pub fn validate(&self) -> Result<(), GendtError> {
        if self.worker_counts.is_empty() || self.worker_counts.contains(&0) {
            return Err(GendtError::config(
                "fleet bench: worker_counts must be non-empty and positive",
            ));
        }
        if self.requests == 0 {
            return Err(GendtError::config("fleet bench: requests must be > 0"));
        }
        if !(self.start_rps_per_worker.is_finite() && self.start_rps_per_worker > 0.0) {
            return Err(GendtError::config(
                "fleet bench: start_rps_per_worker must be > 0",
            ));
        }
        Ok(())
    }
}

impl Default for FleetBenchCfg {
    fn default() -> Self {
        FleetBenchCfg::new()
    }
}

/// The `config` header of the fleet section (`BENCH_SCHEMA` v3): the
/// resolved seed (`GENDT_FLEET_SEED` / `--seed`), the worker-count
/// ladder, and every sweep knob — enough to rerun the bench from the
/// stamp alone.
#[derive(Clone, Debug, Serialize)]
pub struct FleetBenchConfig {
    /// Placement + arrival seed as resolved (`GENDT_FLEET_SEED`).
    pub seed: u64,
    /// Worker-count ladder measured, in sweep order.
    pub worker_counts: Vec<usize>,
    /// Emulated per-batch service time, ms (`0` = none).
    pub service_ms: u64,
    /// Arrivals per sweep step.
    pub requests: usize,
    /// Sweep start rate per worker, requests per second.
    pub start_rps_per_worker: f64,
    /// Geometric ramp factor between sweep steps.
    pub growth: f64,
    /// Sweep steps per worker count.
    pub max_steps: usize,
}

impl FleetBenchCfg {
    /// The stamped `config` header for this run.
    pub fn header(&self) -> FleetBenchConfig {
        FleetBenchConfig {
            seed: self.seed,
            worker_counts: self.worker_counts.clone(),
            service_ms: self.service_ms,
            requests: self.requests,
            start_rps_per_worker: self.start_rps_per_worker,
            growth: self.growth,
            max_steps: self.max_steps,
        }
    }
}

/// One sweep step as it lands in the bench JSON.
#[derive(Clone, Debug, Serialize)]
pub struct BenchStep {
    /// Offered rate, requests per second.
    pub offered_rps: f64,
    /// Achieved OK-completion rate, requests per second.
    pub achieved_rps: f64,
    /// Requests answered 200 at this step.
    pub ok: u64,
    /// Requests shed by router or worker (429/503).
    pub rejected: u64,
    /// Requests failed any other way.
    pub failed: u64,
    /// p99 end-to-end latency through the router, milliseconds.
    pub p99_ms: f64,
    /// p99.9 end-to-end latency through the router, milliseconds.
    pub p999_ms: f64,
}

/// The measured knee for one worker count.
#[derive(Clone, Debug, Serialize)]
pub struct ScalePoint {
    /// Worker processes behind the router.
    pub workers: usize,
    /// Saturated throughput (highest achieved rate), requests/second.
    pub knee_rps: f64,
    /// Throughput relative to the 1-worker knee.
    pub speedup_vs_1: f64,
    /// Every sweep step measured, in ramp order.
    pub steps: Vec<BenchStep>,
}

/// The `fleet` section of `BENCH_serve.json`.
#[derive(Clone, Debug, Serialize)]
pub struct FleetBenchOut {
    /// Full sweep configuration as resolved — the stamp header that
    /// makes the numbers reproducible without the shell invocation.
    pub config: FleetBenchConfig,
    /// Placement + arrival seed (`GENDT_FLEET_SEED`).
    pub seed: u64,
    /// Emulated per-batch service time, ms (`0` = none; see module
    /// docs — sleeps overlap across processes like IO/GPU batches).
    pub service_ms_emulated: u64,
    /// Arrivals per sweep step.
    pub requests_per_step: usize,
    /// Knee per worker count, ascending.
    pub scaling: Vec<ScalePoint>,
}

/// A running fleet: worker pool + router, torn down in order on drop
/// via [`Fleet::shutdown`].
pub struct Fleet {
    /// The spawned workers.
    pub pool: Vec<WorkerProc>,
    /// The running router.
    pub router: RouterHandle,
    /// Router-side membership (registered over `pool`).
    pub membership: Arc<Membership>,
}

impl Fleet {
    /// Router bind address, `host:port`.
    pub fn addr(&self) -> String {
        self.router.addr.to_string()
    }

    /// Graceful teardown: stop the router, then drain the pool.
    pub fn shutdown(self) {
        let Fleet {
            mut pool, router, ..
        } = self;
        router.shutdown();
        drain_pool(&mut pool, &HttpForwarder);
    }
}

/// Spawn `n` workers over `models_dir` and start a router in front of
/// them. `service_ms > 0` injects the emulated per-batch service time
/// into each worker's fault schedule.
pub fn start_fleet(
    models_dir: &str,
    n: usize,
    seed: u64,
    service_ms: u64,
) -> Result<Fleet, GendtError> {
    start_fleet_with_env(models_dir, n, seed, service_ms, &[])
}

/// [`start_fleet`] with extra env vars applied to every worker process
/// — how the obs-smoke gate turns on `GENDT_TRACE` fleet-wide without
/// touching the parent's environment.
pub fn start_fleet_with_env(
    models_dir: &str,
    n: usize,
    seed: u64,
    service_ms: u64,
    env: &[(String, String)],
) -> Result<Fleet, GendtError> {
    let spec = WorkerSpec::new(models_dir);
    let mut extra_env: Vec<(String, String)> = env.to_vec();
    if service_ms > 0 {
        extra_env.push((
            "GENDT_FAULTS".to_string(),
            format!("slow@serve.batch:ms={service_ms}"),
        ));
    }
    let mut pool = spawn_pool(n, &spec, &extra_env)?;

    let metrics = Arc::new(FleetMetrics::new());
    let membership = Arc::new(Membership::new(seed, metrics.clone()));
    for w in &pool {
        membership.register(&w.id, &w.addr);
    }
    let cfg = RouterCfg {
        seed,
        ..RouterCfg::new()
    };
    let router = match route_serve(
        cfg,
        membership.clone(),
        Arc::new(HttpProbe),
        Arc::new(HttpForwarder),
        metrics,
    ) {
        Ok(r) => r,
        Err(e) => {
            // Router never came up: don't leak the pool.
            drain_pool(&mut pool, &HttpForwarder);
            return Err(e.wrap("starting fleet router"));
        }
    };
    let fleet = Fleet {
        pool,
        router,
        membership,
    };
    if fleet.membership.healthy_count() < n {
        let got = fleet.membership.healthy_count();
        fleet.shutdown();
        return Err(GendtError::unavailable(format!(
            "only {got}/{n} workers passed the initial health poll"
        )));
    }
    Ok(fleet)
}

/// Model names the bench spreads load over. The routing key is
/// `(model, scenario)`: with one model the key space is just the five
/// scenarios, which cannot balance across 4+ workers — 8 models × 5
/// scenarios gives 40 shards, enough for the ring to spread evenly.
pub const BENCH_MODELS: [&str; 8] = [
    "demo_a", "demo_b", "demo_c", "demo_d", "demo_e", "demo_f", "demo_g", "demo_h",
];

/// Request bodies for the bench: the cross product of [`BENCH_MODELS`]
/// and all five scenarios, walked so consecutive arrivals hit
/// different shards. Trajectories are short (10 s) so the emulated
/// per-batch service time dominates the real forward-pass CPU — on a
/// single-core bench host the CPU serializes across worker processes,
/// and long trajectories would measure that artifact instead of the
/// fleet's dispatch scaling.
pub fn bench_body(i: usize) -> String {
    const SCENARIOS: [&str; 5] = ["walk", "bus", "tram", "city_drive", "highway"];
    let scenario = SCENARIOS[i % SCENARIOS.len()];
    let model = BENCH_MODELS[(i / SCENARIOS.len()) % BENCH_MODELS.len()];
    format!(
        "{{\"model\":\"{model}\",\"scenario\":\"{scenario}\",\"duration_s\":10.0,\
         \"start_x\":0.0,\"start_y\":0.0,\"traj_seed\":{},\"sample_seed\":{}}}",
        i % 4,
        i
    )
}

/// Measure the saturation knee at every configured worker count.
/// `progress` receives one human line per completed count.
pub fn bench_fleet(
    models_dir: &str,
    cfg: &FleetBenchCfg,
    progress: &mut dyn FnMut(&str),
) -> Result<FleetBenchOut, GendtError> {
    cfg.validate()?;
    let mut scaling: Vec<ScalePoint> = Vec::new();
    for &n in &cfg.worker_counts {
        let fleet = start_fleet(models_dir, n, cfg.seed, cfg.service_ms)?;
        let addr = fleet.addr();
        // A full geometric ladder, not an early-stopping sweep: the
        // micro-batch scheduler coalesces only same-model requests, so
        // achieved throughput *rises* with backlog (deeper queues fill
        // batches better) — a step that falls behind its offered rate
        // can still be below the knee. Run every step; the knee is the
        // best achieved rate anywhere on the ladder.
        let ladder = || -> Result<Vec<KneePoint>, GendtError> {
            let mut points = Vec::new();
            let mut rate = cfg.start_rps_per_worker * n as f64;
            for step in 0..cfg.max_steps.max(1) {
                let step_cfg = OpenLoopCfg {
                    rate_rps: rate,
                    requests: cfg.requests,
                    // Decorrelate arrival schedules across steps/counts.
                    seed: cfg
                        .seed
                        .wrapping_mul(1000)
                        .wrapping_add(n as u64)
                        .wrapping_add(step as u64),
                    max_inflight: 1024,
                };
                let report = drive_open_loop(&addr, &bench_body, &step_cfg)?;
                points.push(KneePoint {
                    offered_rps: report.offered_rps,
                    achieved_rps: report.achieved_rps,
                    report,
                });
                rate *= cfg.growth;
            }
            Ok(points)
        };
        let sweep = ladder();
        fleet.shutdown();
        let points = sweep.map_err(|e| e.wrap(format!("sweeping {n}-worker fleet")))?;
        let knee = knee_of(&points)
            .map(|k| k.achieved_rps)
            .ok_or_else(|| GendtError::internal("empty saturation sweep"))?;
        let base_knee = scaling.first().map(|s: &ScalePoint| s.knee_rps);
        let speedup = match base_knee {
            Some(b) if b > 0.0 => knee / b,
            _ => 1.0,
        };
        progress(&format!(
            "fleet bench: {n} worker(s) -> knee {knee:.1} rps ({speedup:.2}x vs 1)"
        ));
        scaling.push(ScalePoint {
            workers: n,
            knee_rps: knee,
            speedup_vs_1: speedup,
            steps: points
                .iter()
                .map(|p| BenchStep {
                    offered_rps: p.offered_rps,
                    achieved_rps: p.achieved_rps,
                    ok: p.report.ok,
                    rejected: p.report.rejected,
                    failed: p.report.failed,
                    p99_ms: p.report.latency_ms.p99,
                    p999_ms: p.report.latency_ms.p999,
                })
                .collect(),
        });
    }
    Ok(FleetBenchOut {
        config: cfg.header(),
        seed: cfg.seed,
        service_ms_emulated: cfg.service_ms,
        requests_per_step: cfg.requests,
        scaling,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_bodies_cover_the_full_key_space() {
        let field = |b: &str, key: &str| -> String {
            let tail = b.split(&format!("\"{key}\":\"")).nth(1).expect("field");
            tail.split('"').next().expect("value").to_string()
        };
        let keys: std::collections::BTreeSet<(String, String)> = (0..40)
            .map(|i| {
                let b = bench_body(i);
                (field(&b, "model"), field(&b, "scenario"))
            })
            .collect();
        assert_eq!(
            keys.len(),
            40,
            "40 consecutive bodies must cover all 8×5 routing keys"
        );
    }

    #[test]
    fn bench_out_stamps_the_config_header() {
        let mut cfg = FleetBenchCfg::new();
        cfg.seed = 42;
        cfg.worker_counts = vec![1, 2, 4];
        let out = FleetBenchOut {
            config: cfg.header(),
            seed: cfg.seed,
            service_ms_emulated: cfg.service_ms,
            requests_per_step: cfg.requests,
            scaling: Vec::new(),
        };
        let json = serde_json::to_string(&out).expect("serialize");
        assert!(
            json.contains("\"config\":{\"seed\":42,\"worker_counts\":[1,2,4]"),
            "fleet section must lead with the seed + worker ladder header: {json}"
        );
        assert!(json.contains("\"max_steps\":6"));
    }

    #[test]
    fn cfg_validation_rejects_degenerate() {
        let mut c = FleetBenchCfg::new();
        c.worker_counts = vec![];
        assert!(c.validate().is_err());
        let mut c = FleetBenchCfg::new();
        c.worker_counts = vec![1, 0];
        assert!(c.validate().is_err());
        let mut c = FleetBenchCfg::new();
        c.requests = 0;
        assert!(c.validate().is_err());
        assert!(FleetBenchCfg::new().validate().is_ok());
    }
}
