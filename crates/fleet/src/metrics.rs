//! Router-side fleet metrics and their Prometheus text rendering.

use gendt_metrics::{Histogram, Quantiles};
use gendt_sync::atomic::{AtomicU64, Ordering};
use gendt_sync::Mutex;

/// Shared router metrics. Counters are lock-free atomics on the
/// forwarding path; the routed-latency distribution streams into a
/// histogram behind a short-lived mutex.
pub struct FleetMetrics {
    /// Requests received by the router, any endpoint.
    pub http_requests: AtomicU64,
    /// Generate requests forwarded to a worker and answered.
    pub forwarded: AtomicU64,
    /// Forward attempts that failed at the transport (worker down,
    /// timeout) and triggered failover.
    pub forward_errors: AtomicU64,
    /// Generate requests that found no healthy owner in the ring.
    pub no_owner: AtomicU64,
    /// Generate requests routed past their key's owner because the
    /// owner was over the bounded-load limit.
    pub spills: AtomicU64,
    /// Generate requests whose propagated deadline expired in routing.
    pub deadline_expired: AtomicU64,
    /// Workers evicted from the ring (health check or forward failure).
    pub evictions: AtomicU64,
    /// Workers re-admitted after passing a health check again.
    pub rejoins: AtomicU64,
    /// Ring rebuilds (any membership/health transition).
    pub ring_rebuilds: AtomicU64,
    /// Health probes attempted.
    pub health_checks: AtomicU64,
    /// Health probes that failed or reported unhealthy.
    pub health_check_failures: AtomicU64,
    latency_ms: Mutex<Histogram>,
}

impl FleetMetrics {
    /// Fresh metrics.
    pub fn new() -> FleetMetrics {
        FleetMetrics {
            http_requests: AtomicU64::new(0),
            forwarded: AtomicU64::new(0),
            forward_errors: AtomicU64::new(0),
            no_owner: AtomicU64::new(0),
            spills: AtomicU64::new(0),
            deadline_expired: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            rejoins: AtomicU64::new(0),
            ring_rebuilds: AtomicU64::new(0),
            health_checks: AtomicU64::new(0),
            health_check_failures: AtomicU64::new(0),
            // 0..10s in 25ms bins, same shape as the worker's histogram.
            latency_ms: Mutex::new(Histogram::empty(0.0, 10_000.0, 400)),
        }
    }

    /// Record one routed end-to-end latency, milliseconds.
    pub fn observe_latency_ms(&self, ms: f64) {
        self.latency_ms.lock().push(ms);
    }

    /// Render the Prometheus text exposition for the router's
    /// `/metrics`.
    pub fn render(&self, workers_total: usize, workers_healthy: usize) -> String {
        let mut out = String::with_capacity(2048);
        let counter = |out: &mut String, name: &str, help: &str, v: u64| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {v}\n"
            ));
        };
        let gauge = |out: &mut String, name: &str, help: &str, v: u64| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {v}\n"
            ));
        };
        // sync: every load below is a Relaxed scrape of an independent
        // monotonic counter or gauge; /metrics imposes no cross-counter
        // ordering.
        counter(
            &mut out,
            "gendt_fleet_http_requests_total",
            "Requests received by the router, any endpoint.",
            self.http_requests.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "gendt_fleet_forwarded_total",
            "Generate requests forwarded to a worker and answered.",
            self.forwarded.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "gendt_fleet_forward_errors_total",
            "Forward attempts that failed at the transport.",
            self.forward_errors.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "gendt_fleet_no_owner_total",
            "Generate requests with no healthy owner in the ring.",
            self.no_owner.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "gendt_fleet_spills_total",
            "Requests routed past the key owner by the bounded-load limit.",
            self.spills.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "gendt_fleet_deadline_expired_total",
            "Requests whose propagated deadline expired in routing.",
            self.deadline_expired.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "gendt_fleet_evictions_total",
            "Workers evicted from the ring.",
            self.evictions.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "gendt_fleet_rejoins_total",
            "Workers re-admitted after passing a health check.",
            self.rejoins.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "gendt_fleet_ring_rebuilds_total",
            "Consistent-hash ring rebuilds.",
            self.ring_rebuilds.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "gendt_fleet_health_checks_total",
            "Health probes attempted.",
            self.health_checks.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "gendt_fleet_health_check_failures_total",
            "Health probes that failed or reported unhealthy.",
            self.health_check_failures.load(Ordering::Relaxed),
        );
        gauge(
            &mut out,
            "gendt_fleet_workers",
            "Workers registered with the router.",
            workers_total as u64,
        );
        gauge(
            &mut out,
            "gendt_fleet_workers_healthy",
            "Workers currently healthy (in the ring).",
            workers_healthy as u64,
        );
        {
            let lat = self.latency_ms.lock();
            let n = lat.total();
            out.push_str(
                "# HELP gendt_fleet_latency_ms Routed end-to-end latency, milliseconds.\n# TYPE gendt_fleet_latency_ms summary\n",
            );
            if n > 0 {
                let q = Quantiles::from_histogram(&lat);
                out.push_str(&format!(
                    "gendt_fleet_latency_ms{{quantile=\"0.5\"}} {}\n",
                    q.p50
                ));
                out.push_str(&format!(
                    "gendt_fleet_latency_ms{{quantile=\"0.95\"}} {}\n",
                    q.p95
                ));
                out.push_str(&format!(
                    "gendt_fleet_latency_ms{{quantile=\"0.99\"}} {}\n",
                    q.p99
                ));
                out.push_str(&format!(
                    "gendt_fleet_latency_ms{{quantile=\"0.999\"}} {}\n",
                    q.p999
                ));
            }
            out.push_str(&format!("gendt_fleet_latency_ms_count {n}\n"));
        }
        out
    }
}

impl Default for FleetMetrics {
    fn default() -> Self {
        FleetMetrics::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_core_series() {
        let m = FleetMetrics::new();
        m.http_requests.fetch_add(5, Ordering::Relaxed);
        m.forwarded.fetch_add(4, Ordering::Relaxed);
        m.observe_latency_ms(8.0);
        let text = m.render(4, 3);
        for needle in [
            "gendt_fleet_http_requests_total 5",
            "gendt_fleet_forwarded_total 4",
            "gendt_fleet_workers 4",
            "gendt_fleet_workers_healthy 3",
            "gendt_fleet_latency_ms_count 1",
            "gendt_fleet_evictions_total 0",
            "quantile=\"0.999\"",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }
}
