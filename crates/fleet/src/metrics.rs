//! Router-side fleet metrics and their Prometheus text rendering.

use gendt_metrics::{Histogram, Quantiles};
use gendt_sync::atomic::{AtomicU64, Ordering};
use gendt_sync::Mutex;
use std::collections::BTreeMap;

/// How a routed generate request reached its worker — the label on the
/// outcome-split latency histograms.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouteOutcome {
    /// Served by the key's ring owner on the first attempt.
    Owner,
    /// Routed past a saturated owner by the bounded-load limit.
    Spill,
    /// Served only after at least one failover retry.
    Retry,
}

impl RouteOutcome {
    fn label(self) -> &'static str {
        match self {
            RouteOutcome::Owner => "owner",
            RouteOutcome::Spill => "spill",
            RouteOutcome::Retry => "retry",
        }
    }
}

/// Shared router metrics. Counters are lock-free atomics on the
/// forwarding path; the routed-latency distribution streams into a
/// histogram behind a short-lived mutex.
pub struct FleetMetrics {
    /// Requests received by the router, any endpoint.
    pub http_requests: AtomicU64,
    /// Generate requests forwarded to a worker and answered.
    pub forwarded: AtomicU64,
    /// Forward attempts that failed at the transport (worker down,
    /// timeout) and triggered failover.
    pub forward_errors: AtomicU64,
    /// Generate requests that found no healthy owner in the ring.
    pub no_owner: AtomicU64,
    /// Generate requests routed past their key's owner because the
    /// owner was over the bounded-load limit.
    pub spills: AtomicU64,
    /// Generate requests whose propagated deadline expired in routing.
    pub deadline_expired: AtomicU64,
    /// Workers evicted from the ring (health check or forward failure).
    pub evictions: AtomicU64,
    /// Workers re-admitted after passing a health check again.
    pub rejoins: AtomicU64,
    /// Ring rebuilds (any membership/health transition).
    pub ring_rebuilds: AtomicU64,
    /// Health probes attempted.
    pub health_checks: AtomicU64,
    /// Health probes that failed or reported unhealthy.
    pub health_check_failures: AtomicU64,
    /// Stream requests tunneled to their pinned session owner.
    pub stream_tunnels: AtomicU64,
    /// Stream requests whose pinned owner was unreachable, answered
    /// with a typed migration notice naming the new owner.
    pub stream_migrations: AtomicU64,
    /// Routed latency split by how the request reached its worker:
    /// owner-hit, bounded-load spill, failover retry. Rendered both
    /// per-outcome and merged into the combined series.
    latency_by_outcome: [Mutex<Histogram>; 3],
    /// Spill counts per spilled-past owner, keyed by worker id.
    spills_by_worker: Mutex<BTreeMap<String, u64>>,
}

impl FleetMetrics {
    /// Fresh metrics.
    pub fn new() -> FleetMetrics {
        FleetMetrics {
            http_requests: AtomicU64::new(0),
            forwarded: AtomicU64::new(0),
            forward_errors: AtomicU64::new(0),
            no_owner: AtomicU64::new(0),
            spills: AtomicU64::new(0),
            deadline_expired: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            rejoins: AtomicU64::new(0),
            ring_rebuilds: AtomicU64::new(0),
            health_checks: AtomicU64::new(0),
            health_check_failures: AtomicU64::new(0),
            stream_tunnels: AtomicU64::new(0),
            stream_migrations: AtomicU64::new(0),
            // 0..10s in 25ms bins, same shape as the worker's histogram
            // so federation can bucket-merge router and worker series.
            latency_by_outcome: [
                Mutex::new(Histogram::empty(0.0, 10_000.0, 400)),
                Mutex::new(Histogram::empty(0.0, 10_000.0, 400)),
                Mutex::new(Histogram::empty(0.0, 10_000.0, 400)),
            ],
            spills_by_worker: Mutex::new(BTreeMap::new()),
        }
    }

    /// Record one routed end-to-end latency, milliseconds, on the
    /// owner-hit path. Alias for [`FleetMetrics::observe_routed_ms`]
    /// with [`RouteOutcome::Owner`].
    pub fn observe_latency_ms(&self, ms: f64) {
        self.observe_routed_ms(RouteOutcome::Owner, ms);
    }

    /// Record one routed end-to-end latency, milliseconds, labeled by
    /// how the request reached its worker.
    pub fn observe_routed_ms(&self, outcome: RouteOutcome, ms: f64) {
        self.latency_by_outcome[outcome as usize].lock().push(ms);
    }

    /// Count one bounded-load spill that landed on worker `id`.
    pub fn spill_to(&self, id: &str) {
        *self
            .spills_by_worker
            .lock()
            .entry(id.to_string())
            .or_insert(0) += 1;
    }

    /// Render the Prometheus text exposition for the router's
    /// `/metrics`. `per_worker_inflight` carries the live in-flight
    /// request count per worker id (from the membership snapshot) so
    /// the bounded-load state is visible per worker.
    pub fn render(
        &self,
        workers_total: usize,
        workers_healthy: usize,
        per_worker_inflight: &[(String, u64)],
    ) -> String {
        let mut out = String::with_capacity(2048);
        let counter = |out: &mut String, name: &str, help: &str, v: u64| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {v}\n"
            ));
        };
        let gauge = |out: &mut String, name: &str, help: &str, v: u64| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {v}\n"
            ));
        };
        // sync: every load below is a Relaxed scrape of an independent
        // monotonic counter or gauge; /metrics imposes no cross-counter
        // ordering.
        counter(
            &mut out,
            "gendt_fleet_http_requests_total",
            "Requests received by the router, any endpoint.",
            self.http_requests.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "gendt_fleet_forwarded_total",
            "Generate requests forwarded to a worker and answered.",
            self.forwarded.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "gendt_fleet_forward_errors_total",
            "Forward attempts that failed at the transport.",
            self.forward_errors.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "gendt_fleet_no_owner_total",
            "Generate requests with no healthy owner in the ring.",
            self.no_owner.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "gendt_fleet_spills_total",
            "Requests routed past the key owner by the bounded-load limit.",
            self.spills.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "gendt_fleet_deadline_expired_total",
            "Requests whose propagated deadline expired in routing.",
            self.deadline_expired.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "gendt_fleet_evictions_total",
            "Workers evicted from the ring.",
            self.evictions.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "gendt_fleet_rejoins_total",
            "Workers re-admitted after passing a health check.",
            self.rejoins.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "gendt_fleet_ring_rebuilds_total",
            "Consistent-hash ring rebuilds.",
            self.ring_rebuilds.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "gendt_fleet_health_checks_total",
            "Health probes attempted.",
            self.health_checks.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "gendt_fleet_health_check_failures_total",
            "Health probes that failed or reported unhealthy.",
            self.health_check_failures.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "gendt_fleet_stream_tunnels_total",
            "Stream requests tunneled to their pinned session owner.",
            self.stream_tunnels.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "gendt_fleet_stream_migrations_total",
            "Stream requests answered with a session-migration notice.",
            self.stream_migrations.load(Ordering::Relaxed),
        );
        gauge(
            &mut out,
            "gendt_fleet_workers",
            "Workers registered with the router.",
            workers_total as u64,
        );
        gauge(
            &mut out,
            "gendt_fleet_workers_healthy",
            "Workers currently healthy (in the ring).",
            workers_healthy as u64,
        );
        if !per_worker_inflight.is_empty() {
            out.push_str(
                "# HELP gendt_fleet_worker_inflight Requests in flight per worker.\n# TYPE gendt_fleet_worker_inflight gauge\n",
            );
            for (id, inflight) in per_worker_inflight {
                out.push_str(&format!(
                    "gendt_fleet_worker_inflight{{worker=\"{id}\"}} {inflight}\n"
                ));
            }
        }
        {
            let spills = self.spills_by_worker.lock();
            if !spills.is_empty() {
                out.push_str(
                    "# HELP gendt_fleet_worker_spills_total Bounded-load spills landed per worker.\n# TYPE gendt_fleet_worker_spills_total counter\n",
                );
                for (id, n) in spills.iter() {
                    out.push_str(&format!(
                        "gendt_fleet_worker_spills_total{{worker=\"{id}\"}} {n}\n"
                    ));
                }
            }
        }
        // Combined routed latency is the exact bucket-merge of the three
        // outcome lanes — the same primitive federation applies across
        // workers, exercised here inside one process.
        let mut combined = Histogram::empty(0.0, 10_000.0, 400);
        out.push_str(
            "# HELP gendt_fleet_routed_latency_ms Routed latency by path outcome, milliseconds.\n# TYPE gendt_fleet_routed_latency_ms summary\n",
        );
        for outcome in [
            RouteOutcome::Owner,
            RouteOutcome::Spill,
            RouteOutcome::Retry,
        ] {
            let lat = self.latency_by_outcome[outcome as usize].lock();
            combined.merge(&lat);
            let n = lat.total();
            let label = outcome.label();
            if n > 0 {
                let q = Quantiles::from_histogram(&lat);
                out.push_str(&format!(
                    "gendt_fleet_routed_latency_ms{{outcome=\"{label}\",quantile=\"0.5\"}} {}\n",
                    q.p50
                ));
                out.push_str(&format!(
                    "gendt_fleet_routed_latency_ms{{outcome=\"{label}\",quantile=\"0.99\"}} {}\n",
                    q.p99
                ));
            }
            out.push_str(&format!(
                "gendt_fleet_routed_latency_ms_count{{outcome=\"{label}\"}} {n}\n"
            ));
        }
        {
            let n = combined.total();
            out.push_str(
                "# HELP gendt_fleet_latency_ms Routed end-to-end latency, milliseconds.\n# TYPE gendt_fleet_latency_ms summary\n",
            );
            if n > 0 {
                let q = Quantiles::from_histogram(&combined);
                out.push_str(&format!(
                    "gendt_fleet_latency_ms{{quantile=\"0.5\"}} {}\n",
                    q.p50
                ));
                out.push_str(&format!(
                    "gendt_fleet_latency_ms{{quantile=\"0.95\"}} {}\n",
                    q.p95
                ));
                out.push_str(&format!(
                    "gendt_fleet_latency_ms{{quantile=\"0.99\"}} {}\n",
                    q.p99
                ));
                out.push_str(&format!(
                    "gendt_fleet_latency_ms{{quantile=\"0.999\"}} {}\n",
                    q.p999
                ));
            }
            out.push_str(&format!("gendt_fleet_latency_ms_count {n}\n"));
        }
        out
    }
}

impl Default for FleetMetrics {
    fn default() -> Self {
        FleetMetrics::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_core_series() {
        let m = FleetMetrics::new();
        m.http_requests.fetch_add(5, Ordering::Relaxed);
        m.forwarded.fetch_add(4, Ordering::Relaxed);
        m.observe_latency_ms(8.0);
        let text = m.render(4, 3, &[]);
        for needle in [
            "gendt_fleet_http_requests_total 5",
            "gendt_fleet_forwarded_total 4",
            "gendt_fleet_workers 4",
            "gendt_fleet_workers_healthy 3",
            "gendt_fleet_latency_ms_count 1",
            "gendt_fleet_evictions_total 0",
            "gendt_fleet_stream_tunnels_total 0",
            "gendt_fleet_stream_migrations_total 0",
            "quantile=\"0.999\"",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn outcome_lanes_merge_into_combined_latency() {
        let m = FleetMetrics::new();
        m.observe_routed_ms(RouteOutcome::Owner, 10.0);
        m.observe_routed_ms(RouteOutcome::Spill, 60.0);
        m.observe_routed_ms(RouteOutcome::Retry, 120.0);
        m.spill_to("w1");
        m.spill_to("w1");
        let text = m.render(2, 2, &[("w0".to_string(), 3), ("w1".to_string(), 1)]);
        for needle in [
            "gendt_fleet_routed_latency_ms_count{outcome=\"owner\"} 1",
            "gendt_fleet_routed_latency_ms_count{outcome=\"spill\"} 1",
            "gendt_fleet_routed_latency_ms_count{outcome=\"retry\"} 1",
            "gendt_fleet_latency_ms_count 3",
            "gendt_fleet_worker_inflight{worker=\"w0\"} 3",
            "gendt_fleet_worker_inflight{worker=\"w1\"} 1",
            "gendt_fleet_worker_spills_total{worker=\"w1\"} 2",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }
}
