//! `gendt-fleet` — sharded multi-process GenDT serving.
//!
//! ```text
//! gendt-fleet --models DIR [--workers N] [--addr HOST:PORT]
//!             [--seed N] [--service-ms N]
//! gendt-fleet smoke
//! gendt-fleet bench [--out PATH] [--workers 1,2,4,8] [--quick]
//!                   [--service-ms N] [--seed N] [--requests N]
//! ```
//!
//! The default command spawns N worker processes (each today's
//! single-node `gendt-serve` scheduler, unchanged), fronts them with
//! the consistent-hash router, and serves `/v1/*` until
//! `POST /v1/shutdown`. `smoke` is the CI gate: parity vs single-node,
//! failover on a killed worker, typed envelopes throughout. `bench`
//! measures throughput scaling across worker counts and grafts a
//! `fleet` section onto `BENCH_serve.json`.
//!
//! The placement seed comes from `--seed`, falling back to the
//! `GENDT_FLEET_SEED` env var, falling back to 1.

#![forbid(unsafe_code)]

use gendt_faults::{ErrorKind, GendtError};
use gendt_fleet::loadgen::{bench_fleet, start_fleet, FleetBenchCfg};
use gendt_fleet::supervisor::maybe_run_worker;
use gendt_fleet::HttpForwarder;
use gendt_serve::http::{http_request, http_request_full};
use std::process::ExitCode;
use std::time::Duration;

fn usage() -> String {
    "usage: gendt-fleet --models DIR [--workers N] [--addr HOST:PORT] [--seed N] \
     [--service-ms N]\n\
     \x20      gendt-fleet smoke\n\
     \x20      gendt-fleet bench [--out PATH] [--workers 1,2,4,8] [--quick] \
     [--service-ms N] [--seed N] [--requests N]"
        .to_string()
}

fn parse_num<T: std::str::FromStr>(
    args: &mut std::slice::Iter<String>,
    flag: &str,
) -> Result<T, GendtError> {
    let v = args
        .next()
        .ok_or_else(|| GendtError::config(format!("{flag} needs a value")))?;
    v.parse()
        .map_err(|_| GendtError::config(format!("{flag}: bad value {v:?}")))
}

fn env_seed() -> u64 {
    std::env::var("GENDT_FLEET_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

fn run_fleet(argv: &[String]) -> Result<(), GendtError> {
    let mut models: Option<String> = None;
    let mut workers = 4usize;
    let mut addr = "127.0.0.1:8090".to_string();
    let mut seed = env_seed();
    let mut service_ms = 0u64;
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--models" => {
                models = Some(
                    it.next()
                        .ok_or_else(|| GendtError::config("--models needs a value"))?
                        .clone(),
                )
            }
            "--workers" => workers = parse_num(&mut it, "--workers")?,
            "--addr" => {
                addr = it
                    .next()
                    .ok_or_else(|| GendtError::config("--addr needs a value"))?
                    .clone()
            }
            "--seed" => seed = parse_num(&mut it, "--seed")?,
            "--service-ms" => service_ms = parse_num(&mut it, "--service-ms")?,
            "--help" | "-h" => {
                println!("{}", usage());
                return Ok(());
            }
            other => return Err(GendtError::config(format!("unknown flag {other}"))),
        }
    }
    let models = models.ok_or_else(|| GendtError::config("--models DIR is required"))?;
    if workers == 0 {
        return Err(GendtError::config("--workers must be > 0"));
    }

    let mut fleet = start_fleet(&models, workers, seed, service_ms)?;
    // Rebind the router onto the requested public address: start_fleet
    // binds an ephemeral port, which is right for smoke/bench but not
    // for `gendt-fleet --addr`. Simplest correct move: start the
    // public-facing router directly here instead.
    if addr != "127.0.0.1:0" {
        let metrics = fleet.router.metrics();
        let old = std::mem::replace(
            &mut fleet.router,
            gendt_fleet::route_serve(
                gendt_fleet::RouterCfg {
                    addr: addr.clone(),
                    seed,
                    ..gendt_fleet::RouterCfg::new()
                },
                fleet.membership.clone(),
                std::sync::Arc::new(gendt_fleet::HttpProbe),
                std::sync::Arc::new(HttpForwarder),
                metrics,
            )?,
        );
        old.shutdown();
    }
    println!(
        "gendt-fleet: routing {} worker(s) on http://{} (seed {seed})",
        workers, fleet.router.addr
    );
    for w in &fleet.pool {
        println!("  {} -> http://{}", w.id, w.addr);
    }
    let gendt_fleet::loadgen::Fleet {
        mut pool, router, ..
    } = fleet;
    router.join();
    let clean = gendt_fleet::drain_pool(&mut pool, &HttpForwarder);
    println!("gendt-fleet stopped ({clean}/{workers} workers drained cleanly)");
    Ok(())
}

/// The CI smoke gate. Self-contained: trains a demo checkpoint in a
/// temp dir, runs a 2-worker fleet plus a 1-worker reference, and
/// checks parity, failover, and envelope discipline.
fn smoke() -> Result<(), GendtError> {
    let dir = std::env::temp_dir().join("gendt-fleet-smoke-models");
    let ckpt = dir.join("demo_a.json");
    if !ckpt.exists() {
        eprintln!("smoke: training demo checkpoint at {} ...", ckpt.display());
        gendt_serve::demo::write_demo_model(&ckpt, 1)?;
    }
    let models = dir.to_string_lossy().into_owned();

    // Reference: a single worker behind its own router (same seed), so
    // parity compares fleet routing against single-node output.
    let reference = start_fleet(&models, 1, 7, 0)?;
    let fleet = start_fleet(&models, 2, 7, 0)?;
    let scenarios = ["walk", "bus", "tram", "city_drive", "highway"];
    let body_for = |scenario: &str| {
        format!(
            "{{\"model\":\"demo_a\",\"scenario\":\"{scenario}\",\"duration_s\":20.0,\
             \"start_x\":0.0,\"start_y\":0.0,\"traj_seed\":3,\"sample_seed\":11}}"
        )
    };

    // 1. Bitwise parity: every scenario, fleet output == single-node
    //    output, and repeat calls are deterministic.
    for scenario in &scenarios {
        let body = body_for(scenario);
        let (s1, via_fleet) = http_request(&fleet.addr(), "POST", "/v1/generate", Some(&body))
            .map_err(|e| GendtError::unavailable(format!("smoke fleet request: {e}")))?;
        let (s2, via_single) = http_request(&reference.addr(), "POST", "/v1/generate", Some(&body))
            .map_err(|e| GendtError::unavailable(format!("smoke reference request: {e}")))?;
        if s1 != 200 || s2 != 200 {
            return Err(GendtError::internal(format!(
                "smoke parity: scenario {scenario} got {s1}/{s2}, want 200/200"
            )));
        }
        if via_fleet != via_single {
            return Err(GendtError::internal(format!(
                "smoke parity: scenario {scenario}: fleet and single-node bodies differ"
            )));
        }
        let (_, again) = http_request(&fleet.addr(), "POST", "/v1/generate", Some(&body))
            .map_err(|e| GendtError::unavailable(format!("smoke repeat request: {e}")))?;
        if again != via_fleet {
            return Err(GendtError::internal(format!(
                "smoke determinism: scenario {scenario}: repeat through fleet differs"
            )));
        }
    }
    println!("smoke: parity ok across {} scenarios", scenarios.len());

    // 2. Kill one worker. Every subsequent request must get a definite,
    //    well-formed answer: 200 (failover worked) or a typed retryable
    //    503 envelope — never a hang, never an untyped error.
    let mut fleet = fleet;
    let victim = fleet.pool.remove(0);
    let victim_id = victim.id.clone();
    {
        let mut victim = victim;
        victim.kill()?;
    }
    let mut saw_ok = false;
    for i in 0..20usize {
        let body = body_for(scenarios[i % scenarios.len()]);
        let resp = http_request_full(&fleet.addr(), "POST", "/v1/generate", &[], Some(&body))
            .map_err(|e| {
                GendtError::internal(format!("smoke failover: request {i} got no answer: {e}"))
            })?;
        match resp.status {
            200 => saw_ok = true,
            503 => {
                if !resp.body.contains("\"retryable\":true") {
                    return Err(GendtError::internal(format!(
                        "smoke failover: 503 without typed retryable envelope: {}",
                        resp.body
                    )));
                }
                if resp.header("retry-after").is_none() {
                    return Err(GendtError::internal(
                        "smoke failover: 503 without Retry-After",
                    ));
                }
            }
            other => {
                return Err(GendtError::internal(format!(
                    "smoke failover: unexpected status {other}: {}",
                    resp.body
                )));
            }
        }
    }
    if !saw_ok {
        return Err(GendtError::internal(
            "smoke failover: no request succeeded after killing one of two workers",
        ));
    }
    println!("smoke: failover ok after killing {victim_id}");

    // 3. The fleet status must have noticed: one healthy worker left.
    //    (Forward-path eviction is immediate; poll may lag a beat.)
    let mut healthy_one = false;
    for _ in 0..25 {
        let (status, body) = http_request(&fleet.addr(), "GET", "/v1/fleet", None)
            .map_err(|e| GendtError::unavailable(format!("smoke /v1/fleet: {e}")))?;
        if status == 200 && body.contains("\"healthy\":1") {
            healthy_one = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    if !healthy_one {
        return Err(GendtError::internal(
            "smoke: /v1/fleet never reported exactly 1 healthy worker",
        ));
    }
    println!("smoke: membership converged to 1 healthy worker");

    // 4. Router metrics render and carry fleet series.
    let (status, metrics_text) = http_request(&fleet.addr(), "GET", "/v1/metrics", None)
        .map_err(|e| GendtError::unavailable(format!("smoke /v1/metrics: {e}")))?;
    if status != 200 || !metrics_text.contains("gendt_fleet_forwarded_total") {
        return Err(GendtError::internal("smoke: router /v1/metrics incomplete"));
    }

    // 5. Graceful teardown: drain must answer and workers must exit.
    let (status, _) = http_request(&fleet.addr(), "POST", "/v1/shutdown", None)
        .map_err(|e| GendtError::unavailable(format!("smoke shutdown: {e}")))?;
    if status != 200 {
        return Err(GendtError::internal(format!(
            "smoke: router shutdown answered {status}"
        )));
    }
    let gendt_fleet::loadgen::Fleet {
        mut pool, router, ..
    } = fleet;
    router.join();
    let survivors = pool.len();
    let clean = gendt_fleet::drain_pool(&mut pool, &HttpForwarder);
    if clean < survivors {
        return Err(GendtError::internal(format!(
            "smoke: only {clean}/{survivors} surviving workers drained cleanly"
        )));
    }
    reference.shutdown();
    println!("smoke: PASS");
    Ok(())
}

fn bench(argv: &[String]) -> Result<(), GendtError> {
    let mut cfg = FleetBenchCfg::new();
    cfg.seed = env_seed();
    let mut out_path = "BENCH_serve.json".to_string();
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => {
                out_path = it
                    .next()
                    .ok_or_else(|| GendtError::config("--out needs a value"))?
                    .clone()
            }
            "--workers" => {
                let v = it
                    .next()
                    .ok_or_else(|| GendtError::config("--workers needs a value"))?;
                cfg.worker_counts = v
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse()
                            .map_err(|_| GendtError::config(format!("--workers: bad count {s:?}")))
                    })
                    .collect::<Result<Vec<usize>, GendtError>>()?;
            }
            "--quick" => {
                cfg.worker_counts = vec![1, 2];
                cfg.requests = 64;
                cfg.max_steps = 3;
            }
            "--service-ms" => cfg.service_ms = parse_num(&mut it, "--service-ms")?,
            "--seed" => cfg.seed = parse_num(&mut it, "--seed")?,
            "--requests" => cfg.requests = parse_num(&mut it, "--requests")?,
            "--help" | "-h" => {
                println!("{}", usage());
                return Ok(());
            }
            other => return Err(GendtError::config(format!("unknown flag {other}"))),
        }
    }

    let dir = std::env::temp_dir().join("gendt-fleet-bench-models");
    for (i, name) in gendt_fleet::loadgen::BENCH_MODELS.iter().enumerate() {
        let ckpt = dir.join(format!("{name}.json"));
        if !ckpt.exists() {
            eprintln!("bench: training demo checkpoint at {} ...", ckpt.display());
            gendt_serve::demo::write_demo_model(&ckpt, 1 + i as u64)?;
        }
    }
    let models = dir.to_string_lossy().into_owned();

    let out = bench_fleet(&models, &cfg, &mut |line| println!("{line}"))?;
    let json = merge_fleet_section(&out_path, &out)?;
    std::fs::write(&out_path, &json)
        .map_err(|e| GendtError::from(e).wrap(format!("writing {out_path}")))?;
    println!("wrote fleet section to {out_path}");
    Ok(())
}

/// Graft the fleet section onto an existing bench artifact (preserving
/// the single-node numbers `gendt-loadgen` wrote), or start a fresh
/// artifact holding only the fleet section.
fn merge_fleet_section(
    path: &str,
    out: &gendt_fleet::loadgen::FleetBenchOut,
) -> Result<String, GendtError> {
    let fleet_json = serde_json::to_string(out)
        .map_err(|e| GendtError::internal(format!("encoding fleet results: {e}")))?;
    let fleet_value: serde::Value = serde_json::from_str(&fleet_json)
        .map_err(|e| GendtError::internal(format!("re-parsing fleet results: {e}")))?;

    let mut doc: serde::Value = match std::fs::read_to_string(path) {
        Ok(old) => serde_json::from_str(&old).unwrap_or(serde::Value::Map(Vec::new())),
        Err(_) => serde::Value::Map(Vec::new()),
    };
    if !matches!(doc, serde::Value::Map(_)) {
        doc = serde::Value::Map(Vec::new());
    }
    if let serde::Value::Map(entries) = &mut doc {
        if entries.iter().all(|(k, _)| k != "bench_schema") {
            entries.push((
                "bench_schema".to_string(),
                serde::Value::Int(gendt_trace::BENCH_SCHEMA as i128),
            ));
        }
        if entries.iter().all(|(k, _)| k != "git_rev") {
            entries.push((
                "git_rev".to_string(),
                serde::Value::Str(gendt_trace::git_rev()),
            ));
        }
        match entries.iter_mut().find(|(k, _)| k == "fleet") {
            Some((_, slot)) => *slot = fleet_value,
            None => entries.push(("fleet".to_string(), fleet_value)),
        }
    }
    serde_json::to_string_pretty(&doc)
        .map_err(|e| GendtError::internal(format!("encoding merged artifact: {e}")))
}

fn run() -> Result<(), GendtError> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("smoke") => smoke(),
        Some("bench") => bench(&argv[1..]),
        Some("--help") | Some("-h") => {
            println!("{}", usage());
            Ok(())
        }
        _ => run_fleet(&argv),
    }
}

fn main() -> ExitCode {
    // Worker mode: this same binary, re-exec'd by the supervisor.
    if let Some(code) = maybe_run_worker() {
        return ExitCode::from(code);
    }
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("gendt-fleet: {e}");
            if e.kind() == ErrorKind::Config {
                eprintln!("{}", usage());
            }
            ExitCode::from(e.exit_code())
        }
    }
}
