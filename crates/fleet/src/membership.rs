//! Health-gated replica membership: which workers exist, which are in
//! the ring, and what each one serves.
//!
//! All mutable state sits behind one `gendt_sync::Mutex` so the audit
//! sync-check gate can explore health flaps racing request forwarding
//! (`gendt-audit sync-check`, models `fleet_*`). Transport is abstracted
//! behind the [`Probe`] trait: production polls HTTP `/v1/healthz` +
//! `/v1/info`; the checker substitutes deterministic stubs.
//!
//! Eviction has two triggers with one meaning — the worker leaves the
//! ring and its keys redistribute minimally:
//! * the poller observes a failed/unhealthy `/v1/healthz` (draining
//!   workers answer 503, so a drain is an eviction too);
//! * the forward path reports a transport failure
//!   ([`Membership::report_failure`]), which evicts immediately instead
//!   of waiting out a poll interval.
//!
//! A worker that passes a later health check rejoins the ring.
//!
//! Dispatch uses consistent hashing *with bounded loads*
//! ([`Membership::route_bounded`]): a key normally lands on its ring
//! owner (cache affinity, deterministic placement), but a worker whose
//! routed in-flight count exceeds 1.125× the fleet mean is skipped and
//! the key spills to the next worker in its stable failover order.
//! Workers are stateless replicas of the same seeded world, so a spill
//! changes placement, never the response bytes.

use crate::metrics::FleetMetrics;
use crate::ring::{key_hash, Ring, DEFAULT_VNODES};
use gendt_faults::GendtError;
use gendt_serve::api::InfoResponse;
use gendt_sync::atomic::{AtomicU64, Ordering};
use gendt_sync::Mutex;
use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Bounded-load factor as a ratio: a worker may hold at most
/// `ceil(LOAD_NUM/LOAD_DEN × mean in-flight)` routed requests before
/// new keys spill to the next worker in their failover order (the
/// "consistent hashing with bounded loads" policy). 9/8 keeps shard
/// affinity for ~all traffic below saturation while capping how far a
/// hot shard can pull ahead of the fleet mean — under sustained
/// overload aggregate throughput approaches `workers / (9/8)` of one
/// worker's, whatever the key skew.
const LOAD_NUM: u64 = 9;
const LOAD_DEN: u64 = 8;

/// Worker transport for health/discovery, substitutable for checking.
pub trait Probe: Send + Sync {
    /// `GET /v1/healthz`: `Ok(true)` healthy, `Ok(false)` alive but
    /// unhealthy/draining, `Err` unreachable.
    fn healthz(&self, addr: &str) -> Result<bool, GendtError>;
    /// `GET /v1/info`: what the worker serves.
    fn info(&self, addr: &str) -> Result<InfoResponse, GendtError>;
}

/// One worker's last-known state.
#[derive(Clone, Debug)]
pub struct WorkerView {
    /// Stable worker id (ring member id).
    pub id: String,
    /// `host:port` the worker listens on.
    pub addr: String,
    /// In the ring right now?
    pub healthy: bool,
    /// Model names the worker advertised (empty until discovered).
    pub models: Vec<String>,
    /// Advertised checkpoint versions, aligned with `models`.
    pub versions: Vec<u64>,
    /// Last advertised queue depth.
    pub queue_depth: u64,
    /// Requests the router currently has in flight on this worker.
    pub inflight: u64,
}

struct Slot {
    addr: String,
    healthy: bool,
    models: Vec<String>,
    versions: Vec<u64>,
    queue_depth: u64,
    /// Requests the router currently has outstanding on this worker.
    /// Shared out through [`RouteGrant`] so completion can decrement
    /// without taking the membership lock.
    inflight: Arc<AtomicU64>,
}

/// A routing decision plus an RAII in-flight token: the grant holds one
/// unit of the target worker's load until dropped, which is what the
/// bounded-load limit in [`Membership::route_bounded`] counts.
pub struct RouteGrant {
    /// Chosen worker id.
    pub id: String,
    /// Chosen worker address.
    pub addr: String,
    /// True when the bounded-load limit skipped the key's owner.
    pub spilled: bool,
    token: Arc<AtomicU64>,
}

impl Drop for RouteGrant {
    fn drop(&mut self) {
        // sync: load-balancing heuristic counter only; guards no memory.
        self.token.fetch_sub(1, Ordering::Relaxed);
    }
}

struct Inner {
    workers: BTreeMap<String, Slot>,
    ring: Arc<Ring>,
}

/// The membership table plus the current ring.
pub struct Membership {
    seed: u64,
    vnodes: usize,
    metrics: Arc<FleetMetrics>,
    inner: Mutex<Inner>,
}

/// What one poll pass observed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PollStats {
    /// Probes attempted.
    pub checked: usize,
    /// Probes that failed or reported unhealthy.
    pub failed: usize,
    /// Health transitions (either direction).
    pub transitions: usize,
}

impl Membership {
    /// Empty membership routing with `seed`.
    pub fn new(seed: u64, metrics: Arc<FleetMetrics>) -> Membership {
        Membership {
            seed,
            vnodes: DEFAULT_VNODES,
            metrics,
            inner: Mutex::new(Inner {
                workers: BTreeMap::new(),
                ring: Arc::new(Ring::build(seed, &[], DEFAULT_VNODES)),
            }),
        }
    }

    /// The routing seed (`GENDT_FLEET_SEED`).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Add a worker, optimistically healthy (the supervisor registers a
    /// worker only after its ready handshake); the first poll corrects.
    pub fn register(&self, id: &str, addr: &str) {
        let mut inner = self.inner.lock();
        inner.workers.insert(
            id.to_string(),
            Slot {
                addr: addr.to_string(),
                healthy: true,
                models: Vec::new(),
                versions: Vec::new(),
                queue_depth: 0,
                inflight: Arc::new(AtomicU64::new(0)),
            },
        );
        self.rebuild_ring(&mut inner);
    }

    /// Remove a worker entirely (supervisor reaped the process).
    pub fn deregister(&self, id: &str) {
        let mut inner = self.inner.lock();
        if inner.workers.remove(id).is_some() {
            self.rebuild_ring(&mut inner);
        }
    }

    /// Route a request key to `(worker id, addr)`: ring walk from the
    /// key's owner, first healthy worker that advertises the model (a
    /// worker whose model list is still undiscovered is assumed able).
    pub fn route(&self, model: &str, scenario: &str) -> Option<(String, String)> {
        let key = key_hash(self.seed, model, scenario);
        let inner = self.inner.lock();
        let ring = inner.ring.clone();
        for id in ring.walk(key) {
            if let Some(slot) = inner.workers.get(id) {
                if slot.healthy
                    && (slot.models.is_empty() || slot.models.iter().any(|m| m == model))
                {
                    return Some((id.to_string(), slot.addr.clone()));
                }
            }
        }
        None
    }

    /// Route a stream session to its pinned owner: ring walk from the
    /// session id's hash, first healthy worker that can serve `model`
    /// (`None` for continuations, where only the opener knows the
    /// model). Unlike [`Membership::route_bounded`] there is **no**
    /// bounded-load spill — the session's carried generator state lives
    /// on exactly one worker, so load must never move a continuation to
    /// a replica that has no state for it. Placement changes only when
    /// the ring does (eviction/rejoin), and then the state is gone and
    /// the router answers with a migration notice instead.
    pub fn route_session(&self, session: &str, model: Option<&str>) -> Option<(String, String)> {
        let key = key_hash(self.seed, "stream-session", session);
        let inner = self.inner.lock();
        let ring = inner.ring.clone();
        for id in ring.walk(key) {
            if let Some(slot) = inner.workers.get(id) {
                let serves_model = match model {
                    None => true,
                    Some(m) => slot.models.is_empty() || slot.models.iter().any(|have| have == m),
                };
                if slot.healthy && serves_model {
                    return Some((id.to_string(), slot.addr.clone()));
                }
            }
        }
        None
    }

    /// [`Membership::route`] with consistent hashing under bounded
    /// loads: walk the key's failover order and take the first eligible
    /// worker whose routed in-flight count is under
    /// `ceil(1.125 × fleet mean)`; if every eligible worker is at the
    /// limit, fall back to the key's owner (the limit shapes placement,
    /// it never rejects). An idle fleet always routes to the owner, so
    /// placement stays seeded-deterministic when load is not a factor.
    /// The returned grant holds one unit of in-flight load until drop.
    pub fn route_bounded(&self, model: &str, scenario: &str) -> Option<RouteGrant> {
        let key = key_hash(self.seed, model, scenario);
        let inner = self.inner.lock();
        let ring = inner.ring.clone();
        // sync: heuristic balancing reads; each counter is independent.
        let (healthy, total_inflight) = inner
            .workers
            .values()
            .filter(|s| s.healthy)
            .fold((0u64, 0u64), |(n, t), s| {
                (n + 1, t + s.inflight.load(Ordering::Relaxed))
            });
        if healthy == 0 {
            return None;
        }
        let cap = ((total_inflight + 1) * LOAD_NUM).div_ceil(healthy * LOAD_DEN);
        let grant = |id: &str, slot: &Slot, spilled: bool| -> RouteGrant {
            // sync: load-balancing heuristic counter only.
            slot.inflight.fetch_add(1, Ordering::Relaxed);
            RouteGrant {
                id: id.to_string(),
                addr: slot.addr.clone(),
                spilled,
                token: slot.inflight.clone(),
            }
        };
        let mut owner: Option<&str> = None;
        for id in ring.walk(key) {
            let Some(slot) = inner.workers.get(id) else {
                continue;
            };
            if !slot.healthy || !(slot.models.is_empty() || slot.models.iter().any(|m| m == model))
            {
                continue;
            }
            let spilled = owner.is_some();
            owner.get_or_insert(id);
            // sync: heuristic balancing read.
            if slot.inflight.load(Ordering::Relaxed) < cap {
                if spilled {
                    // sync: monotonic counter for /metrics only.
                    self.metrics.spills.fetch_add(1, Ordering::Relaxed);
                    self.metrics.spill_to(id);
                }
                return Some(grant(id, slot, spilled));
            }
        }
        // Every eligible worker is at the limit: the owner takes it.
        let id = owner?;
        let slot = inner.workers.get(id)?;
        Some(grant(id, slot, false))
    }

    /// Forward-path failure: evict `id` from the ring immediately so
    /// the next request reroutes instead of re-timing-out. Returns true
    /// if this call performed the eviction.
    pub fn report_failure(&self, id: &str) -> bool {
        let mut inner = self.inner.lock();
        let Some(slot) = inner.workers.get_mut(id) else {
            return false;
        };
        if !slot.healthy {
            return false;
        }
        slot.healthy = false;
        // sync: monotonic counter for /metrics only.
        self.metrics
            .evictions
            .fetch_add(1, gendt_sync::atomic::Ordering::Relaxed);
        self.rebuild_ring(&mut inner);
        true
    }

    /// One health/discovery pass over every worker. Probing runs
    /// outside the lock (it does network I/O); observations apply in
    /// one locked commit, so routing sees either the old or the new
    /// membership, never a torn one.
    pub fn poll_once(&self, probe: &dyn Probe) -> PollStats {
        let targets: Vec<(String, String)> = {
            let inner = self.inner.lock();
            inner
                .workers
                .iter()
                .map(|(id, s)| (id.clone(), s.addr.clone()))
                .collect()
        };
        let mut stats = PollStats {
            checked: targets.len(),
            ..PollStats::default()
        };
        let mut observed: Vec<(String, bool, Option<InfoResponse>)> =
            Vec::with_capacity(targets.len());
        for (id, addr) in targets {
            // sync: monotonic counter for /metrics only.
            self.metrics
                .health_checks
                .fetch_add(1, gendt_sync::atomic::Ordering::Relaxed);
            let healthy = matches!(probe.healthz(&addr), Ok(true));
            let info = if healthy {
                probe.info(&addr).ok()
            } else {
                None
            };
            if !healthy {
                stats.failed += 1;
                // sync: monotonic counter for /metrics only.
                self.metrics
                    .health_check_failures
                    .fetch_add(1, gendt_sync::atomic::Ordering::Relaxed);
            }
            observed.push((id, healthy, info));
        }

        let mut inner = self.inner.lock();
        let mut changed = false;
        for (id, healthy, info) in observed {
            let Some(slot) = inner.workers.get_mut(&id) else {
                continue; // deregistered while we probed
            };
            if slot.healthy != healthy {
                stats.transitions += 1;
                changed = true;
                // sync: monotonic counters for /metrics only.
                if healthy {
                    self.metrics
                        .rejoins
                        .fetch_add(1, gendt_sync::atomic::Ordering::Relaxed);
                } else {
                    self.metrics
                        .evictions
                        .fetch_add(1, gendt_sync::atomic::Ordering::Relaxed);
                }
            }
            slot.healthy = healthy;
            if let Some(info) = info {
                slot.models = info.models.iter().map(|m| m.name.clone()).collect();
                slot.versions = info.models.iter().map(|m| m.version).collect();
                slot.queue_depth = info.queue_depth;
            }
        }
        if changed {
            self.rebuild_ring(&mut inner);
        }
        stats
    }

    /// Current state of every worker, sorted by id.
    pub fn snapshot(&self) -> Vec<WorkerView> {
        let inner = self.inner.lock();
        inner
            .workers
            .iter()
            .map(|(id, s)| WorkerView {
                id: id.clone(),
                addr: s.addr.clone(),
                healthy: s.healthy,
                models: s.models.clone(),
                versions: s.versions.clone(),
                queue_depth: s.queue_depth,
                // sync: heuristic gauge scrape for /metrics only.
                inflight: s.inflight.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Workers currently in the ring.
    pub fn healthy_count(&self) -> usize {
        let inner = self.inner.lock();
        inner.workers.values().filter(|s| s.healthy).count()
    }

    /// Union of advertised model names across healthy workers, sorted.
    pub fn model_names(&self) -> Vec<String> {
        let inner = self.inner.lock();
        let set: BTreeSet<String> = inner
            .workers
            .values()
            .filter(|s| s.healthy)
            .flat_map(|s| s.models.iter().cloned())
            .collect();
        set.into_iter().collect()
    }

    /// Addresses of healthy workers (broadcast targets for `/reload`).
    pub fn healthy_addrs(&self) -> Vec<(String, String)> {
        let inner = self.inner.lock();
        inner
            .workers
            .iter()
            .filter(|(_, s)| s.healthy)
            .map(|(id, s)| (id.clone(), s.addr.clone()))
            .collect()
    }

    /// The live ring (an immutable snapshot).
    pub fn ring(&self) -> Arc<Ring> {
        let inner = self.inner.lock();
        inner.ring.clone()
    }

    fn rebuild_ring(&self, inner: &mut Inner) {
        let healthy: Vec<String> = inner
            .workers
            .iter()
            .filter(|(_, s)| s.healthy)
            .map(|(id, _)| id.clone())
            .collect();
        inner.ring = Arc::new(Ring::build(self.seed, &healthy, self.vnodes));
        // sync: monotonic counter for /metrics only.
        self.metrics
            .ring_rebuilds
            .fetch_add(1, gendt_sync::atomic::Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gendt_serve::api::ModelInfo;

    /// Deterministic stub: a fixed health answer per address.
    struct StubProbe {
        down: Vec<String>,
    }

    impl Probe for StubProbe {
        fn healthz(&self, addr: &str) -> Result<bool, GendtError> {
            if self.down.iter().any(|d| d == addr) {
                Err(GendtError::unavailable("stub: down"))
            } else {
                Ok(true)
            }
        }

        fn info(&self, _addr: &str) -> Result<InfoResponse, GendtError> {
            Ok(InfoResponse {
                models: vec![ModelInfo {
                    name: "demo_a".to_string(),
                    version: 7,
                    n_ch: 4,
                }],
                queue_depth: 2,
                max_batch: 8,
                draining: false,
            })
        }
    }

    fn fresh() -> Membership {
        Membership::new(11, Arc::new(FleetMetrics::new()))
    }

    #[test]
    fn register_route_evict_rejoin() {
        let m = fresh();
        m.register("w0", "127.0.0.1:1000");
        m.register("w1", "127.0.0.1:1001");
        assert_eq!(m.healthy_count(), 2);
        let (id, _) = m.route("demo_a", "walk").expect("route");
        assert!(id == "w0" || id == "w1");

        // Forward failure evicts immediately; routing fails over.
        assert!(m.report_failure(&id));
        assert!(!m.report_failure(&id), "double-evict must be a no-op");
        assert_eq!(m.healthy_count(), 1);
        let (id2, _) = m.route("demo_a", "walk").expect("failover route");
        assert_ne!(id2, id);

        // A passing poll re-admits and discovers models.
        let stats = m.poll_once(&StubProbe { down: vec![] });
        assert_eq!(stats.checked, 2);
        assert_eq!(stats.transitions, 1);
        assert_eq!(m.healthy_count(), 2);
        let view = m.snapshot();
        assert!(view.iter().all(|w| w.models == vec!["demo_a".to_string()]));
        assert_eq!(m.model_names(), vec!["demo_a".to_string()]);
    }

    #[test]
    fn poll_evicts_unreachable_worker() {
        let m = fresh();
        m.register("w0", "127.0.0.1:1000");
        m.register("w1", "127.0.0.1:1001");
        let stats = m.poll_once(&StubProbe {
            down: vec!["127.0.0.1:1001".to_string()],
        });
        assert_eq!(stats.failed, 1);
        assert_eq!(m.healthy_count(), 1);
        // All traffic lands on the survivor.
        for scenario in ["walk", "bus", "tram", "city_drive", "highway"] {
            let (id, _) = m.route("demo_a", scenario).expect("route");
            assert_eq!(id, "w0");
        }
    }

    #[test]
    fn route_respects_model_ownership() {
        let m = fresh();
        m.register("w0", "127.0.0.1:1000");
        m.register("w1", "127.0.0.1:1001");
        m.poll_once(&StubProbe { down: vec![] });
        // Discovered model lists say only demo_a exists.
        assert!(m.route("demo_a", "walk").is_some());
        assert!(
            m.route("missing_model", "walk").is_none(),
            "no worker advertises missing_model"
        );
    }

    #[test]
    fn bounded_route_is_owner_when_idle() {
        let m = fresh();
        m.register("w0", "127.0.0.1:1000");
        m.register("w1", "127.0.0.1:1001");
        let (owner, _) = m.route("demo_a", "walk").expect("owner");
        for _ in 0..3 {
            let g = m.route_bounded("demo_a", "walk").expect("grant");
            assert_eq!(g.id, owner, "idle fleet must route to the ring owner");
            assert!(!g.spilled);
            // g drops here: in-flight returns to zero between requests.
        }
    }

    #[test]
    fn bounded_route_spills_past_saturated_owner() {
        let m = fresh();
        m.register("w0", "127.0.0.1:1000");
        m.register("w1", "127.0.0.1:1001");
        let (owner, _) = m.route("demo_a", "walk").expect("owner");
        // Pile held grants onto the owner until the limit trips. With
        // all load on one of two workers, cap = ceil(1.125 × mean) is
        // passed quickly; the next grant must spill to the other worker.
        let mut held = vec![m.route_bounded("demo_a", "walk").expect("grant")];
        assert_eq!(held[0].id, owner);
        let spilled = loop {
            let g = m.route_bounded("demo_a", "walk").expect("grant");
            if g.spilled {
                break g;
            }
            assert_eq!(g.id, owner);
            assert!(held.len() < 64, "bounded-load limit never tripped");
            held.push(g);
        };
        assert_ne!(spilled.id, owner, "spill must land on the other worker");
        drop(spilled);
        drop(held);
        // Load released: the owner takes the key again.
        let g = m.route_bounded("demo_a", "walk").expect("grant");
        assert_eq!(g.id, owner);
        assert!(!g.spilled);
    }

    #[test]
    fn bounded_route_single_worker_never_rejects() {
        let m = fresh();
        m.register("w0", "127.0.0.1:1000");
        // Far past any load limit, the sole worker still takes the key.
        let held: Vec<_> = (0..32)
            .map(|_| m.route_bounded("demo_a", "walk").expect("grant"))
            .collect();
        assert!(held.iter().all(|g| g.id == "w0" && !g.spilled));
    }

    #[test]
    fn session_route_is_pinned_and_load_blind() {
        let m = fresh();
        m.register("w0", "127.0.0.1:1000");
        m.register("w1", "127.0.0.1:1001");
        let (owner, addr) = m.route_session("s-abc", Some("demo_a")).expect("owner");
        // Affinity: the same session id lands on the same worker every
        // time, and a continuation (no model known) agrees with the open.
        for _ in 0..8 {
            assert_eq!(
                m.route_session("s-abc", None),
                Some((owner.clone(), addr.clone()))
            );
        }
        // Pile routed load onto the owner: bounded-load spill must not
        // move the pinned session.
        let held: Vec<_> = (0..16)
            .map(|_| m.route_bounded("demo_a", "walk").expect("grant"))
            .collect();
        assert_eq!(m.route_session("s-abc", None).expect("pinned").0, owner);
        drop(held);
    }

    #[test]
    fn session_route_moves_only_on_eviction() {
        let m = fresh();
        m.register("w0", "127.0.0.1:1000");
        m.register("w1", "127.0.0.1:1001");
        let (owner, _) = m.route_session("s-xyz", None).expect("owner");
        assert!(m.report_failure(&owner));
        let (next, _) = m.route_session("s-xyz", None).expect("failover");
        assert_ne!(next, owner, "evicted owner must not keep the session");
        // Rejoin restores the original placement (seeded ring).
        m.poll_once(&StubProbe { down: vec![] });
        assert_eq!(m.route_session("s-xyz", None).expect("restored").0, owner);
    }

    #[test]
    fn empty_membership_routes_nowhere() {
        let m = fresh();
        assert!(m.route("demo_a", "walk").is_none());
        assert_eq!(m.healthy_count(), 0);
        assert_eq!(
            m.poll_once(&StubProbe { down: vec![] }),
            PollStats::default()
        );
    }
}
