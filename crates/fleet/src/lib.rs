//! gendt-fleet: sharded multi-process serving for GenDT.
//!
//! A std-only router consistent-hashes `/v1/generate` requests by
//! `(model, scenario)` onto N worker processes, each running today's
//! single-node micro-batch server ([`gendt_serve`]) unchanged. The
//! pieces, bottom-up:
//!
//! - [`ring`] — seeded consistent-hash ring with virtual nodes; the
//!   same `GENDT_FLEET_SEED` always produces the same placement.
//! - [`membership`] — health-gated worker set. A polling loop (and the
//!   forward path, on transport failure) evicts workers from the ring;
//!   a passing poll re-admits them. Keys redistribute minimally.
//! - [`forward`] — HTTP/1.1 transport with hard timeouts, behind
//!   traits so the audit sync-check gate can substitute stubs.
//! - [`router`] — the front-end: deadline propagation, one-failover
//!   retry, verbatim worker error envelopes, `/v1/fleet` introspection.
//! - [`supervisor`] — spawns, supervises, and drains the worker pool
//!   by re-exec'ing the `gendt-fleet` binary in worker mode.
//! - [`loadgen`] — fleet-mode open-loop driver and saturation sweep
//!   (the `fleet` section of `BENCH_serve.json`).
//!
//! Determinism story: routing is a pure function of
//! `(seed, membership, model, scenario)`, worker seeds and the
//! open-loop arrival schedule come from [`gendt_rng`]-style seeded
//! streams, so a fleet run is replayable end-to-end.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod forward;
pub mod loadgen;
pub mod membership;
pub mod metrics;
pub mod ring;
pub mod router;
pub mod supervisor;

pub use forward::{Forwarder, HttpForwarder, HttpProbe};
pub use membership::{Membership, PollStats, Probe, RouteGrant, WorkerView};
pub use metrics::FleetMetrics;
pub use ring::{key_hash, Ring, DEFAULT_VNODES};
pub use router::{dispatch_generate, route_serve, RouterCfg, RouterHandle};
pub use supervisor::{drain_pool, maybe_run_worker, spawn_pool, WorkerProc, WorkerSpec};
