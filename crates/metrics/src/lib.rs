//! # gendt-metrics — time-series fidelity metrics
//!
//! The evaluation metrics of the GenDT paper (§5.1):
//!
//! * [`mae`] — mean absolute error between aligned series.
//! * [`dtw`] — dynamic time warping distance (full O(n·m) dynamic
//!   program, normalized by the warping-path length), robust to the small
//!   temporal shifts drive-test repetitions exhibit.
//! * [`hwd`] — histogram Wasserstein distance: the 1-D Wasserstein-1
//!   distance between the empirical distributions of two series,
//!   quantifying how well generated data matches the real distribution.
//! * Support: histograms, empirical CDFs, rate-of-change, and summary
//!   statistics used by the dataset tables.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize};

/// Mean absolute error between two equal-length series.
///
/// # Panics
/// Panics if the series lengths differ or are empty.
pub fn mae(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "mae: length mismatch");
    assert!(!a.is_empty(), "mae: empty series");
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| (x - y).abs())
        .sum::<f64>()
        / a.len() as f64
}

/// Root-mean-square error between two equal-length series.
pub fn rmse(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "rmse: length mismatch");
    assert!(!a.is_empty(), "rmse: empty series");
    (a.iter()
        .zip(b.iter())
        .map(|(x, y)| (x - y).powi(2))
        .sum::<f64>()
        / a.len() as f64)
        .sqrt()
}

/// Dynamic-time-warping distance between two series with absolute-value
/// local cost, normalized by the optimal path length so values are
/// comparable across series lengths.
///
/// Memory is O(min(n, m)); time is O(n·m).
///
/// # Panics
/// Panics if either series is empty.
pub fn dtw(a: &[f64], b: &[f64]) -> f64 {
    assert!(!a.is_empty() && !b.is_empty(), "dtw: empty series");
    // Keep the inner dimension the shorter one for memory locality.
    let (outer, inner) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let m = inner.len();
    const INF: f64 = f64::INFINITY;
    // (cost, path_len) rows.
    let mut prev = vec![(INF, 0u32); m + 1];
    let mut cur = vec![(INF, 0u32); m + 1];
    prev[0] = (0.0, 0);
    for &x in outer {
        cur[0] = (INF, 0);
        for (j, &y) in inner.iter().enumerate() {
            let c = (x - y).abs();
            let diag = prev[j];
            let up = prev[j + 1];
            let left = cur[j];
            let best = [diag, up, left]
                .into_iter()
                .min_by(|p, q| p.0.partial_cmp(&q.0).unwrap_or(std::cmp::Ordering::Equal))
                .unwrap();
            cur[j + 1] = (best.0 + c, best.1 + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    let (cost, len) = prev[m];
    cost / len.max(1) as f64
}

/// An equal-width histogram over a fixed range.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Histogram {
    /// Inclusive lower bound of the first bin.
    pub lo: f64,
    /// Exclusive upper bound of the last bin (values outside clamp in).
    pub hi: f64,
    /// Bin counts.
    pub counts: Vec<u64>,
}

impl Histogram {
    /// Build a histogram of `xs` with `bins` equal-width bins over
    /// `[lo, hi]`; out-of-range values clamp to the edge bins.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(xs: &[f64], lo: f64, hi: f64, bins: usize) -> Self {
        let mut h = Self::empty(lo, hi, bins);
        for &x in xs {
            h.push(x);
        }
        h
    }

    /// An empty histogram ready for streaming [`Histogram::push`] calls
    /// (the serving layer's latency and batch-size accumulators).
    ///
    /// # Panics
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn empty(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range is empty");
        Histogram {
            lo,
            hi,
            counts: vec![0u64; bins],
        }
    }

    /// Record one observation (out-of-range values clamp to edge bins).
    pub fn push(&mut self, x: f64) {
        let bins = self.counts.len();
        let w = (self.hi - self.lo) / bins as f64;
        let idx = (((x - self.lo) / w).floor() as i64).clamp(0, bins as i64 - 1) as usize;
        self.counts[idx] += 1;
    }

    /// Total count.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Normalized bin probabilities (empty histogram gives zeros).
    pub fn probabilities(&self) -> Vec<f64> {
        let n = self.total();
        if n == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts.iter().map(|&c| c as f64 / n as f64).collect()
    }

    /// Bin centers.
    pub fn centers(&self) -> Vec<f64> {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        (0..self.counts.len())
            .map(|i| self.lo + (i as f64 + 0.5) * w)
            .collect()
    }

    /// Merge another snapshot of the same histogram family into this
    /// one by adding bin counts elementwise — the federation primitive:
    /// per-worker latency histograms with identical `[lo, hi]`/bin
    /// configuration combine into the fleet-wide distribution exactly
    /// as if every observation had streamed into a single process.
    ///
    /// The operation is associative and commutative, so merging N
    /// worker scrapes is order-independent.
    ///
    /// # Panics
    /// Panics if the two histograms differ in range or bin count —
    /// bucket-merging heterogeneous configurations would silently
    /// misattribute counts.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.lo == other.lo && self.hi == other.hi && self.counts.len() == other.counts.len(),
            "histogram merge: shape mismatch ([{}, {}] x{} vs [{}, {}] x{})",
            self.lo,
            self.hi,
            self.counts.len(),
            other.lo,
            other.hi,
            other.counts.len()
        );
        for (c, &o) in self.counts.iter_mut().zip(other.counts.iter()) {
            *c += o;
        }
    }

    /// Streaming quantile estimate: locate the bin holding the `q`-th
    /// observation and interpolate linearly within it (the classic
    /// grouped-data quantile). Accuracy is bounded by the bin width —
    /// the exact path for raw samples is [`quantile_sorted`].
    ///
    /// Returns `f64::NAN` for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        let n = self.total();
        if n == 0 {
            return f64::NAN;
        }
        let q = q.clamp(0.0, 1.0);
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        // Rank of the wanted observation in [0, n].
        let rank = q * n as f64;
        let mut below = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let upto = below + c;
            if rank <= upto as f64 {
                let within = (rank - below as f64) / c as f64;
                return self.lo + (i as f64 + within.clamp(0.0, 1.0)) * w;
            }
            below = upto;
        }
        self.hi
    }
}

/// The latency summary the serving layer reports: median plus the tail
/// quantiles operators alarm on, up to p99.9 for fleet-scale SLOs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Quantiles {
    /// Median (50th percentile).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// 99.9th percentile — the deep tail open-loop load exposes.
    pub p999: f64,
}

impl Quantiles {
    /// Streaming estimate from a binned [`Histogram`] (accuracy bounded
    /// by the bin width). NaN quadruple for an empty histogram.
    pub fn from_histogram(h: &Histogram) -> Quantiles {
        Quantiles {
            p50: h.quantile(0.50),
            p95: h.quantile(0.95),
            p99: h.quantile(0.99),
            p999: h.quantile(0.999),
        }
    }

    /// Exact quantiles of raw samples: sorts a copy and interpolates via
    /// [`quantile_sorted`].
    ///
    /// # Panics
    /// Panics if `xs` is empty.
    pub fn from_samples(xs: &[f64]) -> Quantiles {
        assert!(!xs.is_empty(), "quantiles of an empty sample");
        let mut v = xs.to_vec();
        v.sort_by(|p, q| p.partial_cmp(q).unwrap_or(std::cmp::Ordering::Equal));
        Quantiles {
            p50: quantile_sorted(&v, 0.50),
            p95: quantile_sorted(&v, 0.95),
            p99: quantile_sorted(&v, 0.99),
            p999: quantile_sorted(&v, 0.999),
        }
    }
}

/// 1-D Wasserstein-1 distance between the empirical distributions of two
/// samples (the paper's HWD metric). Computed from quantile functions on a
/// merged grid — the bin-width → 0 limit of a binned-histogram version.
///
/// # Panics
/// Panics if either sample is empty.
pub fn hwd(a: &[f64], b: &[f64]) -> f64 {
    assert!(!a.is_empty() && !b.is_empty(), "hwd: empty sample");
    let mut xa = a.to_vec();
    let mut xb = b.to_vec();
    xa.sort_by(|p, q| p.partial_cmp(q).unwrap_or(std::cmp::Ordering::Equal));
    xb.sort_by(|p, q| p.partial_cmp(q).unwrap_or(std::cmp::Ordering::Equal));
    let n = (xa.len().max(xb.len())).clamp(64, 4096);
    let mut acc = 0.0;
    for k in 0..n {
        let q = (k as f64 + 0.5) / n as f64;
        acc += (quantile_sorted(&xa, q) - quantile_sorted(&xb, q)).abs();
    }
    acc / n as f64
}

/// Quantile of a pre-sorted slice with linear interpolation.
///
/// # Panics
/// Panics if `xs` is empty.
pub fn quantile_sorted(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty slice");
    let q = q.clamp(0.0, 1.0);
    let pos = q * (xs.len() - 1) as f64;
    let i = pos.floor() as usize;
    let frac = pos - i as f64;
    if i + 1 < xs.len() {
        xs[i] * (1.0 - frac) + xs[i + 1] * frac
    } else {
        xs[i]
    }
}

/// Empirical CDF evaluated at the sample points: `(x, F(x))` pairs sorted
/// by `x`.
pub fn ecdf(xs: &[f64]) -> Vec<(f64, f64)> {
    let mut v = xs.to_vec();
    v.sort_by(|p, q| p.partial_cmp(q).unwrap_or(std::cmp::Ordering::Equal));
    let n = v.len() as f64;
    v.into_iter()
        .enumerate()
        .map(|(i, x)| (x, (i + 1) as f64 / n))
        .collect()
}

/// Mean of a slice (0 for empty).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation (0 for fewer than 2 elements).
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Mean absolute first difference — the paper's "rate of change" (ROC)
/// statistic from Table 2.
pub fn rate_of_change(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    xs.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f64>() / (xs.len() - 1) as f64
}

/// The triple of fidelity metrics the paper reports per KPI.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Fidelity {
    /// Mean absolute error.
    pub mae: f64,
    /// Dynamic-time-warping distance (path-normalized).
    pub dtw: f64,
    /// Histogram Wasserstein distance.
    pub hwd: f64,
}

impl Fidelity {
    /// Compute all three metrics between a real and generated series.
    pub fn compute(real: &[f64], generated: &[f64]) -> Fidelity {
        Fidelity {
            mae: mae(real, generated),
            dtw: dtw(real, generated),
            hwd: hwd(real, generated),
        }
    }

    /// Average several fidelity results (e.g. across scenarios).
    pub fn average(items: &[Fidelity]) -> Fidelity {
        let n = items.len().max(1) as f64;
        Fidelity {
            mae: items.iter().map(|f| f.mae).sum::<f64>() / n,
            dtw: items.iter().map(|f| f.dtw).sum::<f64>() / n,
            hwd: items.iter().map(|f| f.hwd).sum::<f64>() / n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mae_known_value() {
        assert!((mae(&[1.0, 2.0, 3.0], &[2.0, 2.0, 5.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mae_identical_is_zero() {
        let xs = [0.5, -1.0, 2.0];
        assert_eq!(mae(&xs, &xs), 0.0);
    }

    #[test]
    fn dtw_identical_is_zero() {
        let xs: Vec<f64> = (0..50).map(|i| (i as f64 * 0.3).sin()).collect();
        assert!(dtw(&xs, &xs) < 1e-12);
    }

    #[test]
    fn dtw_tolerates_time_shift_better_than_mae() {
        let a: Vec<f64> = (0..100).map(|i| (i as f64 * 0.2).sin()).collect();
        let b: Vec<f64> = (0..100).map(|i| ((i as f64 - 4.0) * 0.2).sin()).collect();
        let m = mae(&a, &b);
        let d = dtw(&a, &b);
        assert!(d < 0.5 * m, "dtw {d} should beat mae {m} on shifted series");
    }

    #[test]
    fn dtw_handles_unequal_lengths() {
        let a: Vec<f64> = (0..80).map(|i| (i as f64 * 0.2).sin()).collect();
        let b: Vec<f64> = (0..120).map(|i| (i as f64 * 0.1333).sin()).collect();
        let d = dtw(&a, &b);
        assert!(d.is_finite());
        assert!(d < 0.3, "stretched same shape should be close: {d}");
    }

    #[test]
    fn dtw_symmetry() {
        let a: Vec<f64> = (0..40).map(|i| (i as f64).cos()).collect();
        let b: Vec<f64> = (0..55).map(|i| (i as f64 * 1.1).cos()).collect();
        assert!((dtw(&a, &b) - dtw(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn hwd_identical_distributions_is_zero() {
        let xs: Vec<f64> = (0..1000).map(|i| (i % 17) as f64).collect();
        assert!(hwd(&xs, &xs) < 1e-12);
    }

    #[test]
    fn hwd_shifted_distribution_equals_shift() {
        let a: Vec<f64> = (0..2000).map(|i| (i % 100) as f64 / 10.0).collect();
        let b: Vec<f64> = a.iter().map(|x| x + 3.0).collect();
        let d = hwd(&a, &b);
        assert!(
            (d - 3.0).abs() < 0.05,
            "W1 of a 3-shift should be 3, got {d}"
        );
    }

    #[test]
    fn hwd_is_symmetric() {
        let a: Vec<f64> = (0..500).map(|i| (i as f64 * 0.37).sin() * 10.0).collect();
        let b: Vec<f64> = (0..700).map(|i| (i as f64 * 0.11).cos() * 8.0).collect();
        assert!((hwd(&a, &b) - hwd(&b, &a)).abs() < 1e-9);
    }

    #[test]
    fn hwd_insensitive_to_shuffling() {
        let a: Vec<f64> = (0..300).map(|i| (i % 30) as f64).collect();
        let mut b = a.clone();
        b.reverse();
        assert!(hwd(&a, &b) < 1e-9);
    }

    #[test]
    fn histogram_counts_and_probs() {
        let h = Histogram::new(&[0.1, 0.2, 0.9, 1.5, -4.0], 0.0, 1.0, 2);
        // -4 clamps into bin 0; 1.5 clamps into bin 1.
        assert_eq!(h.counts, vec![3, 2]);
        let p = h.probabilities();
        assert!((p[0] - 0.6).abs() < 1e-12);
        assert_eq!(h.total(), 5);
        assert_eq!(h.centers(), vec![0.25, 0.75]);
    }

    #[test]
    fn histogram_push_matches_batch_constructor() {
        let xs = [0.1, 0.2, 0.9, 1.5, -4.0, 0.55];
        let batch = Histogram::new(&xs, 0.0, 1.0, 4);
        let mut streamed = Histogram::empty(0.0, 1.0, 4);
        for &x in &xs {
            streamed.push(x);
        }
        assert_eq!(batch.counts, streamed.counts);
    }

    #[test]
    fn histogram_quantile_tracks_exact_within_bin_width() {
        // 10k uniform-ish samples over [0, 100): with 100 bins the
        // streaming estimate must sit within one bin width of the exact
        // sorted-sample quantile.
        let xs: Vec<f64> = (0..10_000).map(|i| (i % 1000) as f64 / 10.0).collect();
        let h = Histogram::new(&xs, 0.0, 100.0, 100);
        let stream = Quantiles::from_histogram(&h);
        let exact = Quantiles::from_samples(&xs);
        let bin_w = 1.0;
        assert!(
            (stream.p50 - exact.p50).abs() <= bin_w,
            "{stream:?} vs {exact:?}"
        );
        assert!(
            (stream.p95 - exact.p95).abs() <= bin_w,
            "{stream:?} vs {exact:?}"
        );
        assert!(
            (stream.p99 - exact.p99).abs() <= bin_w,
            "{stream:?} vs {exact:?}"
        );
    }

    #[test]
    fn histogram_quantile_orders_and_bounds() {
        let xs: Vec<f64> = (0..500).map(|i| (i as f64 * 0.731).sin() * 50.0).collect();
        let h = Histogram::new(&xs, -50.0, 50.0, 64);
        let q = Quantiles::from_histogram(&h);
        assert!(
            q.p50 <= q.p95 && q.p95 <= q.p99 && q.p99 <= q.p999,
            "{q:?} not monotone"
        );
        assert!(q.p50 >= -50.0 && q.p999 <= 50.0);
        assert!(h.quantile(0.0) >= -50.0);
        assert!(h.quantile(1.0) <= 50.0);
    }

    #[test]
    fn empty_histogram_quantile_is_nan() {
        let h = Histogram::empty(0.0, 1.0, 8);
        assert!(h.quantile(0.5).is_nan());
        assert!(Quantiles::from_histogram(&h).p99.is_nan());
    }

    #[test]
    fn from_samples_known_values() {
        // 1..=100: p50 interpolates to 50.5, p95 to 95.05, p99 to 99.01,
        // p99.9 to 99.901.
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let q = Quantiles::from_samples(&xs);
        assert!((q.p50 - 50.5).abs() < 1e-9, "p50 {}", q.p50);
        assert!((q.p95 - 95.05).abs() < 1e-9, "p95 {}", q.p95);
        assert!((q.p99 - 99.01).abs() < 1e-9, "p99 {}", q.p99);
        assert!((q.p999 - 99.901).abs() < 1e-9, "p999 {}", q.p999);
    }

    #[test]
    #[should_panic(expected = "quantiles of an empty sample")]
    fn from_samples_panics_on_empty_input() {
        let _ = Quantiles::from_samples(&[]);
    }

    #[test]
    fn single_sample_pins_every_quantile() {
        let q = Quantiles::from_samples(&[42.5]);
        assert_eq!(q.p50, 42.5);
        assert_eq!(q.p95, 42.5);
        assert_eq!(q.p99, 42.5);
        assert_eq!(q.p999, 42.5);
    }

    #[test]
    fn all_equal_samples_collapse_to_the_value() {
        let xs = vec![7.25; 1000];
        let q = Quantiles::from_samples(&xs);
        assert_eq!(q.p50, 7.25);
        assert_eq!(q.p95, 7.25);
        assert_eq!(q.p99, 7.25);
        assert_eq!(q.p999, 7.25);
        // The streaming path must agree to within one bin width even in
        // the degenerate single-spike distribution.
        let h = Histogram::new(&xs, 0.0, 10.0, 100);
        let s = Quantiles::from_histogram(&h);
        let bin_w = 0.1;
        assert!((s.p50 - 7.25).abs() <= bin_w, "{s:?}");
        assert!((s.p99 - 7.25).abs() <= bin_w, "{s:?}");
    }

    #[test]
    fn histogram_and_raw_quantiles_agree_on_skewed_latencies() {
        // Long-tailed latency-like distribution: i^1.5 scaled — the shape
        // /metrics actually summarizes. Histogram estimates must track
        // the exact sorted-sample quantiles within one bin width.
        let xs: Vec<f64> = (0..5000).map(|i| (i as f64).powf(1.5) / 3000.0).collect();
        let hi = xs.last().copied().unwrap() + 1e-9;
        let h = Histogram::new(&xs, 0.0, hi, 200);
        let stream = Quantiles::from_histogram(&h);
        let exact = Quantiles::from_samples(&xs);
        let bin_w = hi / 200.0;
        assert!(
            (stream.p50 - exact.p50).abs() <= bin_w,
            "{stream:?} vs {exact:?}"
        );
        assert!(
            (stream.p95 - exact.p95).abs() <= bin_w,
            "{stream:?} vs {exact:?}"
        );
        assert!(
            (stream.p99 - exact.p99).abs() <= bin_w,
            "{stream:?} vs {exact:?}"
        );
    }

    /// Shard `xs` round-robin into `n` histograms with the given shape —
    /// the test stand-in for N workers each observing a slice of the
    /// fleet's traffic.
    fn shards(xs: &[f64], n: usize, lo: f64, hi: f64, bins: usize) -> Vec<Histogram> {
        let mut hs: Vec<Histogram> = (0..n).map(|_| Histogram::empty(lo, hi, bins)).collect();
        for (i, &x) in xs.iter().enumerate() {
            hs[i % n].push(x);
        }
        hs
    }

    #[test]
    fn histogram_merge_equals_single_process() {
        let xs: Vec<f64> = (0..5000).map(|i| ((i * 37) % 997) as f64 / 10.0).collect();
        let single = Histogram::new(&xs, 0.0, 100.0, 64);
        let parts = shards(&xs, 4, 0.0, 100.0, 64);
        let mut merged = Histogram::empty(0.0, 100.0, 64);
        for p in &parts {
            merged.merge(p);
        }
        assert_eq!(merged.counts, single.counts);
        assert_eq!(merged.total(), single.total());
        // Quantiles of the merged view match the single-process view
        // exactly: same bins, same counts.
        let qm = Quantiles::from_histogram(&merged);
        let qs = Quantiles::from_histogram(&single);
        assert_eq!(qm, qs);
    }

    #[test]
    fn histogram_merge_is_order_independent() {
        let xs: Vec<f64> = (0..3000).map(|i| ((i * 13) % 701) as f64 / 7.0).collect();
        let parts = shards(&xs, 5, 0.0, 100.0, 40);
        let mut forward = Histogram::empty(0.0, 100.0, 40);
        for p in &parts {
            forward.merge(p);
        }
        let mut backward = Histogram::empty(0.0, 100.0, 40);
        for p in parts.iter().rev() {
            backward.merge(p);
        }
        assert_eq!(forward.counts, backward.counts);
    }

    #[test]
    fn histogram_merge_is_associative() {
        let xs: Vec<f64> = (0..2400).map(|i| ((i * 11) % 499) as f64 / 5.0).collect();
        let parts = shards(&xs, 3, 0.0, 100.0, 32);
        // (a + b) + c
        let mut left = parts[0].clone();
        left.merge(&parts[1]);
        left.merge(&parts[2]);
        // a + (b + c)
        let mut bc = parts[1].clone();
        bc.merge(&parts[2]);
        let mut right = parts[0].clone();
        right.merge(&bc);
        assert_eq!(left.counts, right.counts);
    }

    #[test]
    fn histogram_merge_with_empty_is_identity() {
        let xs = [1.0, 2.0, 3.0, 9.5];
        let mut h = Histogram::new(&xs, 0.0, 10.0, 10);
        let before = h.counts.clone();
        h.merge(&Histogram::empty(0.0, 10.0, 10));
        assert_eq!(h.counts, before);
    }

    #[test]
    #[should_panic(expected = "histogram merge: shape mismatch")]
    fn histogram_merge_rejects_shape_mismatch() {
        let mut a = Histogram::empty(0.0, 10.0, 10);
        let b = Histogram::empty(0.0, 10.0, 20);
        a.merge(&b);
    }

    #[test]
    fn ecdf_is_monotone_to_one() {
        let e = ecdf(&[3.0, 1.0, 2.0]);
        assert_eq!(e[0].0, 1.0);
        assert!((e.last().unwrap().1 - 1.0).abs() < 1e-12);
        for w in e.windows(2) {
            assert!(w[1].0 >= w[0].0 && w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [0.0, 10.0];
        assert_eq!(quantile_sorted(&xs, 0.5), 5.0);
        assert_eq!(quantile_sorted(&xs, 0.0), 0.0);
        assert_eq!(quantile_sorted(&xs, 1.0), 10.0);
    }

    #[test]
    fn stats_helpers() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
        assert!((rate_of_change(&[1.0, 3.0, 2.0]) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn fidelity_average() {
        let a = Fidelity {
            mae: 1.0,
            dtw: 2.0,
            hwd: 3.0,
        };
        let b = Fidelity {
            mae: 3.0,
            dtw: 4.0,
            hwd: 5.0,
        };
        let avg = Fidelity::average(&[a, b]);
        assert_eq!(
            avg,
            Fidelity {
                mae: 2.0,
                dtw: 3.0,
                hwd: 4.0
            }
        );
    }

    #[test]
    fn rmse_at_least_mae() {
        let a = [1.0, 5.0, -2.0];
        let b = [0.0, 0.0, 0.0];
        assert!(rmse(&a, &b) >= mae(&a, &b));
    }
}
