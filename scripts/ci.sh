#!/usr/bin/env bash
# Tier-1 gate: build, tests, lint, and the audit layer for the whole
# workspace. Run from the repo root: ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

if command -v rustfmt >/dev/null 2>&1; then
  cargo fmt --check
else
  echo "ci: rustfmt not installed, skipping format check"
fi

cargo build --release
cargo test -q
cargo clippy --workspace -- -D warnings

# Verification layer (crates/audit): repo-invariant lint, per-op
# finite-difference gradcheck, tape verifier, and a sanitized
# (GENDT_SANITIZE) train step + generation smoke run.
cargo run --release -p gendt-audit -- lint
cargo run --release -p gendt-audit -- gradcheck
cargo run --release -p gendt-audit -- verify
cargo run --release -p gendt-audit -- smoke

# Trace smoke gate: tiny train + generation with GENDT_TRACE active,
# asserting bitwise parity with the untraced run and that the exported
# Chrome-trace JSON parses with the expected spans + telemetry records.
cargo run --release -p gendt-audit -- trace-smoke

# Plan parity gate: the compiled-plan executor (GENDT_PLAN) must be
# bitwise-identical to the interpreted tape for training (weights +
# loss trace) and for single/batched generation, including cached
# plan replays.
cargo run --release -p gendt-audit -- plan-parity

# Concurrency gate: the interleave model checker explores >10k thread
# schedules of the real scheduler/registry/cache state machines through
# the gendt-sync facade (forward pass stubbed), then proves every
# detector fires on seeded-bug fixtures with a replayable token. The
# whole run is bounded (seeded random + bounded-preemption DFS) and
# stamps its explored-schedule count; budget is well under a minute.
cargo run --release -p gendt-audit -- sync-check

# Chaos gate: a real in-process server and a real trainer under seeded
# fault schedules (io_err@serve.batch, io_err@registry.scan,
# drop@http.accept, io_err@checkpoint.write). Asserts typed shed
# envelopes with Retry-After, retry absorption on /v1/reload, crash-safe
# checkpoints with fallback past torn files, and bitwise-identical
# output once the faults clear.
cargo run --release -p gendt-audit -- chaos

# Stream gate: the stateful /v1/stream surface end to end. Asserts the
# concatenation of a session's chunks across open + continuations is
# bitwise-identical to the one-shot /v1/generate series in BOTH the
# interpreted and GENDT_PLAN=1 compiled-plan modes (and that the two
# modes agree), that a mid-stream deadline yields a `deadline` trailer
# with a resumable session, and that draining refuses continuations of
# shed sessions with a typed 503.
cargo run --release -p gendt-audit -- stream-smoke

# Serving layer (crates/serve): one end-to-end request against an
# in-process server, then a CI-sized load run refreshing BENCH_serve.json,
# then a CI-sized open-loop stream-session run refreshing its `stream`
# section (the committed artifact is regenerated at full scale).
cargo run --release -p gendt-serve --bin gendt-loadgen -- --smoke
cargo run --release -p gendt-serve --bin gendt-loadgen -- --quick --out BENCH_serve.json
cargo run --release -p gendt-serve --bin gendt-loadgen -- --stream --quick --out BENCH_serve.json

# Fleet gate (crates/fleet): router + 2 real worker processes. Asserts
# bitwise parity with single-node serving across all five scenarios,
# failover after killing a worker (typed retryable 503 envelopes, at
# least one success, no stranded request), membership convergence on
# /v1/fleet, and a clean two-phase drain.
cargo run --release -p gendt-fleet --bin gendt-fleet -- smoke

# Observability gate (crates/obs): a 2-worker fleet with tracing on and
# off. Asserts traced responses stay bitwise-identical to the untraced
# baseline, every request's Gendt-Trace-Id lands in both the router's
# and a worker's /v1/debug/trace drain, gendt-obs assembles one valid
# clock-aligned timeline stitching each id across process lanes, the
# router's federated /v1/metrics equals the sum of per-worker scrapes
# (with SLO gauges and worker= labeled series), and both flight
# recorders hold the request ids.
cargo run --release -p gendt-audit -- obs-smoke
