#!/usr/bin/env bash
# Tier-1 gate: build, tests, and lint for the whole workspace.
# Run from the repo root: ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace -- -D warnings
