//! Randomized property tests over the core invariants of the substrates:
//! matrix algebra, autograd correctness, metric axioms, geographic
//! projections, and KPI physical ranges.
//!
//! These were originally written against `proptest`; the offline build
//! environment has no crates.io access, so they now run on a small
//! seeded-case harness over `gendt_rng::Rng` instead. Coverage is the
//! same shape — each property is checked across 64 independently seeded
//! random cases — but without proptest's shrinking.

use gendt_data::kpi_types::Kpi;
use gendt_geo::coords::{LatLon, Projection, XY};
use gendt_metrics as metrics;
use gendt_nn::{Graph, Matrix, ParamStore, Rng};

const CASES: u64 = 64;

/// Run `body` for `CASES` deterministic seeds, giving each case its own RNG.
fn for_cases(name: &str, mut body: impl FnMut(&mut Rng)) {
    for case in 0..CASES {
        let mut rng = Rng::seed_from(0x9e37_79b9 ^ (case << 8));
        let _ = name; // kept in signature for failure-message call sites
        body(&mut rng);
    }
}

fn small_vec(rng: &mut Rng, max_len: usize) -> Vec<f64> {
    let n = 1 + rng.gen_range(max_len - 1);
    (0..n).map(|_| rng.uniform(-50.0, 50.0)).collect()
}

// ---------- metrics ----------

#[test]
fn mae_is_nonnegative_and_zero_iff_equal() {
    for_cases("mae", |rng| {
        let xs = small_vec(rng, 64);
        assert_eq!(metrics::mae(&xs, &xs), 0.0);
        let shifted: Vec<f64> = xs.iter().map(|v| v + 1.0).collect();
        assert!((metrics::mae(&xs, &shifted) - 1.0).abs() < 1e-9);
    });
}

#[test]
fn dtw_is_symmetric_and_bounded_by_mae() {
    for_cases("dtw", |rng| {
        let xs = small_vec(rng, 48);
        let ys = small_vec(rng, 48);
        let d1 = metrics::dtw(&xs, &ys);
        let d2 = metrics::dtw(&ys, &xs);
        assert!((d1 - d2).abs() < 1e-9);
        assert!(d1 >= 0.0);
        if xs.len() == ys.len() {
            // The warping path that matches index-to-index is available,
            // so optimal normalized DTW cost can't exceed the MAE.
            assert!(d1 <= metrics::mae(&xs, &ys) + 1e-9);
        }
    });
}

#[test]
fn hwd_translation_equivariance() {
    for_cases("hwd", |rng| {
        let xs = small_vec(rng, 64);
        let shift = rng.uniform(-10.0, 10.0);
        let ys: Vec<f64> = xs.iter().map(|v| v + shift).collect();
        let d = metrics::hwd(&xs, &ys);
        assert!(
            (d - shift.abs()).abs() < 0.3,
            "hwd {} vs |shift| {}",
            d,
            shift.abs()
        );
    });
}

#[test]
fn quantiles_are_monotone() {
    for_cases("quantiles", |rng| {
        let mut xs = small_vec(rng, 64);
        let q1 = rng.uniform01();
        let q2 = rng.uniform01();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        assert!(metrics::quantile_sorted(&xs, lo) <= metrics::quantile_sorted(&xs, hi) + 1e-12);
    });
}

// ---------- geo ----------

#[test]
fn projection_roundtrip() {
    for_cases("projection", |rng| {
        let lat = rng.uniform(-60.0, 60.0);
        let lon = rng.uniform(-170.0, 170.0);
        let dlat = rng.uniform(-0.2, 0.2);
        let dlon = rng.uniform(-0.2, 0.2);
        let proj = Projection::new(LatLon::new(lat, lon));
        let p = LatLon::new(lat + dlat, lon + dlon);
        let back = proj.to_latlon(proj.to_xy(p));
        assert!((back.lat - p.lat).abs() < 1e-9);
        assert!((back.lon - p.lon).abs() < 1e-9);
    });
}

#[test]
fn bearing_diff_is_metric_like() {
    for_cases("bearing", |rng| {
        let a = rng.uniform(0.0, 360.0);
        let b = rng.uniform(0.0, 360.0);
        let d = gendt_geo::bearing_diff_deg(a, b);
        assert!((0.0..=180.0).contains(&d));
        assert!((gendt_geo::bearing_diff_deg(b, a) - d).abs() < 1e-9);
        assert!(gendt_geo::bearing_diff_deg(a, a) < 1e-9);
    });
}

#[test]
fn xy_distance_triangle_inequality() {
    for_cases("triangle", |rng| {
        let pt = |rng: &mut Rng| XY::new(rng.uniform(-1e4, 1e4), rng.uniform(-1e4, 1e4));
        let a = pt(rng);
        let b = pt(rng);
        let c = pt(rng);
        assert!(a.dist(&c) <= a.dist(&b) + b.dist(&c) + 1e-6);
    });
}

// ---------- KPI normalization ----------

#[test]
fn kpi_normalization_roundtrips_in_range() {
    for_cases("kpi_roundtrip", |rng| {
        let v01 = rng.uniform01();
        for kpi in [Kpi::Rsrp, Kpi::Rsrq, Kpi::Sinr, Kpi::Serving] {
            let (lo, hi) = kpi.range();
            let v = lo + v01 * (hi - lo);
            let back = kpi.denormalize(kpi.normalize(v));
            assert!((back - v).abs() < 1e-3, "{:?}: {} -> {}", kpi, v, back);
        }
    });
}

#[test]
fn kpi_denormalize_always_in_physical_range() {
    for_cases("kpi_range", |rng| {
        let n = rng.uniform(-3.0, 3.0) as f32;
        for kpi in [Kpi::Rsrp, Kpi::Rsrq, Kpi::Sinr, Kpi::Cqi, Kpi::Serving] {
            let (lo, hi) = kpi.range();
            let v = kpi.denormalize(n);
            assert!((lo..=hi).contains(&v), "{:?} out of range: {}", kpi, v);
        }
    });
}

// ---------- matrix / autograd ----------

#[test]
fn matmul_distributes_over_addition() {
    for_cases("matmul_distributes", |rng| {
        let rand_mat = |rng: &mut Rng, r: usize, c: usize| {
            Matrix::from_vec(
                r,
                c,
                (0..r * c).map(|_| rng.uniform(-2.0, 2.0) as f32).collect(),
            )
        };
        let a = rand_mat(rng, 3, 4);
        let b = rand_mat(rng, 4, 2);
        let c = rand_mat(rng, 4, 2);
        let mut bc = b.clone();
        bc.add_assign(&c);
        let lhs = a.matmul(&bc);
        let mut rhs = a.matmul(&b);
        rhs.add_assign(&a.matmul(&c));
        for (x, y) in lhs.data.iter().zip(rhs.data.iter()) {
            assert!((x - y).abs() < 1e-3);
        }
    });
}

#[test]
fn autograd_matches_finite_differences_on_random_graphs() {
    for_cases("autograd_fd", |rng| {
        // Random two-layer tanh network; check d loss / d w numerically.
        let mut store = ParamStore::new();
        let w = store.add(
            "w",
            Matrix::from_vec(
                2,
                2,
                (0..4).map(|_| rng.uniform(-1.0, 1.0) as f32).collect(),
            ),
        );
        let x_data = Matrix::from_vec(
            3,
            2,
            (0..6).map(|_| rng.uniform(-1.0, 1.0) as f32).collect(),
        );
        let t_data = Matrix::from_vec(
            3,
            2,
            (0..6).map(|_| rng.uniform(-1.0, 1.0) as f32).collect(),
        );
        let eval = |store: &ParamStore| -> f32 {
            let mut g = Graph::new();
            let x = g.input(x_data.clone());
            let wn = g.param(store, w);
            let h = g.matmul(x, wn);
            let a = g.tanh(h);
            let t = g.input(t_data.clone());
            let loss = g.mse_loss(a, t);
            g.value(loss).data[0]
        };
        // Analytic.
        store.zero_grad();
        {
            let mut g = Graph::new();
            let x = g.input(x_data.clone());
            let wn = g.param(&store, w);
            let h = g.matmul(x, wn);
            let a = g.tanh(h);
            let t = g.input(t_data.clone());
            let loss = g.mse_loss(a, t);
            g.backward(loss, &mut store);
        }
        let analytic = store.grad(w).clone();
        let eps = 1e-3f32;
        for k in 0..4 {
            let orig = store.value(w).data[k];
            store.value_mut(w).data[k] = orig + eps;
            let fp = eval(&store);
            store.value_mut(w).data[k] = orig - eps;
            let fm = eval(&store);
            store.value_mut(w).data[k] = orig;
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (analytic.data[k] - numeric).abs() < 2e-2,
                "grad mismatch: {} vs {}",
                analytic.data[k],
                numeric
            );
        }
    });
}

#[test]
fn rng_uniform_stays_in_bounds() {
    for_cases("rng_bounds", |rng| {
        let lo = rng.uniform(-10.0, 0.0);
        let width = rng.uniform(0.1, 10.0);
        let mut inner = Rng::seed_from(rng.next_u64());
        for _ in 0..100 {
            let v = inner.uniform(lo, lo + width);
            assert!(v >= lo && v < lo + width);
        }
    });
}
