//! Property-based tests (proptest) over the core invariants of the
//! substrates: matrix algebra, autograd correctness, metric axioms,
//! geographic projections, and KPI physical ranges.

use gendt_data::kpi_types::Kpi;
use gendt_geo::coords::{LatLon, Projection, XY};
use gendt_metrics as metrics;
use gendt_nn::{Graph, Matrix, ParamStore, Rng};
use proptest::prelude::*;

fn small_vec(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-50.0..50.0f64, 1..n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---------- metrics ----------

    #[test]
    fn mae_is_nonnegative_and_zero_iff_equal(xs in small_vec(64)) {
        prop_assert_eq!(metrics::mae(&xs, &xs), 0.0);
        let shifted: Vec<f64> = xs.iter().map(|v| v + 1.0).collect();
        prop_assert!((metrics::mae(&xs, &shifted) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dtw_is_symmetric_and_bounded_by_mae(xs in small_vec(48), ys in small_vec(48)) {
        let d1 = metrics::dtw(&xs, &ys);
        let d2 = metrics::dtw(&ys, &xs);
        prop_assert!((d1 - d2).abs() < 1e-9);
        prop_assert!(d1 >= 0.0);
        if xs.len() == ys.len() {
            // The warping path that matches index-to-index is available,
            // so optimal normalized DTW cost can't exceed the MAE.
            prop_assert!(d1 <= metrics::mae(&xs, &ys) + 1e-9);
        }
    }

    #[test]
    fn hwd_translation_equivariance(xs in small_vec(64), shift in -10.0..10.0f64) {
        let ys: Vec<f64> = xs.iter().map(|v| v + shift).collect();
        let d = metrics::hwd(&xs, &ys);
        prop_assert!((d - shift.abs()).abs() < 0.3, "hwd {} vs |shift| {}", d, shift.abs());
    }

    #[test]
    fn quantiles_are_monotone(mut xs in small_vec(64), q1 in 0.0..1.0f64, q2 in 0.0..1.0f64) {
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(metrics::quantile_sorted(&xs, lo) <= metrics::quantile_sorted(&xs, hi) + 1e-12);
    }

    // ---------- geo ----------

    #[test]
    fn projection_roundtrip(lat in -60.0..60.0f64, lon in -170.0..170.0f64,
                            dlat in -0.2..0.2f64, dlon in -0.2..0.2f64) {
        let proj = Projection::new(LatLon::new(lat, lon));
        let p = LatLon::new(lat + dlat, lon + dlon);
        let back = proj.to_latlon(proj.to_xy(p));
        prop_assert!((back.lat - p.lat).abs() < 1e-9);
        prop_assert!((back.lon - p.lon).abs() < 1e-9);
    }

    #[test]
    fn bearing_diff_is_metric_like(a in 0.0..360.0f64, b in 0.0..360.0f64) {
        let d = gendt_geo::bearing_diff_deg(a, b);
        prop_assert!((0.0..=180.0).contains(&d));
        prop_assert!((gendt_geo::bearing_diff_deg(b, a) - d).abs() < 1e-9);
        prop_assert!(gendt_geo::bearing_diff_deg(a, a) < 1e-9);
    }

    #[test]
    fn xy_distance_triangle_inequality(ax in -1e4..1e4f64, ay in -1e4..1e4f64,
                                       bx in -1e4..1e4f64, by in -1e4..1e4f64,
                                       cx in -1e4..1e4f64, cy in -1e4..1e4f64) {
        let a = XY::new(ax, ay);
        let b = XY::new(bx, by);
        let c = XY::new(cx, cy);
        prop_assert!(a.dist(&c) <= a.dist(&b) + b.dist(&c) + 1e-6);
    }

    // ---------- KPI normalization ----------

    #[test]
    fn kpi_normalization_roundtrips_in_range(v01 in 0.0..1.0f64) {
        for kpi in [Kpi::Rsrp, Kpi::Rsrq, Kpi::Sinr, Kpi::Serving] {
            let (lo, hi) = kpi.range();
            let v = lo + v01 * (hi - lo);
            let back = kpi.denormalize(kpi.normalize(v));
            prop_assert!((back - v).abs() < 1e-3, "{:?}: {} -> {}", kpi, v, back);
        }
    }

    #[test]
    fn kpi_denormalize_always_in_physical_range(n in -3.0..3.0f32) {
        for kpi in [Kpi::Rsrp, Kpi::Rsrq, Kpi::Sinr, Kpi::Cqi, Kpi::Serving] {
            let (lo, hi) = kpi.range();
            let v = kpi.denormalize(n);
            prop_assert!((lo..=hi).contains(&v), "{:?} out of range: {}", kpi, v);
        }
    }

    // ---------- matrix / autograd ----------

    #[test]
    fn matmul_distributes_over_addition(seed in 0u64..1000) {
        let mut rng = Rng::seed_from(seed);
        let rand_mat = |rng: &mut Rng, r: usize, c: usize| {
            Matrix::from_vec(r, c, (0..r * c).map(|_| rng.uniform(-2.0, 2.0) as f32).collect())
        };
        let a = rand_mat(&mut rng, 3, 4);
        let b = rand_mat(&mut rng, 4, 2);
        let c = rand_mat(&mut rng, 4, 2);
        let mut bc = b.clone();
        bc.add_assign(&c);
        let lhs = a.matmul(&bc);
        let mut rhs = a.matmul(&b);
        rhs.add_assign(&a.matmul(&c));
        for (x, y) in lhs.data.iter().zip(rhs.data.iter()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn autograd_matches_finite_differences_on_random_graphs(seed in 0u64..200) {
        // Random two-layer tanh network; check d loss / d w numerically.
        let mut rng = Rng::seed_from(seed);
        let mut store = ParamStore::new();
        let w = store.add(
            "w",
            Matrix::from_vec(2, 2, (0..4).map(|_| rng.uniform(-1.0, 1.0) as f32).collect()),
        );
        let x_data = Matrix::from_vec(3, 2, (0..6).map(|_| rng.uniform(-1.0, 1.0) as f32).collect());
        let t_data = Matrix::from_vec(3, 2, (0..6).map(|_| rng.uniform(-1.0, 1.0) as f32).collect());
        let eval = |store: &ParamStore| -> (f32, Option<Matrix>) {
            let mut g = Graph::new();
            let x = g.input(x_data.clone());
            let wn = g.param(store, w);
            let h = g.matmul(x, wn);
            let a = g.tanh(h);
            let t = g.input(t_data.clone());
            let loss = g.mse_loss(a, t);
            (g.value(loss).data[0], None)
        };
        // Analytic.
        store.zero_grad();
        {
            let mut g = Graph::new();
            let x = g.input(x_data.clone());
            let wn = g.param(&store, w);
            let h = g.matmul(x, wn);
            let a = g.tanh(h);
            let t = g.input(t_data.clone());
            let loss = g.mse_loss(a, t);
            g.backward(loss, &mut store);
        }
        let analytic = store.grad(w).clone();
        let eps = 1e-3f32;
        for k in 0..4 {
            let orig = store.value(w).data[k];
            store.value_mut(w).data[k] = orig + eps;
            let (fp, _) = eval(&store);
            store.value_mut(w).data[k] = orig - eps;
            let (fm, _) = eval(&store);
            store.value_mut(w).data[k] = orig;
            let numeric = (fp - fm) / (2.0 * eps);
            prop_assert!(
                (analytic.data[k] - numeric).abs() < 2e-2,
                "grad mismatch: {} vs {}",
                analytic.data[k],
                numeric
            );
        }
    }

    #[test]
    fn rng_uniform_stays_in_bounds(seed in 0u64..500, lo in -10.0..0.0f64, width in 0.1..10.0f64) {
        let mut rng = Rng::seed_from(seed);
        for _ in 0..100 {
            let v = rng.uniform(lo, lo + width);
            prop_assert!(v >= lo && v < lo + width);
        }
    }
}
