//! Fault-injection and degraded-input tests, in the spirit of the
//! networking guides' examples: the pipeline must behave sensibly when
//! fed coverage holes, degenerate contexts, or pathological inputs — not
//! panic or emit non-finite KPIs.

use gendt::{generate_series, GenDt, GenDtCfg};
use gendt_data::context::{RunContext, StepContext};
use gendt_data::{dataset_a, extract, windows, BuildCfg, ContextCfg, Kpi};
use gendt_geo::landuse::ENV_ATTRS;
use gendt_geo::trajectory::{Scenario, TrackPoint, Trajectory};
use gendt_geo::world::{World, WorldCfg};
use gendt_geo::XY;
use gendt_radio::cells::Deployment;
use gendt_radio::kpi::{KpiCfg, KpiEngine};
use gendt_radio::propagation::PropagationCfg;

fn tiny_trained() -> (GenDt, ContextCfg, gendt_data::run::Dataset) {
    let ds = dataset_a(&BuildCfg::quick(401));
    let mut cfg = GenDtCfg::fast(4, 401);
    cfg.hidden = 8;
    cfg.resgen_hidden = 8;
    cfg.disc_hidden = 4;
    cfg.window.len = 10;
    cfg.window.stride = 10;
    cfg.window.max_cells = 2;
    cfg.steps = 3;
    cfg.batch_size = 4;
    let ctx_cfg = ContextCfg {
        max_cells: 2,
        coord_scale_m: ds.world.cfg.extent_m,
        ..ContextCfg::default()
    };
    let run = &ds.runs[0];
    let ctx = extract(&ds.world, &ds.deployment, &run.traj, &ctx_cfg);
    let pool = windows(run, &ctx, &Kpi::DATASET_A, &cfg.window);
    let mut model = GenDt::new(cfg);
    model.train(&pool);
    (model, ctx_cfg, ds)
}

#[test]
fn out_of_coverage_trajectory_yields_floor_kpis_not_panics() {
    // A trajectory pinned in the far corner of an empty region: no cell
    // within range. The engine must emit floor samples, not panic.
    let world = World::generate(WorldCfg::city(402));
    let deployment = Deployment::from_world(&world);
    let engine = KpiEngine::new(
        &world,
        &deployment,
        PropagationCfg::default(),
        KpiCfg {
            serving_range_m: 50.0,
            ..KpiCfg::default()
        }, // absurdly small range
    );
    let traj = Trajectory {
        scenario: Scenario::Walk,
        points: (0..20)
            .map(|k| TrackPoint {
                t: k as f64,
                pos: XY::new(3990.0, 3990.0),
                speed: 0.0,
            })
            .collect(),
    };
    let samples = engine.measure(&traj, 1);
    assert_eq!(samples.len(), 20);
    for s in &samples {
        assert!(s.rsrp_dbm >= -140.0 && s.rsrp_dbm <= -44.0);
        assert!(s.rsrq_db.is_finite() && s.sinr_db.is_finite());
    }
}

#[test]
fn generation_with_empty_cell_context_stays_finite() {
    let (mut model, _, _) = tiny_trained();
    // Hand-built context with NO visible cells and zeroed environment.
    let steps = (0..20)
        .map(|_| StepContext {
            cells: Vec::new(),
            env: vec![0.0; ENV_ATTRS],
        })
        .collect();
    let ctx = RunContext { steps };
    let out = generate_series(&mut model, &ctx, &Kpi::DATASET_A, false, 7);
    assert_eq!(out.len(), 20);
    for ch in &out.series {
        assert!(
            ch.iter().all(|v| v.is_finite()),
            "non-finite KPI on empty context"
        );
    }
}

#[test]
fn generation_with_extreme_env_attributes_stays_in_range() {
    let (mut model, _, _) = tiny_trained();
    // Saturated environment attributes (all land-use 1.0 is impossible but
    // adversarial; huge PoI counts log-compress upstream, feed raw here).
    let steps = (0..20)
        .map(|_| StepContext {
            cells: vec![(0, [0.5, -0.5, 1.0, 0.9, 0.1])],
            env: vec![5.0; ENV_ATTRS],
        })
        .collect();
    let ctx = RunContext { steps };
    let out = generate_series(&mut model, &ctx, &Kpi::DATASET_A, false, 7);
    let rsrp = out.channel(Kpi::Rsrp).unwrap();
    assert!(rsrp.iter().all(|&v| (-140.0..=-44.0).contains(&v)));
}

#[test]
fn trajectory_shorter_than_one_window_generates_nothing() {
    let (mut model, ctx_cfg, ds) = tiny_trained();
    let run = &ds.runs[1];
    let mut short = run.traj.clone();
    short.points.truncate(5); // window length is 10
    let ctx = extract(&ds.world, &ds.deployment, &short, &ctx_cfg);
    let out = generate_series(&mut model, &ctx, &Kpi::DATASET_A, false, 3);
    assert!(out.is_empty());
}

#[test]
fn mismatched_kpi_list_is_rejected() {
    let (mut model, ctx_cfg, ds) = tiny_trained();
    let ctx = extract(&ds.world, &ds.deployment, &ds.runs[0].traj, &ctx_cfg);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        // Model has 4 channels; asking for 2 must panic loudly rather
        // than silently mislabel the output.
        generate_series(&mut model, &ctx, &[Kpi::Rsrp, Kpi::Rsrq], false, 1)
    }));
    assert!(result.is_err(), "channel mismatch must be rejected");
}

#[test]
fn training_on_single_window_pool_does_not_diverge() {
    let (_, ctx_cfg, ds) = tiny_trained();
    let mut cfg = GenDtCfg::fast(4, 403);
    cfg.hidden = 8;
    cfg.resgen_hidden = 8;
    cfg.disc_hidden = 4;
    cfg.window.len = 10;
    cfg.window.stride = 10;
    cfg.window.max_cells = 2;
    cfg.steps = 10;
    cfg.batch_size = 4;
    let run = &ds.runs[0];
    let ctx = extract(&ds.world, &ds.deployment, &run.traj, &ctx_cfg);
    let mut pool = windows(run, &ctx, &Kpi::DATASET_A, &cfg.window);
    pool.truncate(1);
    let mut model = GenDt::new(cfg);
    model.train(&pool);
    for p in model.generator.store.iter() {
        assert!(!p.value.has_non_finite(), "{} diverged", p.name);
    }
}
