//! Reproducibility guarantees across the whole stack: every pipeline
//! stage is bit-for-bit deterministic in its explicit seed.

use gendt::{generate_series, GenDt, GenDtCfg};
use gendt_data::{dataset_a, extract, windows, BuildCfg, ContextCfg, Kpi};
use gendt_geo::trajectory::{generate, Scenario, TrajectoryCfg};
use gendt_geo::world::{World, WorldCfg};
use gendt_geo::XY;
use gendt_radio::cells::Deployment;
use gendt_radio::kpi::{KpiCfg, KpiEngine};
use gendt_radio::propagation::PropagationCfg;

#[test]
fn world_deployment_trajectory_kpis_are_deterministic() {
    let run = |seed: u64| -> Vec<f64> {
        let w = World::generate(WorldCfg::city(seed));
        let d = Deployment::from_world(&w);
        let t = generate(
            &w,
            &TrajectoryCfg::new(Scenario::Bus, 120.0, XY::new(0.0, 0.0), 5),
        );
        let e = KpiEngine::new(&w, &d, PropagationCfg::default(), KpiCfg::default());
        e.measure(&t, 9).iter().map(|s| s.rsrp_dbm).collect()
    };
    assert_eq!(run(77), run(77));
    assert_ne!(run(77), run(78));
}

#[test]
fn dataset_build_is_deterministic() {
    let a = dataset_a(&BuildCfg::quick(310));
    let b = dataset_a(&BuildCfg::quick(310));
    assert_eq!(a.total_samples(), b.total_samples());
    for (ra, rb) in a.runs.iter().zip(b.runs.iter()) {
        assert_eq!(ra.series(Kpi::Rsrp), rb.series(Kpi::Rsrp));
        assert_eq!(ra.series(Kpi::Cqi), rb.series(Kpi::Cqi));
    }
}

#[test]
fn training_and_generation_are_deterministic_in_seed() {
    let build = || -> Vec<f64> {
        let ds = dataset_a(&BuildCfg::quick(311));
        let mut cfg = GenDtCfg::fast(4, 311);
        cfg.hidden = 10;
        cfg.resgen_hidden = 10;
        cfg.disc_hidden = 6;
        cfg.window.len = 12;
        cfg.window.stride = 6;
        cfg.window.max_cells = 3;
        cfg.steps = 8;
        cfg.batch_size = 4;
        let ctx_cfg = ContextCfg {
            max_cells: 3,
            coord_scale_m: ds.world.cfg.extent_m,
            ..ContextCfg::default()
        };
        let run = &ds.runs[0];
        let ctx = extract(&ds.world, &ds.deployment, &run.traj, &ctx_cfg);
        let pool = windows(run, &ctx, &Kpi::DATASET_A, &cfg.window);
        let mut model = GenDt::new(cfg);
        model.train(&pool);
        let out = generate_series(&mut model, &ctx, &Kpi::DATASET_A, false, 99);
        out.series[0].clone()
    };
    let a = build();
    let b = build();
    assert_eq!(a, b, "end-to-end pipeline not reproducible");
}
