//! Cross-crate integration tests: the complete GenDT pipeline from world
//! generation through training, generation, evaluation, and the
//! downstream use cases, all at quick scale.

use gendt::{generate_series, model_uncertainty, GenDt, GenDtCfg};
use gendt_data::{dataset_a, dataset_b, extract, windows, BuildCfg, ContextCfg, Kpi};
use gendt_eval::{Bundle, EvalCfg, Method};
use gendt_metrics::Fidelity;

fn tiny_eval_cfg(seed: u64) -> EvalCfg {
    let mut c = EvalCfg::quick(seed);
    c.out_dir = std::env::temp_dir().join("gendt-e2e");
    c
}

#[test]
fn full_pipeline_dataset_a() {
    // World -> dataset -> context -> windows -> train -> generate ->
    // evaluate, entirely through the public APIs.
    let ds = dataset_a(&BuildCfg::quick(301));
    assert!(ds.total_samples() > 500);

    let mut cfg = GenDtCfg::fast(4, 301);
    cfg.hidden = 12;
    cfg.resgen_hidden = 12;
    cfg.disc_hidden = 6;
    cfg.window.len = 15;
    cfg.window.stride = 5;
    cfg.window.max_cells = 3;
    cfg.steps = 20;
    cfg.batch_size = 4;
    let ctx_cfg = ContextCfg {
        max_cells: cfg.window.max_cells,
        coord_scale_m: ds.world.cfg.extent_m,
        ..ContextCfg::default()
    };
    let mut pool = Vec::new();
    for run in ds.runs.iter().take(4) {
        let ctx = extract(&ds.world, &ds.deployment, &run.traj, &ctx_cfg);
        pool.extend(windows(run, &ctx, &Kpi::DATASET_A, &cfg.window));
    }
    assert!(!pool.is_empty());
    let mut model = GenDt::new(cfg);
    model.train(&pool);

    // Generate for a held-out run.
    let test_run = ds.runs.last().unwrap();
    let ctx = extract(&ds.world, &ds.deployment, &test_run.traj, &ctx_cfg);
    let out = generate_series(&mut model, &ctx, &Kpi::DATASET_A, false, 5);
    assert!(!out.is_empty());
    let rsrp = out.channel(Kpi::Rsrp).unwrap();
    let real = test_run.series(Kpi::Rsrp);
    let n = real.len().min(rsrp.len());
    let f = Fidelity::compute(&real[..n], &rsrp[..n]);
    // Sanity bounds: even a barely-trained model must stay in the
    // physically plausible error regime (not orders of magnitude off).
    assert!(f.mae < 60.0, "absurd MAE {}", f.mae);
    assert!(f.hwd < 60.0, "absurd HWD {}", f.hwd);

    // Uncertainty is computable and positive.
    let rep = model_uncertainty(&mut model, &ctx, 2, 9);
    assert!(rep.model_uncertainty >= 0.0);
}

#[test]
fn harness_bundle_runs_every_method_on_dataset_b() {
    let cfg = tiny_eval_cfg(302);
    let mut b = Bundle::dataset_b(&cfg);
    assert_eq!(b.kpis, vec![Kpi::Rsrp, Kpi::Rsrq]);
    let run = b.test_idx[0];
    for m in Method::ALL {
        let f = b.fidelity(m, run, Kpi::Rsrp, 3).expect("output");
        assert!(f.mae.is_finite() && f.mae > 0.0, "{m:?}");
        assert!(f.dtw.is_finite() && f.hwd.is_finite());
    }
}

#[test]
fn dataset_b_serving_channel_supports_handover_analysis() {
    let ds = dataset_b(&BuildCfg::quick(303));
    // The serving-rank series changes where handovers happen.
    let run = &ds.runs[0];
    let serv = run.series(Kpi::Serving);
    let ids = run.serving_ids();
    let mut id_changes = 0;
    for w in ids.windows(2) {
        if w[0] != w[1] {
            id_changes += 1;
        }
    }
    // The continuous channel must move when the serving id changes often.
    if id_changes > 3 {
        let moved = serv
            .windows(2)
            .filter(|w| (w[1] - w[0]).abs() > 1e-6)
            .count();
        assert!(
            moved > 0,
            "serving channel is frozen despite {id_changes} handovers"
        );
    }
}

#[test]
fn reports_render_and_persist() {
    let cfg = tiny_eval_cfg(304);
    let report = gendt_eval::run_standalone("table1", &cfg).expect("table1 is standalone");
    let md = report.to_markdown();
    assert!(md.contains("Walk") && md.contains("Tram"));
    report.write_to(&cfg.out_dir).unwrap();
    assert!(cfg.out_dir.join("table1.md").exists());
    std::fs::remove_dir_all(&cfg.out_dir).ok();
}

#[test]
fn qoe_predictor_uses_radio_kpis() {
    let cfg = tiny_eval_cfg(305);
    let bundle = Bundle::dataset_a(&cfg);
    let mut with_radio = gendt_eval::exp_usecases::QoePredictor::new(1, false);
    with_radio.fit(&bundle, 3);
    // Better SINR conditions (higher RSRP/RSRQ) should not predict *worse*
    // throughput wildly; check the predictor produces finite, plausible
    // values across the KPI range.
    let extent = bundle.ds.world.cfg.extent_m;
    let lo = with_radio.predict_point(-120.0, -18.0, 0.0, 0.0, 5.0, extent);
    let hi = with_radio.predict_point(-70.0, -7.0, 0.0, 0.0, 5.0, extent);
    assert!(lo.is_finite() && hi.is_finite());
    assert!((0.0..200.0).contains(&lo) && (0.0..200.0).contains(&hi));
}
